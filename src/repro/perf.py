"""The performance-regression harness behind ``BENCH_PERF.json``.

The suite times the hot kernels this codebase optimises:

* ``ga_evolve_batched`` / ``ga_evolve_reference`` — generations/second of
  :meth:`~repro.scheduling.ga.GAScheduler.evolve` under the batched
  crossover kernel and the per-pair reference kernel
  (``GAConfig(batched=False)``).  Both consume the identical RNG stream,
  so the comparison times exactly the same evolutionary work.
* ``ga_evolve_vectorized`` — the same protocol under
  ``GAConfig(kernel="vectorized")``, the whole-population array kernel of
  :mod:`repro.scheduling.vectorized`.  Its RNG stream differs from the
  reference by design (byte-identity is relaxed; quality parity is gated
  by the property tests), so the number measures the same workload shape
  rather than the same stream.
* ``ga_warmstart_convergence`` — generation-budget saving of the
  list-scheduling warm start: how many fewer generations the seeded
  vectorized population needs to match a cold run's final best cost.
* ``ga_evaluate_dedup`` / ``ga_evaluate_full`` — individuals/second of
  one population costing on a *converged* population, through the
  evaluation-reuse layer (digest → dedup → subset evaluate → scatter)
  versus the naive evaluate-everything path; ``ga_dedup_hit_rate``
  records the measured duplicate fraction of that population.
* ``evaluate_scalar`` / ``evaluate_counts`` — warm-cache evaluation
  calls/second of the per-count scalar loop versus the bulk
  :meth:`~repro.pace.evaluation.EvaluationEngine.evaluate_counts` path.
* ``casestudy_wall`` — wall seconds for experiments 1–3 over the scaled
  case-study workload (``REPRO_BENCH_REQUESTS``, default 120).
* ``sweep_speedup`` — parallel-over-sequential speedup of a four-seed
  :func:`~repro.experiments.sweep.run_seed_sweep` on the experiment
  fabric.
* ``engine_events_per_s`` / ``engine_events_per_s_single_heap`` —
  events/second of the lane-partitioned engine versus the preserved
  single-heap seed engine on an identical 1000-lane self-rescheduling
  timer workload (the event pattern a 1000-agent grid produces); the
  derived ``engine_partition_speedup`` is the scale gate's ≥2× claim.
* ``engine_event_alloc`` — Event+Message allocations/second, the
  ``__slots__`` hot-path win.
* ``scale_grid_1000`` — completed requests/second of a full generated
  1000-agent scenario (FIFO policy, Poisson arrivals) end to end through
  ``build_grid``/``run_experiment`` (``REPRO_BENCH_SCALE_REQUESTS``,
  default 200).

Results are written as JSON with machine info and the git SHA so numbers
are attributable; :func:`check_regression` compares two such documents
direction-aware (each benchmark declares whether higher is better) and
reports every metric that got more than ``threshold`` worse.
Parallelism-bound comparisons (``sweep_speedup``/``sweep_parallel_wall``)
are skipped — and reported as skipped — when the two documents were
measured on machines with different ``cpu_count``: a pool's speedup is a
property of the core count, not the code.

Entry points: ``python -m repro.cli perf [--only SUBSTRING]`` or
``python benchmarks/perf/run_perf.py``; see docs/performance.md.
"""

from __future__ import annotations

import gc
import json
import os
import platform as platform_module
import subprocess
import sys
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

__all__ = [
    "BenchResult",
    "Regression",
    "PARALLELISM_BENCHMARKS",
    "run_suite",
    "select_benchmarks",
    "merge_suite_doc",
    "check_regression",
    "render_report",
    "run_perf_cli",
]

#: Workload scale for the case-study and sweep benchmarks.
BENCH_REQUESTS = int(os.environ.get("REPRO_BENCH_REQUESTS", "120"))

#: Workload scale for the 1000-agent scenario benchmark.
BENCH_SCALE_REQUESTS = int(os.environ.get("REPRO_BENCH_SCALE_REQUESTS", "200"))

#: Regression threshold: a metric more than this fraction worse than the
#: committed baseline fails the run.
DEFAULT_THRESHOLD = 0.25

#: Benchmarks whose value measures the machine's parallelism rather than
#: the code: comparing them across documents with different
#: ``meta.machine.cpu_count`` gates on hardware, so the regression check
#: skips (and reports) them when core counts differ.
PARALLELISM_BENCHMARKS = frozenset({"sweep_speedup", "sweep_parallel_wall"})


@dataclass(frozen=True)
class BenchResult:
    """One benchmark's outcome."""

    name: str
    value: float
    unit: str
    higher_is_better: bool
    detail: str = ""

    def to_json(self) -> Dict:
        return {
            "value": self.value,
            "unit": self.unit,
            "higher_is_better": self.higher_is_better,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class Regression:
    """One metric that got worse than the threshold allows."""

    name: str
    baseline: float
    current: float
    change: float  # signed fraction; negative = worse

    def describe(self) -> str:
        return (
            f"{self.name}: {self.baseline:.4g} -> {self.current:.4g} "
            f"({self.change:+.1%})"
        )


# ------------------------------------------------------------------ kernels


def _make_ga(
    batched: bool,
    n_tasks: int = 12,
    n_nodes: int = 16,
    kernel: Optional[str] = None,
    warmstart_count: Optional[int] = None,
):
    """A GA over the paper's applications, mirroring the case-study setup."""
    from repro.pace.evaluation import EvaluationEngine
    from repro.pace.hardware import SGI_ORIGIN_2000
    from repro.pace.workloads import paper_applications
    from repro.scheduling.ga import GAConfig, GAScheduler

    engine = EvaluationEngine()
    models = list(paper_applications().values())
    rows = [
        engine.evaluate_counts(model, SGI_ORIGIN_2000, n_nodes) for model in models
    ]
    config_kwargs: Dict[str, object] = {"batched": batched, "kernel": kernel}
    if warmstart_count is not None:
        config_kwargs["warmstart_count"] = warmstart_count
    ga = GAScheduler(
        n_nodes,
        lambda tid, k: float(rows[tid % len(rows)][k - 1]),
        np.random.default_rng(2003),
        GAConfig(**config_kwargs),
        duration_row=lambda tid: rows[tid % len(rows)],
    )
    for tid in range(n_tasks):
        ga.add_task(tid, deadline=600.0 + 40.0 * tid)
    return ga


def bench_ga_evolve(
    batched: bool,
    generations: int = 25,
    repeats: int = 5,
    kernel: Optional[str] = None,
) -> BenchResult:
    """Generations/second of ``evolve`` under one GA kernel.

    Best-of-*repeats* chunks of *generations* each (generations are
    homogeneous in cost, so the fastest chunk is the least-noisy sample).
    Whole-``evolve`` throughput dilutes the crossover kernel behind the
    cost evaluation — :func:`bench_ga_crossover` isolates the kernel.
    *kernel* selects an explicit ``GAConfig.kernel`` (``"vectorized"``
    produces ``ga_evolve_vectorized``); ``None`` keeps the historical
    batched/reference pair.
    """
    free = [0.0] * 16
    ga = _make_ga(batched, kernel=kernel)
    ga.evolve(3, free, 0.0)  # warm-up: population allocation, caches
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        ga.evolve(generations, free, 0.0)
        best = min(best, time.perf_counter() - start)
    kind = kernel if kernel is not None else ("batched" if batched else "reference")
    return BenchResult(
        name=f"ga_evolve_{kind}",
        value=generations / best,
        unit="generations/s",
        higher_is_better=True,
        detail=f"best of {repeats}x{generations} generations, "
        "12 tasks, 16 nodes, pop 50",
    )


def bench_ga_warmstart_convergence(generations: int = 25) -> BenchResult:
    """Generation-budget saving of the list-scheduling warm start.

    Two identical vectorized-kernel GAs (same seed, same tasks, same
    availability) differ only in ``warmstart_count``: the *cold* run
    (no seeds) evolves the full *generations* budget and its final best
    cost becomes the quality target; the *warm* run (default seeds)
    then evolves one generation at a time until it first matches that
    target.  The reported value is ``generations / generations_used`` —
    e.g. 5x means the seeded population reached the cold run's 25-gen
    quality in 5 generations.  Fully seeded, so the number is
    deterministic on a given numpy version; 1.0 is the worst case (warm
    start never worse than cold under equal budgets is *not* implied —
    the floor simply means the whole budget was needed).
    """
    free = [0.0] * 16
    cold = _make_ga(batched=True, kernel="vectorized", warmstart_count=0)
    target = cold.evolve(generations, free, 0.0)
    warm = _make_ga(batched=True, kernel="vectorized")
    used = generations
    for generation in range(1, generations + 1):
        if warm.evolve(1, free, 0.0) <= target:
            used = generation
            break
    return BenchResult(
        name="ga_warmstart_convergence",
        value=generations / used,
        unit="x",
        higher_is_better=True,
        detail=f"warm start matched the cold {generations}-generation best "
        f"in {used} generations, 12 tasks, 16 nodes, pop 50",
    )


def bench_ga_crossover(batched: bool, n_tasks: int = 30, repeats: int = 7) -> BenchResult:
    """Children/second of the crossover kernel alone (``_make_children``).

    Times the per-generation child construction — pair decisions, order
    splice, mask crossover — outside ``evolve``, so the batched-versus-
    reference ratio is undiluted by the (shared) cost evaluation.
    """
    free = [0.0] * 16
    ga = _make_ga(batched, n_tasks=n_tasks)
    ga.evolve(2, free, 0.0)  # realistic evolved population
    n_children = ga.config.population_size - ga.config.elite_count
    parents = list(range(n_children))
    calls = 30
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(calls):
            ga._make_children(parents, n_children)
        best = min(best, time.perf_counter() - start)
    kind = "batched" if batched else "reference"
    return BenchResult(
        name=f"ga_crossover_{kind}",
        value=calls * n_children / best,
        unit="children/s",
        higher_is_better=True,
        detail=f"best of {repeats}x{calls} calls, {n_tasks} tasks, "
        f"16 nodes, {n_children} children/call",
    )


def bench_ga_evaluate_dedup(
    n_tasks: int = 2, converge_generations: int = 40, calls: int = 40,
    repeats: int = 7,
) -> List[BenchResult]:
    """Population costing on a converged population: reuse layer vs naive.

    Evolves the case-study GA until the population has converged (mostly
    duplicate individuals), then times repeated costings of that *fixed*
    population: ``ga_evaluate_full`` runs the vectorised eq.-(8)
    evaluator over all ``population_size`` individuals,
    ``ga_evaluate_dedup`` runs the reuse layer exactly as a late
    generation inside ``evolve`` does — digest, look up the warm
    evolve-scoped memo, evaluate only novel individuals, scatter.  Both
    produce bit-identical cost vectors (this is asserted);
    ``ga_dedup_hit_rate`` reports the reused fraction (memo + in-batch
    duplicates), so the speedup is attributable, not asserted.

    The default is a **two-task** optimisation set: in the instrumented
    case study over half of all ``evolve`` calls run with ≤ 2 queued
    tasks (dispatch launches startable work at every event, keeping
    queues short), and small solution strings are where the population
    actually fixates — at 12 tasks the ~1-bit/individual mutation churn
    keeps ~95 % of individuals distinct and dedup is moot (see
    docs/performance.md for the measured distribution).
    """
    free = [0.0] * 16
    ga = _make_ga(batched=True, n_tasks=n_tasks)
    ga.evolve(converge_generations, free, 0.0)
    pop = ga.config.population_size

    best_full = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(calls):
            full_costs = ga._evaluate(ga._order, ga._masks, free, 0.0)
        best_full = min(best_full, time.perf_counter() - start)

    memo = {}
    ga._population_costs(free, 0.0, memo=memo)  # warm the evolve-scoped memo
    before = ga.stats.snapshot()
    best_dedup = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(calls):
            dedup_costs = ga._population_costs(free, 0.0, memo=memo)
        best_dedup = min(best_dedup, time.perf_counter() - start)
    after = ga.stats.snapshot()

    if not np.array_equal(full_costs, dedup_costs):
        raise AssertionError("dedup costing diverged from the full evaluation")
    costed = after["rows_costed"] - before["rows_costed"]
    evaluated = after["rows_evaluated"] - before["rows_evaluated"]
    hit_rate = 1.0 - evaluated / costed if costed else 0.0

    # End-to-end observability: the reuse a *real* evolve call achieves on
    # this converged population (memo starts cold, novel mutants re-cost).
    before = ga.stats.snapshot()
    ga.evolve(25, free, 0.0)
    after = ga.stats.snapshot()
    evolve_costed = after["rows_costed"] - before["rows_costed"]
    evolve_evaluated = after["rows_evaluated"] - before["rows_evaluated"]
    evolve_hit_rate = (
        1.0 - evolve_evaluated / evolve_costed if evolve_costed else 0.0
    )

    detail = (
        f"best of {repeats}x{calls} costings, pop {pop}, {n_tasks} tasks, "
        f"16 nodes, after {converge_generations} generations"
    )
    return [
        BenchResult("ga_evaluate_full", calls * pop / best_full,
                    "individuals/s", True, detail),
        BenchResult("ga_evaluate_dedup", calls * pop / best_dedup,
                    "individuals/s", True, detail),
        BenchResult("ga_dedup_hit_rate", hit_rate, "fraction", True, detail),
        BenchResult("ga_evolve_hit_rate", evolve_hit_rate, "fraction", True,
                    f"one evolve(25) on the converged population, pop {pop}, "
                    f"{n_tasks} tasks"),
    ]


def bench_evaluate(repeats: int = 200) -> List[BenchResult]:
    """Warm-cache calls/second: scalar per-count loop vs ``evaluate_counts``."""
    from repro.pace.evaluation import EvaluationEngine
    from repro.pace.hardware import SGI_ORIGIN_2000
    from repro.pace.workloads import paper_applications

    engine = EvaluationEngine()
    models = list(paper_applications().values())
    max_nproc = 16
    for model in models:  # warm the cache: realistic steady state
        engine.evaluate_counts(model, SGI_ORIGIN_2000, max_nproc)

    start = time.perf_counter()
    for _ in range(repeats):
        for model in models:
            for k in range(1, max_nproc + 1):
                engine.evaluate_count(model, k, SGI_ORIGIN_2000)
    scalar_elapsed = time.perf_counter() - start
    n_calls = repeats * len(models) * max_nproc

    start = time.perf_counter()
    for _ in range(repeats):
        for model in models:
            engine.evaluate_counts(model, SGI_ORIGIN_2000, max_nproc)
    bulk_elapsed = time.perf_counter() - start

    detail = f"{len(models)} applications x {max_nproc} counts, warm cache"
    return [
        BenchResult("evaluate_scalar", n_calls / scalar_elapsed,
                    "evaluations/s", True, detail),
        BenchResult("evaluate_counts", n_calls / bulk_elapsed,
                    "evaluations/s", True, detail),
    ]


def bench_casestudy(requests: int) -> BenchResult:
    """Wall seconds for experiments 1–3 over one scaled workload."""
    from repro.experiments.tables import run_table3

    start = time.perf_counter()
    run_table3(request_count=requests)
    elapsed = time.perf_counter() - start
    return BenchResult(
        name="casestudy_wall",
        value=elapsed,
        unit="s",
        higher_is_better=False,
        detail=f"experiments 1-3, {requests} requests, seed 2003",
    )


def bench_sweep_speedup(requests: int, jobs: int = 4) -> List[BenchResult]:
    """Sequential and parallel wall time of a four-seed sweep; speedup."""
    from repro.experiments.sweep import run_seed_sweep

    seeds = [2003, 2004, 2005, 2006]
    start = time.perf_counter()
    run_seed_sweep(seeds, request_count=requests, jobs=1)
    sequential = time.perf_counter() - start
    start = time.perf_counter()
    run_seed_sweep(seeds, request_count=requests, jobs=jobs)
    parallel = time.perf_counter() - start
    detail = f"{len(seeds)} seeds x 3 experiments, {requests} requests, jobs={jobs}"
    return [
        BenchResult("sweep_sequential_wall", sequential, "s", False, detail),
        BenchResult("sweep_parallel_wall", parallel, "s", False, detail),
        BenchResult("sweep_speedup", sequential / parallel, "x", True, detail),
    ]


def bench_engine_events(
    n_lanes: int = 1000,
    arrivals_per_lane: int = 150,
    burst: int = 48,
    events: int = 250_000,
    warmup: int = 30_000,
    repeats: int = 6,
) -> List[BenchResult]:
    """Events/second: partitioned lanes versus the single-heap reference.

    Both engines drive the identical workload — per-lane request arrivals
    each fanning out a same-instant burst of dispatch events.  That is the
    measured shape of the real simulator: transport latency defaults to
    0.0 with asynchronous delivery, so an arrival's request/response/
    dispatch chain fires as one same-time cascade in the agent's lane (a
    probe of a generated 300-agent scenario put 75 % of fires inside
    same-``(time, lane)`` runs of ~1200 events; ``burst`` stays far below
    that, which is *conservative* — longer cascades favour the partitioned
    engine's carry path).  A ~2 % cross-lane stream rides in the shared
    default lane.  The single-heap engine pays ``O(log n_pending)``
    *Python-level* ``Event.__lt__`` comparisons per operation across one
    six-figure-entry heap; the partitioned engine pays C tuple comparisons
    on small per-lane heaps and skips the lane index entirely while a
    cascade holds the minimum.  Firing order is identical by construction
    — the engine equivalence property suite asserts byte-identity — so
    this pair measures pure heap mechanics on the same event sequence.

    The two engines are interleaved within each repeat (not timed in
    separate blocks) so slow machine windows hit both alike, and each
    takes its best repeat; the derived ``engine_partition_speedup`` ratio
    is the scale gate.
    """
    from repro.sim.engine import Engine
    from repro.sim.events import DEFAULT_LANE, Priority
    from repro.sim.reference import SingleHeapEngine

    def noop() -> None:
        return None

    def build(engine) -> None:
        def make_arrival(view):
            sched = view.schedule

            def arrival(sched=sched, noop=noop, burst=burst):
                t = view.now
                for _ in range(burst):
                    sched(t, noop, Priority.SCHEDULING, "dispatch")

            return arrival

        for i in range(n_lanes):
            view = engine.lane_view(f"L{i:04d}")
            arrival = make_arrival(view)
            for j in range(arrivals_per_lane):
                view.schedule(
                    0.5 + j * 1.0 + (i % 97) / 97.0,
                    arrival, Priority.ARRIVAL, "arrival",
                )
        for i in range(max(1, n_lanes // 50)):
            view = engine.lane_view(DEFAULT_LANE)
            arrival = make_arrival(view)
            for j in range(40):
                view.schedule(
                    1.0 + j * 2.5 + (i % 13) / 13.0,
                    arrival, Priority.ARRIVAL, "cross",
                )

    def measure(engine) -> float:
        build(engine)
        engine.run(max_events=warmup)
        start = time.perf_counter()
        engine.run(max_events=events)
        return events / (time.perf_counter() - start)

    partitioned = single = 0.0
    gc_was_enabled = gc.isenabled()
    gc.disable()  # collector pauses land unevenly; both sides run without
    try:
        for _ in range(repeats):
            partitioned = max(partitioned, measure(Engine()))
            single = max(single, measure(SingleHeapEngine()))
    finally:
        if gc_was_enabled:
            gc.enable()

    detail = (
        f"best of {repeats} interleaved, {events} events after {warmup} "
        f"warmup; {n_lanes} lanes x {arrivals_per_lane} arrivals, "
        f"burst {burst}, {max(1, n_lanes // 50)}x40 cross-lane"
    )
    return [
        BenchResult("engine_events_per_s", partitioned,
                    "events/s", True, detail),
        BenchResult("engine_events_per_s_single_heap", single,
                    "events/s", True, detail),
    ]


def bench_event_alloc(count: int = 200_000, repeats: int = 5) -> BenchResult:
    """Hot-path object allocations/second (the ``__slots__`` win).

    Constructs the two objects the simulator allocates per unit of work —
    an :class:`~repro.sim.events.Event` and a frozen
    :class:`~repro.net.message.Message` (endpoints interned once, as
    transports hold them) — in a tight loop.  ``__slots__`` halves the
    per-instance footprint (no ``__dict__``), the win that matters at
    1000-agent resident-heap scale; raw construction rate is about even,
    so this number is a *regression gate* on the hot allocation path
    (an accidental extra allocation or ``__post_init__`` shows up here).
    See ``benchmarks/perf/bench_alloc.py`` for the slotted-vs-dict
    side-by-side.
    """
    from repro.net.message import Endpoint, Message, MessageKind
    from repro.sim.events import Event

    def noop() -> None:
        return None

    sender = Endpoint("bench-a", 1)
    recipient = Endpoint("bench-b", 2)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for sequence in range(count):
            Event(1.0, 50, sequence, noop, "bench")
            Message(MessageKind.REQUEST, sender, recipient, None)
        best = min(best, time.perf_counter() - start)
    return BenchResult(
        name="engine_event_alloc",
        value=2 * count / best,
        unit="objects/s",
        higher_is_better=True,
        detail=f"best of {repeats}x{count} Event+Message pairs",
    )


def bench_scale_grid(requests: int = BENCH_SCALE_REQUESTS) -> BenchResult:
    """Completed requests/second of a full generated 1000-agent scenario.

    End to end: ``ScenarioSpec`` → topology + Poisson workload →
    ``build_grid`` → event loop to drain, FIFO policy on the partitioned
    engine.  The scale gate's integration number — it moves with engine
    throughput, transport lane routing, and scheduler bookkeeping,
    unlike ``engine_events_per_s`` which isolates the heap mechanics.
    """
    from repro.experiments.runner import run_experiment
    from repro.experiments.scenarios import ScenarioSpec, generate_scenario
    from repro.scheduling.scheduler import SchedulingPolicy

    spec = ScenarioSpec(
        name="bench-1000",
        agent_count=1000,
        request_count=requests,
        rate=2.0,
        arrival="poisson",
    )
    scenario = generate_scenario(spec)
    config = spec.config(policy=SchedulingPolicy.FIFO)
    start = time.perf_counter()
    result = run_experiment(
        config, scenario.topology, workload=list(scenario.workload)
    )
    elapsed = time.perf_counter() - start
    return BenchResult(
        name="scale_grid_1000",
        value=requests / elapsed,
        unit="requests/s",
        higher_is_better=True,
        detail=f"1000 agents, {requests} poisson requests (rate 2/s), FIFO, "
        f"{len(result.records)} completed, partitioned engine",
    )


# -------------------------------------------------------------------- suite


def _git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10, check=True,
        )
        return out.stdout.strip()
    except Exception:  # pragma: no cover - detached environments
        return "unknown"


def machine_info() -> Dict[str, object]:
    """Attribution block: where these numbers were measured."""
    return {
        "python": sys.version.split()[0],
        "platform": platform_module.platform(),
        "machine": platform_module.machine(),
        "cpu_count": os.cpu_count(),
        "numpy": np.__version__,
    }


#: Derived ratios: name -> (numerator benchmark, denominator benchmark).
#: Computed only when both inputs were run (``--only`` subsets skip the
#: rest).
DERIVED_RATIOS = {
    "ga_evolve_speedup": ("ga_evolve_batched", "ga_evolve_reference"),
    "ga_evolve_vectorized_speedup": ("ga_evolve_vectorized", "ga_evolve_reference"),
    "ga_crossover_speedup": ("ga_crossover_batched", "ga_crossover_reference"),
    "ga_evaluate_dedup_speedup": ("ga_evaluate_dedup", "ga_evaluate_full"),
    "evaluate_bulk_speedup": ("evaluate_counts", "evaluate_scalar"),
    "engine_partition_speedup": (
        "engine_events_per_s", "engine_events_per_s_single_heap",
    ),
}


def _suite_specs(requests: int, jobs: int):
    """(produced names, progress note, thunk) for every benchmark group."""
    return [
        (("ga_evolve_batched",), "GA evolve (batched kernel)...",
         lambda: [bench_ga_evolve(batched=True)]),
        (("ga_evolve_reference",), "GA evolve (per-pair reference kernel)...",
         lambda: [bench_ga_evolve(batched=False)]),
        (("ga_evolve_vectorized",), "GA evolve (vectorized array kernel)...",
         lambda: [bench_ga_evolve(batched=True, kernel="vectorized")]),
        (("ga_warmstart_convergence",),
         "warm-start convergence (vectorized kernel)...",
         lambda: [bench_ga_warmstart_convergence()]),
        (("ga_crossover_batched", "ga_crossover_reference"),
         "GA crossover kernel (batched vs reference)...",
         lambda: [bench_ga_crossover(batched=True),
                  bench_ga_crossover(batched=False)]),
        (("ga_evaluate_full", "ga_evaluate_dedup", "ga_dedup_hit_rate",
          "ga_evolve_hit_rate"),
         "GA population costing (dedup reuse vs full evaluation)...",
         bench_ga_evaluate_dedup),
        (("evaluate_scalar", "evaluate_counts"),
         "evaluation engine (scalar vs bulk)...", bench_evaluate),
        (("casestudy_wall",), f"case study wall time ({requests} requests)...",
         lambda: [bench_casestudy(requests)]),
        (("sweep_sequential_wall", "sweep_parallel_wall", "sweep_speedup"),
         f"sweep speedup (4 seeds, jobs={jobs})...",
         lambda: bench_sweep_speedup(requests, jobs=jobs)),
        (("engine_events_per_s", "engine_events_per_s_single_heap"),
         "event engine throughput (partitioned vs single-heap, 1000 lanes)...",
         bench_engine_events),
        (("engine_event_alloc",),
         "hot-path allocation (slotted Event + Message)...",
         lambda: [bench_event_alloc()]),
        (("scale_grid_1000",),
         f"1000-agent generated scenario ({BENCH_SCALE_REQUESTS} requests)...",
         lambda: [bench_scale_grid()]),
    ]


def select_benchmarks(only: Optional[List[str]], requests: int = BENCH_REQUESTS,
                      jobs: int = 4):
    """The suite specs whose produced benchmark names match *only*.

    *only* is a list of substrings (``None``/empty = everything); a spec
    runs when any produced name contains any of the substrings.
    """
    specs = _suite_specs(requests, jobs)
    if not only:
        return specs
    return [
        spec for spec in specs
        if any(sub in name for name in spec[0] for sub in only)
    ]


def run_suite(
    *,
    requests: int = BENCH_REQUESTS,
    jobs: int = 4,
    progress: Optional[Callable[[str], None]] = None,
    only: Optional[List[str]] = None,
) -> Dict[str, object]:
    """Run the benchmarks (all, or the ``only`` subset); returns the doc."""

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    specs = select_benchmarks(only, requests, jobs)
    if only and not specs:
        raise ValueError(f"--only {only!r} matches no benchmark names")
    results: List[BenchResult] = []
    for _, message, thunk in specs:
        note(message)
        results.extend(thunk())

    by_name = {r.name: r for r in results}
    derived = {
        name: by_name[num].value / by_name[den].value
        for name, (num, den) in DERIVED_RATIOS.items()
        if num in by_name and den in by_name
    }
    return {
        "meta": {
            "git_sha": _git_sha(),
            "requests": requests,
            "jobs": jobs,
            "machine": machine_info(),
        },
        "benchmarks": {r.name: r.to_json() for r in results},
        "derived": {k: float(v) for k, v in derived.items()},
    }


def merge_suite_doc(existing: Optional[Dict], fresh: Dict) -> Dict:
    """Fold a (possibly partial) fresh run into an existing document.

    Benchmarks from *fresh* replace their namesakes in *existing*; every
    other committed benchmark is carried over untouched, and the derived
    ratios are recomputed from the merged set so a ``--only`` subset run
    can refresh e.g. ``ga_evolve_vectorized_speedup`` without re-timing
    its denominator.  The ``meta`` block always comes from *fresh* — the
    attribution (git SHA, machine) must describe the newest numbers in
    the file, and carried-over entries keep their per-benchmark
    ``detail`` strings for provenance.
    """
    if not existing:
        return fresh
    benchmarks = dict(existing.get("benchmarks", {}))
    benchmarks.update(fresh.get("benchmarks", {}))
    derived = {
        name: float(benchmarks[num]["value"]) / float(benchmarks[den]["value"])
        for name, (num, den) in DERIVED_RATIOS.items()
        if num in benchmarks and den in benchmarks
        and float(benchmarks[den]["value"]) != 0
    }
    return {
        "meta": fresh["meta"],
        "benchmarks": benchmarks,
        "derived": derived,
    }


# --------------------------------------------------------------- regression


def _cpu_count(doc: Dict) -> Optional[int]:
    value = doc.get("meta", {}).get("machine", {}).get("cpu_count")
    return None if value is None else int(value)


def check_regression(
    current: Dict,
    baseline: Dict,
    threshold: float = DEFAULT_THRESHOLD,
    *,
    skipped: Optional[List[str]] = None,
) -> List[Regression]:
    """Direction-aware comparison of two BENCH_PERF documents.

    A benchmark regresses when it moves more than *threshold* in its bad
    direction (lower for throughput/speedup metrics, higher for wall
    times).  Benchmarks present in only one document are ignored, so the
    suite can grow without invalidating committed baselines.

    When the two documents were measured on machines with different
    ``meta.machine.cpu_count``, the :data:`PARALLELISM_BENCHMARKS`
    comparisons are skipped — a process pool's speedup is bounded by the
    core count, so e.g. a single-CPU CI container's ≲1x ``sweep_speedup``
    baseline would otherwise poison the gate on any other machine.
    Skipped names are appended to *skipped* when a list is supplied.
    """
    regressions: List[Regression] = []
    base_benchmarks = baseline.get("benchmarks", {})
    cpu_now, cpu_base = _cpu_count(current), _cpu_count(baseline)
    cores_differ = (
        cpu_now is not None and cpu_base is not None and cpu_now != cpu_base
    )
    for name, entry in current.get("benchmarks", {}).items():
        base = base_benchmarks.get(name)
        if base is None:
            continue
        if cores_differ and name in PARALLELISM_BENCHMARKS:
            if skipped is not None:
                skipped.append(name)
            continue
        base_value = float(base["value"])
        value = float(entry["value"])
        if base_value == 0:
            continue
        if entry.get("higher_is_better", True):
            change = (value - base_value) / base_value
        else:
            change = (base_value - value) / base_value
        if change < -threshold:
            regressions.append(Regression(name, base_value, value, change))
    return regressions


def render_report(doc: Dict) -> str:
    """Human-readable table of one BENCH_PERF document."""
    lines = [
        f"git {doc['meta']['git_sha'][:12]}  "
        f"requests={doc['meta']['requests']}  jobs={doc['meta']['jobs']}",
        "",
        f"{'benchmark':<24} {'value':>12} unit",
    ]
    for name, entry in doc["benchmarks"].items():
        lines.append(f"{name:<24} {entry['value']:>12.2f} {entry['unit']}")
    lines.append("")
    for name, value in doc.get("derived", {}).items():
        lines.append(f"{name:<24} {value:>12.2f} x")
    return "\n".join(lines)


def run_perf_cli(
    output: str = "BENCH_PERF.json",
    *,
    baseline: Optional[str] = None,
    jobs: int = 4,
    requests: int = BENCH_REQUESTS,
    only: Optional[List[str]] = None,
    update: bool = False,
) -> int:
    """Run the suite, write *output*, compare against *baseline* if present.

    Returns a process exit code: 0 on success, 1 when any benchmark
    regressed by more than 25 % against the baseline.  When *baseline* is
    ``None`` the pre-existing *output* file (the committed baseline)
    serves as the comparison point.  *only* restricts the run to
    benchmarks whose names contain any of the given substrings — note the
    written *output* then holds just that subset, so either point
    ``--output`` elsewhere when iterating against a committed full
    baseline, or pass *update* to rewrite the file in place: fresh
    results are merged over the existing document (untouched benchmarks
    carried over, derived ratios recomputed, ``meta`` refreshed with the
    current git SHA and machine), which is how a committed
    ``BENCH_PERF.json`` is re-baselined without re-running everything.
    """
    baseline_path = baseline if baseline is not None else output
    baseline_doc = None
    if baseline_path and os.path.exists(baseline_path):
        with open(baseline_path, "r", encoding="utf-8") as handle:
            baseline_doc = json.load(handle)

    doc = run_suite(
        requests=requests, jobs=jobs,
        progress=lambda msg: print(f"  {msg}", file=sys.stderr),
        only=only,
    )
    if update:
        existing = None
        if os.path.exists(output):
            with open(output, "r", encoding="utf-8") as handle:
                existing = json.load(handle)
        doc = merge_suite_doc(existing, doc)
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(render_report(doc))
    print(f"\nwrote {output}", file=sys.stderr)

    if baseline_doc is None:
        print("no baseline to compare against", file=sys.stderr)
        return 0
    skipped: List[str] = []
    regressions = check_regression(doc, baseline_doc, skipped=skipped)
    if skipped:
        print(
            f"skipped cross-machine comparisons (cpu_count "
            f"{_cpu_count(doc)} vs baseline {_cpu_count(baseline_doc)}): "
            + ", ".join(skipped),
            file=sys.stderr,
        )
    if regressions:
        print("\nPERFORMANCE REGRESSIONS (>25% worse than baseline):")
        for regression in regressions:
            print(f"  {regression.describe()}")
        return 1
    print(f"no regressions vs {baseline_path}", file=sys.stderr)
    return 0
