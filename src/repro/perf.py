"""The performance-regression harness behind ``BENCH_PERF.json``.

Four benchmarks time the hot kernels this codebase optimises:

* ``ga_evolve_batched`` / ``ga_evolve_reference`` — generations/second of
  :meth:`~repro.scheduling.ga.GAScheduler.evolve` under the batched
  crossover kernel and the per-pair reference kernel
  (``GAConfig(batched=False)``).  Both consume the identical RNG stream,
  so the comparison times exactly the same evolutionary work.
* ``evaluate_scalar`` / ``evaluate_counts`` — warm-cache evaluation
  calls/second of the per-count scalar loop versus the bulk
  :meth:`~repro.pace.evaluation.EvaluationEngine.evaluate_counts` path.
* ``casestudy_wall`` — wall seconds for experiments 1–3 over the scaled
  case-study workload (``REPRO_BENCH_REQUESTS``, default 120).
* ``sweep_speedup`` — parallel-over-sequential speedup of a four-seed
  :func:`~repro.experiments.sweep.run_seed_sweep` on the experiment
  fabric.

Results are written as JSON with machine info and the git SHA so numbers
are attributable; :func:`check_regression` compares two such documents
direction-aware (each benchmark declares whether higher is better) and
reports every metric that got more than ``threshold`` worse.

Entry points: ``python -m repro.cli perf`` or
``python benchmarks/perf/run_perf.py``; see docs/performance.md.
"""

from __future__ import annotations

import json
import os
import platform as platform_module
import subprocess
import sys
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

__all__ = [
    "BenchResult",
    "Regression",
    "run_suite",
    "check_regression",
    "render_report",
    "run_perf_cli",
]

#: Workload scale for the case-study and sweep benchmarks.
BENCH_REQUESTS = int(os.environ.get("REPRO_BENCH_REQUESTS", "120"))

#: Regression threshold: a metric more than this fraction worse than the
#: committed baseline fails the run.
DEFAULT_THRESHOLD = 0.25


@dataclass(frozen=True)
class BenchResult:
    """One benchmark's outcome."""

    name: str
    value: float
    unit: str
    higher_is_better: bool
    detail: str = ""

    def to_json(self) -> Dict:
        return {
            "value": self.value,
            "unit": self.unit,
            "higher_is_better": self.higher_is_better,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class Regression:
    """One metric that got worse than the threshold allows."""

    name: str
    baseline: float
    current: float
    change: float  # signed fraction; negative = worse

    def describe(self) -> str:
        return (
            f"{self.name}: {self.baseline:.4g} -> {self.current:.4g} "
            f"({self.change:+.1%})"
        )


# ------------------------------------------------------------------ kernels


def _make_ga(batched: bool, n_tasks: int = 12, n_nodes: int = 16):
    """A GA over the paper's applications, mirroring the case-study setup."""
    from repro.pace.evaluation import EvaluationEngine
    from repro.pace.hardware import SGI_ORIGIN_2000
    from repro.pace.workloads import paper_applications
    from repro.scheduling.ga import GAConfig, GAScheduler

    engine = EvaluationEngine()
    models = list(paper_applications().values())
    rows = [
        engine.evaluate_counts(model, SGI_ORIGIN_2000, n_nodes) for model in models
    ]
    ga = GAScheduler(
        n_nodes,
        lambda tid, k: float(rows[tid % len(rows)][k - 1]),
        np.random.default_rng(2003),
        GAConfig(batched=batched),
        duration_row=lambda tid: rows[tid % len(rows)],
    )
    for tid in range(n_tasks):
        ga.add_task(tid, deadline=600.0 + 40.0 * tid)
    return ga


def bench_ga_evolve(batched: bool, generations: int = 25, repeats: int = 5) -> BenchResult:
    """Generations/second of ``evolve`` under one crossover kernel.

    Best-of-*repeats* chunks of *generations* each (generations are
    homogeneous in cost, so the fastest chunk is the least-noisy sample).
    Whole-``evolve`` throughput dilutes the crossover kernel behind the
    cost evaluation — :func:`bench_ga_crossover` isolates the kernel.
    """
    free = [0.0] * 16
    ga = _make_ga(batched)
    ga.evolve(3, free, 0.0)  # warm-up: population allocation, caches
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        ga.evolve(generations, free, 0.0)
        best = min(best, time.perf_counter() - start)
    kind = "batched" if batched else "reference"
    return BenchResult(
        name=f"ga_evolve_{kind}",
        value=generations / best,
        unit="generations/s",
        higher_is_better=True,
        detail=f"best of {repeats}x{generations} generations, "
        "12 tasks, 16 nodes, pop 50",
    )


def bench_ga_crossover(batched: bool, n_tasks: int = 30, repeats: int = 7) -> BenchResult:
    """Children/second of the crossover kernel alone (``_make_children``).

    Times the per-generation child construction — pair decisions, order
    splice, mask crossover — outside ``evolve``, so the batched-versus-
    reference ratio is undiluted by the (shared) cost evaluation.
    """
    free = [0.0] * 16
    ga = _make_ga(batched, n_tasks=n_tasks)
    ga.evolve(2, free, 0.0)  # realistic evolved population
    n_children = ga.config.population_size - ga.config.elite_count
    parents = list(range(n_children))
    calls = 30
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(calls):
            ga._make_children(parents, n_children)
        best = min(best, time.perf_counter() - start)
    kind = "batched" if batched else "reference"
    return BenchResult(
        name=f"ga_crossover_{kind}",
        value=calls * n_children / best,
        unit="children/s",
        higher_is_better=True,
        detail=f"best of {repeats}x{calls} calls, {n_tasks} tasks, "
        f"16 nodes, {n_children} children/call",
    )


def bench_evaluate(repeats: int = 200) -> List[BenchResult]:
    """Warm-cache calls/second: scalar per-count loop vs ``evaluate_counts``."""
    from repro.pace.evaluation import EvaluationEngine
    from repro.pace.hardware import SGI_ORIGIN_2000
    from repro.pace.workloads import paper_applications

    engine = EvaluationEngine()
    models = list(paper_applications().values())
    max_nproc = 16
    for model in models:  # warm the cache: realistic steady state
        engine.evaluate_counts(model, SGI_ORIGIN_2000, max_nproc)

    start = time.perf_counter()
    for _ in range(repeats):
        for model in models:
            for k in range(1, max_nproc + 1):
                engine.evaluate_count(model, k, SGI_ORIGIN_2000)
    scalar_elapsed = time.perf_counter() - start
    n_calls = repeats * len(models) * max_nproc

    start = time.perf_counter()
    for _ in range(repeats):
        for model in models:
            engine.evaluate_counts(model, SGI_ORIGIN_2000, max_nproc)
    bulk_elapsed = time.perf_counter() - start

    detail = f"{len(models)} applications x {max_nproc} counts, warm cache"
    return [
        BenchResult("evaluate_scalar", n_calls / scalar_elapsed,
                    "evaluations/s", True, detail),
        BenchResult("evaluate_counts", n_calls / bulk_elapsed,
                    "evaluations/s", True, detail),
    ]


def bench_casestudy(requests: int) -> BenchResult:
    """Wall seconds for experiments 1–3 over one scaled workload."""
    from repro.experiments.tables import run_table3

    start = time.perf_counter()
    run_table3(request_count=requests)
    elapsed = time.perf_counter() - start
    return BenchResult(
        name="casestudy_wall",
        value=elapsed,
        unit="s",
        higher_is_better=False,
        detail=f"experiments 1-3, {requests} requests, seed 2003",
    )


def bench_sweep_speedup(requests: int, jobs: int = 4) -> List[BenchResult]:
    """Sequential and parallel wall time of a four-seed sweep; speedup."""
    from repro.experiments.sweep import run_seed_sweep

    seeds = [2003, 2004, 2005, 2006]
    start = time.perf_counter()
    run_seed_sweep(seeds, request_count=requests, jobs=1)
    sequential = time.perf_counter() - start
    start = time.perf_counter()
    run_seed_sweep(seeds, request_count=requests, jobs=jobs)
    parallel = time.perf_counter() - start
    detail = f"{len(seeds)} seeds x 3 experiments, {requests} requests, jobs={jobs}"
    return [
        BenchResult("sweep_sequential_wall", sequential, "s", False, detail),
        BenchResult("sweep_parallel_wall", parallel, "s", False, detail),
        BenchResult("sweep_speedup", sequential / parallel, "x", True, detail),
    ]


# -------------------------------------------------------------------- suite


def _git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10, check=True,
        )
        return out.stdout.strip()
    except Exception:  # pragma: no cover - detached environments
        return "unknown"


def machine_info() -> Dict[str, object]:
    """Attribution block: where these numbers were measured."""
    return {
        "python": sys.version.split()[0],
        "platform": platform_module.platform(),
        "machine": platform_module.machine(),
        "cpu_count": os.cpu_count(),
        "numpy": np.__version__,
    }


def run_suite(
    *,
    requests: int = BENCH_REQUESTS,
    jobs: int = 4,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Run every benchmark; returns the BENCH_PERF.json document."""

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    results: List[BenchResult] = []
    note("GA evolve (batched kernel)...")
    results.append(bench_ga_evolve(batched=True))
    note("GA evolve (per-pair reference kernel)...")
    results.append(bench_ga_evolve(batched=False))
    note("GA crossover kernel (batched vs reference)...")
    results.append(bench_ga_crossover(batched=True))
    results.append(bench_ga_crossover(batched=False))
    note("evaluation engine (scalar vs bulk)...")
    results.extend(bench_evaluate())
    note(f"case study wall time ({requests} requests)...")
    results.append(bench_casestudy(requests))
    note(f"sweep speedup (4 seeds, jobs={jobs})...")
    results.extend(bench_sweep_speedup(requests, jobs=jobs))

    by_name = {r.name: r for r in results}
    derived = {
        "ga_evolve_speedup": (
            by_name["ga_evolve_batched"].value
            / by_name["ga_evolve_reference"].value
        ),
        "ga_crossover_speedup": (
            by_name["ga_crossover_batched"].value
            / by_name["ga_crossover_reference"].value
        ),
        "evaluate_bulk_speedup": (
            by_name["evaluate_counts"].value / by_name["evaluate_scalar"].value
        ),
    }
    return {
        "meta": {
            "git_sha": _git_sha(),
            "requests": requests,
            "jobs": jobs,
            "machine": machine_info(),
        },
        "benchmarks": {r.name: r.to_json() for r in results},
        "derived": {k: float(v) for k, v in derived.items()},
    }


# --------------------------------------------------------------- regression


def check_regression(
    current: Dict, baseline: Dict, threshold: float = DEFAULT_THRESHOLD
) -> List[Regression]:
    """Direction-aware comparison of two BENCH_PERF documents.

    A benchmark regresses when it moves more than *threshold* in its bad
    direction (lower for throughput/speedup metrics, higher for wall
    times).  Benchmarks present in only one document are ignored, so the
    suite can grow without invalidating committed baselines.
    """
    regressions: List[Regression] = []
    base_benchmarks = baseline.get("benchmarks", {})
    for name, entry in current.get("benchmarks", {}).items():
        base = base_benchmarks.get(name)
        if base is None:
            continue
        base_value = float(base["value"])
        value = float(entry["value"])
        if base_value == 0:
            continue
        if entry.get("higher_is_better", True):
            change = (value - base_value) / base_value
        else:
            change = (base_value - value) / base_value
        if change < -threshold:
            regressions.append(Regression(name, base_value, value, change))
    return regressions


def render_report(doc: Dict) -> str:
    """Human-readable table of one BENCH_PERF document."""
    lines = [
        f"git {doc['meta']['git_sha'][:12]}  "
        f"requests={doc['meta']['requests']}  jobs={doc['meta']['jobs']}",
        "",
        f"{'benchmark':<24} {'value':>12} unit",
    ]
    for name, entry in doc["benchmarks"].items():
        lines.append(f"{name:<24} {entry['value']:>12.2f} {entry['unit']}")
    lines.append("")
    for name, value in doc.get("derived", {}).items():
        lines.append(f"{name:<24} {value:>12.2f} x")
    return "\n".join(lines)


def run_perf_cli(
    output: str = "BENCH_PERF.json",
    *,
    baseline: Optional[str] = None,
    jobs: int = 4,
    requests: int = BENCH_REQUESTS,
) -> int:
    """Run the suite, write *output*, compare against *baseline* if present.

    Returns a process exit code: 0 on success, 1 when any benchmark
    regressed by more than 25 % against the baseline.  When *baseline* is
    ``None`` the pre-existing *output* file (the committed baseline)
    serves as the comparison point.
    """
    baseline_path = baseline if baseline is not None else output
    baseline_doc = None
    if baseline_path and os.path.exists(baseline_path):
        with open(baseline_path, "r", encoding="utf-8") as handle:
            baseline_doc = json.load(handle)

    doc = run_suite(
        requests=requests, jobs=jobs,
        progress=lambda msg: print(f"  {msg}", file=sys.stderr),
    )
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(render_report(doc))
    print(f"\nwrote {output}", file=sys.stderr)

    if baseline_doc is None:
        print("no baseline to compare against", file=sys.stderr)
        return 0
    regressions = check_regression(doc, baseline_doc)
    if regressions:
        print("\nPERFORMANCE REGRESSIONS (>25% worse than baseline):")
        for regression in regressions:
            print(f"  {regression.describe()}")
        return 1
    print(f"no regressions vs {baseline_path}", file=sys.stderr)
    return 0
