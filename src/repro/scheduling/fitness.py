"""Dynamic cost-to-fitness scaling — eq. (9).

"The cost value is then normalised to a fitness value using a dynamic
scaling technique::

    f_v^k = (f_c^max − f_c^k) / (f_c^max − f_c^min)

where f_c^max and f_c^min represent the best and worst cost value in the
scheduling set."  (In cost terms f_c^min is the *best* — lowest — cost and
f_c^max the worst; the resulting fitness is 1 for the best solution and 0
for the worst, rescaled every generation, which keeps selection pressure
constant as the population converges.)
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ValidationError

__all__ = ["scale_fitness"]


def scale_fitness(costs: Sequence[float]) -> np.ndarray:
    """Map population costs to fitness values in ``[0, 1]`` per eq. (9).

    When every cost is identical (a fully converged population) all
    solutions receive fitness 1.0, making selection uniform.

    Raises
    ------
    ValidationError
        If *costs* is empty or contains non-finite values.
    """
    arr = np.asarray(costs, dtype=float)
    if arr.size == 0:
        raise ValidationError("costs must not be empty")
    if not np.all(np.isfinite(arr)):
        raise ValidationError("costs must be finite")
    worst = float(arr.max())
    best = float(arr.min())
    if worst == best:
        return np.ones_like(arr)
    return (worst - arr) / (worst - best)
