"""The genetic-algorithm scheduling kernel (§2.1).

"The genetic algorithm utilises a fixed population size and stochastic
remainder selection" with the two-part coding scheme, specialised
crossover/mutation, the combined cost function of eq. (8) and the dynamic
fitness scaling of eq. (9).  "The algorithm is based on an evolutionary
process and is therefore able to absorb system changes such as the addition
or deletion of tasks" — :meth:`GAScheduler.add_task` and
:meth:`GAScheduler.remove_task` repair the live population instead of
restarting it.

Performance note (see the HPC guides' profile-first rule): the object-level
operators in :mod:`repro.scheduling.operators` and the scalar schedule
builder are the *reference* implementation — clear, validated, and used by
the property tests.  Profiling the case study showed they dominated the run
time, so the kernel keeps its population packed in NumPy arrays:

* ``order``   — ``(P, m)`` task-row indices in execution order;
* ``masks``   — ``(P, m, n)`` node allocations **keyed by task row**, not by
  position, which is what preserves "the node mapping associated with a
  particular task from one generation to the next" across crossover and
  task churn.

Property tests assert the packed evaluator and operators agree with the
reference implementations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ScheduleError, ValidationError
from repro.obs.records import EvolveStep
from repro.obs.trace import Tracer
from repro.scheduling.batched import (
    batched_insert,
    batched_mask_crossover,
    batched_order_splice,
)
from repro.scheduling.coding import SolutionString
from repro.scheduling.evalreuse import (
    EvalReuseStats,
    availability_key,
    packed_digest_buffer,
)
from repro.scheduling.cost import CostWeights
from repro.scheduling.fitness import scale_fitness
from repro.scheduling.operators import stochastic_remainder_selection
from repro.scheduling.vectorized import (
    bernoulli_indices,
    vectorized_children,
    vectorized_costs,
    vectorized_mutation,
    vectorized_selection,
)
from repro.scheduling.warmstart import (
    greedy_allocation_masks,
    greedy_allocation_masks_batch,
    warmstart_orders,
)

__all__ = ["GAConfig", "GAScheduler"]

#: duration(task_id, n_allocated) -> predicted seconds on that many nodes.
DurationFn = Callable[[int, int], float]


@dataclass(frozen=True)
class GAConfig:
    """Tunables of the GA kernel.

    Defaults follow §2.2's description (population of 50); operator rates
    are conventional values the paper does not publish.
    """

    population_size: int = 50
    crossover_probability: float = 0.8
    swap_probability: float = 0.2
    bitflip_probability: float = 0.005
    elite_count: int = 2
    weights: CostWeights = field(default_factory=CostWeights)
    idle_weighting: str = "linear"  # "linear" | "uniform" | "exponential"
    #: Memetic refinement: each generation, the best individual's *ordering*
    #: is re-mapped greedily (per-task earliest-free, completion-optimal
    #: allocation) and the result replaces the worst individual if it wins.
    #: Compensates for the generation budget an event-driven run has
    #: compared to the paper's continuously evolving GA; ablatable.
    memetic: bool = True
    #: Use the whole-population batched crossover kernel
    #: (:mod:`repro.scheduling.batched`).  ``False`` selects the per-pair
    #: reference kernel.  Both consume the identical RNG stream (all random
    #: choices are drawn up front, in the reference order), so the two
    #: settings produce byte-identical populations — the flag exists for
    #: the property tests and the perf-regression baseline.
    batched: bool = True
    #: Evaluation-reuse layer: dedup duplicate individuals before eq.-(8)
    #: costing, carry elite costs between generations of one ``evolve``
    #: call, and cache the final cost vector for ``best_solution`` under
    #: unchanged availability.  eq. (8) is pure and the vectorised
    #: evaluator is row-independent, so reuse is byte-identical to the
    #: naive path (property-tested); ``False`` selects the naive
    #: evaluate-everything reference used by those tests and the perf
    #: baseline.
    eval_reuse: bool = True
    #: Convergence early-stop: halt a generation loop after this many
    #: consecutive generations without best-cost improvement.  ``None``
    #: (default) never stops early — the opt-in changes how many
    #: generations (and RNG draws) a call consumes, so it is off for the
    #: byte-identical default path.
    early_stop_after: Optional[int] = None
    #: GA kernel selector: ``None`` (default) derives the kernel from the
    #: legacy ``batched`` flag; ``"reference"`` / ``"batched"`` name the
    #: byte-identical per-pair and whole-batch kernels explicitly; and
    #: ``"vectorized"`` selects the fully array-drawn kernel of
    #: :mod:`repro.scheduling.vectorized` — whole-population RNG draws,
    #: children-only costing, and warm-start injection in place of the
    #: per-generation memetic step.  Byte-identity with the reference
    #: stream is explicitly relaxed for ``"vectorized"``; the contract is
    #: schedule-cost parity (best cost ≤ reference at an equal generation
    #: budget, every individual legitimate — property-tested).
    kernel: Optional[str] = None
    #: Vectorized kernel only: number of list-scheduling warm-start seeds
    #: (:mod:`repro.scheduling.warmstart`) injected over the worst
    #: individuals once per ``evolve`` call (``0`` disables injection;
    #: the memetic greedy re-map of the incumbent best rides along as one
    #: extra candidate while ``memetic`` is on).  Injection replaces at
    #: most ``population_size - 1`` individuals, so a count at or above
    #: the population size is valid and simply clamps.
    warmstart_count: int = 8

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ValidationError("population_size must be >= 2")
        if not (0 <= self.crossover_probability <= 1):
            raise ValidationError("crossover_probability must be in [0, 1]")
        if not (0 <= self.swap_probability <= 1):
            raise ValidationError("swap_probability must be in [0, 1]")
        if not (0 <= self.bitflip_probability <= 1):
            raise ValidationError("bitflip_probability must be in [0, 1]")
        if not (0 <= self.elite_count < self.population_size):
            raise ValidationError("elite_count must be in [0, population_size)")
        if self.idle_weighting not in ("linear", "uniform", "exponential"):
            raise ValidationError(f"unknown idle weighting {self.idle_weighting!r}")
        if self.early_stop_after is not None and self.early_stop_after < 1:
            raise ValidationError("early_stop_after must be >= 1 (or None)")
        if self.kernel not in (None, "reference", "batched", "vectorized"):
            raise ValidationError(f"unknown kernel {self.kernel!r}")
        if self.warmstart_count < 0:
            raise ValidationError("warmstart_count must be >= 0")

    @property
    def effective_kernel(self) -> str:
        """The kernel that will actually run: explicit ``kernel`` wins,
        otherwise the legacy ``batched`` flag picks batched/reference."""
        if self.kernel is not None:
            return self.kernel
        return "batched" if self.batched else "reference"


class GAScheduler:
    """An evolving population of schedules over a dynamic task set.

    Parameters
    ----------
    n_nodes:
        Number of processing nodes in the local resource.
    duration:
        PACE prediction callback ``duration(task_id, count)``.
    rng:
        Random generator driving all stochastic choices.
    config:
        Kernel tunables.
    duration_row:
        Optional batched prediction callback ``duration_row(task_id)``
        returning the whole ``[t(1) .. t(n)]`` row at once (e.g. through
        :meth:`repro.pace.evaluation.EvaluationEngine.evaluate_counts`).
        Falls back to *n* scalar ``duration`` calls when omitted.

    Usage
    -----
    ``add_task`` / ``remove_task`` maintain the optimisation set T;
    ``evolve(generations, node_free_times, ref_time)`` advances the
    population; ``best_solution()`` returns the incumbent.
    """

    def __init__(
        self,
        n_nodes: int,
        duration: DurationFn,
        rng: np.random.Generator,
        config: GAConfig = GAConfig(),
        *,
        duration_row: Optional[Callable[[int], np.ndarray]] = None,
        tracer: Optional[Tracer] = None,
        trace_name: str = "",
    ) -> None:
        if n_nodes < 1:
            raise ValidationError(f"n_nodes must be >= 1, got {n_nodes}")
        self._n = int(n_nodes)
        self._tracer = tracer
        self._trace_name = trace_name
        self._duration = duration
        self._duration_row_fn = duration_row
        self._rng = rng
        self._config = config
        self._id_order: List[int] = []  # task row -> task id
        self._row_of: Dict[int, int] = {}
        self._dtable = np.empty((0, self._n), dtype=float)
        self._deadline_arr = np.empty(0, dtype=float)
        # Workflow extensions, all inert at their defaults: b-level
        # priorities (0.0 everywhere = no effect), start-time floors
        # (absent = unconstrained), and precedence predecessors (absent =
        # independent tasks).  ``_constraint_cache`` holds the row-keyed
        # (pred matrix, floor vector) pair derived lazily from these.
        self._priority_arr = np.empty(0, dtype=float)
        self._floor: Dict[int, float] = {}
        self._preds: Dict[int, Tuple[int, ...]] = {}
        self._constraint_cache: Optional[
            Tuple[Optional[np.ndarray], Optional[np.ndarray]]
        ] = None
        # Packed population; allocated lazily when the first task arrives.
        self._order: Optional[np.ndarray] = None  # (P, m) int rows
        self._masks: Optional[np.ndarray] = None  # (P, m, n) bool by row
        self._generations = 0
        # (generation index, best cost) samples, one per evolved generation.
        self._history: List[Tuple[int, float]] = []
        # Evaluation-reuse observability + the event-level cost cache: the
        # final cost vector of the last full costing, keyed by the
        # availability it was computed under.  Invalidated whenever the
        # population changes outside a costing (task churn, mid-evolve).
        self._stats = EvalReuseStats()
        self._cached_costs: Optional[np.ndarray] = None
        self._cost_cache_key: Optional[Tuple[bytes, float]] = None

    # ------------------------------------------------------------------ state

    @property
    def config(self) -> GAConfig:
        """The kernel configuration."""
        return self._config

    @property
    def n_nodes(self) -> int:
        """Node count of the managed resource."""
        return self._n

    @property
    def task_ids(self) -> Tuple[int, ...]:
        """The optimisation set T, in row order.

        Row order is insertion order until the first removal; swap-remove
        then moves the last row into the vacated slot, so treat this as an
        unordered set (each individual's *ordering string* — not the row
        numbering — carries execution order).
        """
        return tuple(self._id_order)

    @property
    def n_tasks(self) -> int:
        """Number of tasks currently optimised."""
        return len(self._id_order)

    @property
    def generations(self) -> int:
        """Total generations evolved so far."""
        return self._generations

    @property
    def stats(self) -> EvalReuseStats:
        """Evaluation-reuse counters (live object; see ``stats.snapshot()``).

        Dedup hits, elite carries, event-cache hits/misses, and early
        stops — the observability behind docs/performance.md's measured
        hit rates.
        """
        return self._stats

    @property
    def last_costs(self) -> Optional[np.ndarray]:
        """The cached final cost vector of the last costing (copy).

        Valid for the *current* population under the availability it was
        computed with (see :meth:`best_solution`); ``None`` after task
        churn or before any evaluation.
        """
        if self._cached_costs is None:
            return None
        return self._cached_costs.copy()

    @property
    def history(self) -> List[Tuple[int, float]]:
        """Per-generation ``(generation, best cost)`` samples (copy).

        Costs across scheduling events are not directly comparable — the
        task set and node availability change — but within one event the
        series shows the convergence the GA achieved.
        """
        return list(self._history)

    def deadline(self, task_id: int) -> float:
        """The absolute deadline δ of *task_id*."""
        row = self._require_row(task_id)
        return float(self._deadline_arr[row])

    def _require_row(self, task_id: int) -> int:
        try:
            return self._row_of[task_id]
        except KeyError:
            raise ScheduleError(f"GA does not hold task {task_id}") from None

    @property
    def population(self) -> List[SolutionString]:
        """The population materialised as solution strings (API/testing)."""
        if self._order is None:
            return []
        return [self._solution_at(p) for p in range(self._order.shape[0])]

    def _solution_at(self, p: int) -> SolutionString:
        assert self._order is not None and self._masks is not None
        ordering = [self._id_order[r] for r in self._order[p]]
        mapping = {
            self._id_order[r]: self._masks[p, r].copy()
            for r in range(len(self._id_order))
        }
        return SolutionString(ordering, mapping)

    # ----------------------------------------------------------- task churn

    def _duration_row(self, task_id: int) -> np.ndarray:
        if self._duration_row_fn is not None:
            row = np.asarray(self._duration_row_fn(task_id), dtype=float)
            if row.shape != (self._n,):
                raise ScheduleError(
                    f"duration_row for task {task_id} has shape {row.shape}, "
                    f"expected ({self._n},)"
                )
        else:
            row = np.array(
                [self._duration(task_id, k) for k in range(1, self._n + 1)],
                dtype=float,
            )
        if np.any(row <= 0) or not np.all(np.isfinite(row)):
            raise ScheduleError(f"durations for task {task_id} must be finite and > 0")
        return row

    def _random_masks(self, shape: Tuple[int, ...]) -> np.ndarray:
        masks = self._rng.random(shape) < 0.5
        flat = masks.reshape(-1, self._n)
        empty = ~flat.any(axis=1)
        if empty.any():
            picks = self._rng.integers(self._n, size=int(empty.sum()))
            flat[np.flatnonzero(empty), picks] = True
        return masks

    def _seed_masks(self, durations: np.ndarray, pop: int) -> np.ndarray:
        """Per-individual initial masks for one new task — ``(pop, n)``.

        The paper's GA evolves continuously in real time, accumulating far
        more generations than an event-driven simulation can afford, so
        splicing every new task in at random would leave the population
        too raw to compete.  Instead half the individuals seed the task
        with a random subset of its *optimal* processor count
        ``k* = argmin_k t(k)`` (the eq.-10 minimiser) and half with a fully
        random mask for exploration; evolution refines from there.
        """
        k_star = int(np.argmin(durations)) + 1
        masks = np.zeros((pop, self._n), dtype=bool)
        for i in range(pop):
            if i % 2 == 0:
                cols = self._rng.choice(self._n, size=k_star, replace=False)
                masks[i, cols] = True
            else:
                row = self._rng.random(self._n) < 0.5
                if not row.any():
                    row[int(self._rng.integers(self._n))] = True
                masks[i] = row
        return masks

    def add_task(
        self,
        task_id: int,
        deadline: float,
        *,
        priority: float = 0.0,
        floor: Optional[float] = None,
        predecessors: Sequence[int] = (),
    ) -> None:
        """Add a task to the optimisation set, splicing it into the population.

        Existing individuals keep their orderings/mappings; the new task is
        spliced in (individual 0 appends in arrival order — a standing
        greedy candidate — the rest at random positions) with the seeded
        masks of :meth:`_seed_masks`, so the population "absorbs" the
        change rather than restarting.

        The keyword extensions carry workflow structure and are inert at
        their defaults: *priority* (a b-level) biases the warm-start
        orderings, *floor* is an absolute earliest start time (data still
        staging in, or a dispatched parent's booked completion), and
        *predecessors* lists co-queued task ids that must precede this one
        in every individual's ordering (enforced by stable topological
        repair and respected by the evaluator).
        """
        if task_id in self._row_of:
            raise ScheduleError(f"task {task_id} already in optimisation set")
        self._invalidate_cost_cache()
        new_row = len(self._id_order)
        self._id_order.append(task_id)
        self._row_of[task_id] = new_row
        durations = self._duration_row(task_id)
        self._dtable = np.vstack([self._dtable, durations])
        self._deadline_arr = np.append(self._deadline_arr, float(deadline))
        self._priority_arr = np.append(self._priority_arr, float(priority))
        if floor is not None:
            self._floor[task_id] = float(floor)
        if predecessors:
            self._preds[task_id] = tuple(int(p) for p in predecessors)
        self._constraint_cache = None
        pop = self._config.population_size
        if self._order is None:
            self._order = np.zeros((pop, 1), dtype=np.int64)
            self._masks = self._seed_masks(durations, pop)[:, None, :]
            return
        assert self._masks is not None
        p, m = self._order.shape
        positions = self._rng.integers(0, m + 1, size=p)
        positions[0] = m  # individual 0 keeps arrival order
        self._order = batched_insert(self._order, positions, new_row)
        self._masks = np.concatenate(
            [self._masks, self._seed_masks(durations, p)[:, None, :]], axis=1
        )
        self._repair_orders(self._order)

    def set_floor(self, task_id: int, floor: float) -> None:
        """Raise *task_id*'s earliest-start floor (monotonic: ``max`` wins).

        The scheduler calls this when a predecessor leaves the optimisation
        set for the executor — the precedence constraint collapses to "not
        before the parent's booked completion" — and when a staging input's
        arrival estimate moves.
        """
        self._require_row(task_id)
        current = self._floor.get(task_id)
        if current is not None and current >= floor:
            return
        self._floor[task_id] = float(floor)
        self._constraint_cache = None
        self._invalidate_cost_cache()

    def remove_task(self, task_id: int) -> None:
        """Remove a task (it started executing, finished, or was cancelled).

        Swap-remove: the *last* task row moves into the vacated slot, so
        the row-key bookkeeping is O(1) instead of renumbering every task
        above the removed row.  Row keys are arbitrary labels — every
        per-row structure (``_dtable``, ``_deadline_arr``, the mask axis)
        is re-keyed consistently and each individual's explicit ordering
        string is renamed, so the population is unchanged as a set of
        solutions (see DESIGN.md on the packed-array invariants).
        """
        row = self._require_row(task_id)
        self._invalidate_cost_cache()
        del self._row_of[task_id]
        self._floor.pop(task_id, None)
        self._preds.pop(task_id, None)
        self._constraint_cache = None
        last = len(self._id_order) - 1
        moved_id = self._id_order[last]
        self._id_order[row] = moved_id
        self._id_order.pop()
        assert self._order is not None and self._masks is not None
        if not self._id_order:
            self._order = None
            self._masks = None
            self._dtable = np.empty((0, self._n), dtype=float)
            self._deadline_arr = np.empty(0, dtype=float)
            self._priority_arr = np.empty(0, dtype=float)
            self._floor.clear()
            self._preds.clear()
            return
        if row != last:
            self._row_of[moved_id] = row
            self._dtable[row] = self._dtable[last]
            self._deadline_arr[row] = self._deadline_arr[last]
            self._priority_arr[row] = self._priority_arr[last]
            self._masks[:, row] = self._masks[:, last]
        self._dtable = self._dtable[:last]
        self._deadline_arr = self._deadline_arr[:last]
        self._priority_arr = self._priority_arr[:last]
        p, m = self._order.shape
        new_order = self._order[self._order != row].reshape(p, m - 1)
        if row != last:
            new_order[new_order == last] = row
        self._order = new_order
        self._masks = self._masks[:, :last]

    # ------------------------------------------------------------- evaluation

    def _invalidate_cost_cache(self) -> None:
        """Drop the event-level cost cache (population about to change)."""
        self._cached_costs = None
        self._cost_cache_key = None

    def _constraint_arrays(
        self,
    ) -> Tuple[Optional[np.ndarray], Optional[np.ndarray]]:
        """Row-keyed ``(pred matrix, floor vector)``, or ``(None, None)``.

        The pred matrix is ``(m, maxP)`` of predecessor *rows* padded with
        the sentinel row ``m``; the floor vector is ``(m,)`` with ``-inf``
        where unconstrained.  A constraint is active only while **both**
        ends are still in the optimisation set — a dispatched parent's
        influence survives as the child's floor instead.  Both arrays are
        ``None`` whenever no constraint of that kind is active, which is
        what keeps the independent-task evaluation path untouched.
        """
        if self._constraint_cache is None:
            m = len(self._id_order)
            pred_rows: Dict[int, List[int]] = {}
            for child, parents in self._preds.items():
                crow = self._row_of.get(child)
                if crow is None:
                    continue
                rows = [self._row_of[p] for p in parents if p in self._row_of]
                if rows:
                    pred_rows[crow] = rows
            pred_mat = None
            if pred_rows:
                maxp = max(len(v) for v in pred_rows.values())
                pred_mat = np.full((m, maxp), m, dtype=np.int64)
                for crow, rows in pred_rows.items():
                    pred_mat[crow, : len(rows)] = rows
            floor_vec = None
            entries = [
                (self._row_of[t], f)
                for t, f in self._floor.items()
                if t in self._row_of
            ]
            if entries:
                floor_vec = np.full(m, -np.inf)
                for r, f in entries:
                    floor_vec[r] = f
            self._constraint_cache = (pred_mat, floor_vec)
        return self._constraint_cache

    def _repair_orders(self, order: np.ndarray) -> None:
        """Stable topological repair of every ordering string, in place.

        Individuals already respecting every active precedence constraint
        are untouched (the common case: crossover splices and most swap
        mutations preserve validity); violators are rebuilt by a stable
        Kahn pass — tasks keep their relative order except where a
        predecessor must be pulled ahead.  A no-op (and zero cost) when no
        constraints are active, preserving the independent-task paths
        byte for byte.
        """
        pred_mat, _ = self._constraint_arrays()
        if pred_mat is None:
            return
        m = len(self._id_order)
        pos = np.empty(m + 1, dtype=np.int64)
        for p in range(order.shape[0]):
            seq = order[p]
            pos[m] = -1  # the sentinel row never binds
            pos[seq] = np.arange(m)
            latest_pred = pos[pred_mat].max(axis=1)
            if np.all(pos[:m] > latest_pred):
                continue
            placed = np.zeros(m + 1, dtype=bool)
            placed[m] = True
            out: List[int] = []
            pending = [int(r) for r in seq]
            while pending:
                for i, r in enumerate(pending):
                    if placed[pred_mat[r]].all():
                        out.append(r)
                        placed[r] = True
                        del pending[i]
                        break
                else:  # pragma: no cover - graphs are validated acyclic
                    raise ScheduleError(
                        "precedence constraints contain a cycle"
                    )
            order[p] = out

    def _store_cost_cache(
        self, costs: np.ndarray, node_free_times: Sequence[float], ref_time: float
    ) -> None:
        self._cached_costs = costs
        self._cost_cache_key = availability_key(node_free_times, ref_time)

    def _cached_costs_for(
        self, node_free_times: Sequence[float], ref_time: float
    ) -> Optional[np.ndarray]:
        """The cached cost vector iff availability matches, else ``None``."""
        if self._cached_costs is None or self._cost_cache_key is None:
            return None
        if availability_key(node_free_times, ref_time) != self._cost_cache_key:
            return None
        return self._cached_costs

    def _population_costs(
        self,
        node_free_times: Sequence[float],
        ref_time: float,
        *,
        memo: Optional[Dict[bytes, float]] = None,
    ) -> np.ndarray:
        """eq.-(8) costs of the current population, through the reuse layer.

        ``memo`` is the evolve-scoped digest→cost map: every cost
        computed earlier in the same ``evolve`` call (availability is
        fixed for the whole call), which subsumes elite carry-forward —
        elites re-enter the next generation unchanged, so their digests
        always hit.  Costing then (1) digests every individual in one
        vectorised pass, (2) looks each digest up in the memo, (3)
        evaluates only the first occurrence of each unknown digest, and
        (4) scatters costs back over the whole population.  Because
        eq. (8) is pure and the vectorised evaluator is row-independent,
        the result is bit-identical to evaluating everything (see
        :mod:`repro.scheduling.evalreuse`).  On a converged population
        nearly every digest hits, so a late-run generation costs a
        handful of novel schedules instead of ``population_size``.
        """
        assert self._order is not None and self._masks is not None
        if not self._config.eval_reuse:
            return self._evaluate(self._order, self._masks, node_free_times, ref_time)
        pop = self._order.shape[0]
        stats = self._stats
        stats.rows_costed += pop
        buffer, stride = packed_digest_buffer(self._order, self._masks)
        costs = np.empty(pop)
        unknown = np.zeros(pop, dtype=bool)
        slot_of = np.empty(pop, dtype=np.int64)
        eval_rows: List[int] = []
        eval_keys: List[bytes] = []
        pending: Dict[bytes, int] = {}
        for p in range(pop):
            digest = buffer[p * stride:(p + 1) * stride]
            if memo is not None:
                cached = memo.get(digest)
                if cached is not None:
                    costs[p] = cached
                    stats.carry_hits += 1
                    continue
            slot = pending.get(digest)
            if slot is None:
                slot = len(eval_rows)
                pending[digest] = slot
                eval_rows.append(p)
                eval_keys.append(digest)
            else:
                stats.dedup_hits += 1
            unknown[p] = True
            slot_of[p] = slot
        if eval_rows:
            rows_arr = np.asarray(eval_rows, dtype=np.int64)
            sub_costs = self._evaluate(
                self._order[rows_arr], self._masks[rows_arr],
                node_free_times, ref_time,
            )
            stats.rows_evaluated += rows_arr.size
            costs[unknown] = sub_costs[slot_of[unknown]]
            if memo is not None:
                for slot, digest in enumerate(eval_keys):
                    memo[digest] = float(sub_costs[slot])
        return costs

    def _evaluate(
        self,
        order: np.ndarray,
        masks: np.ndarray,
        node_free_times: Sequence[float],
        ref_time: float,
    ) -> np.ndarray:
        """Vectorised eq.-(8) cost of every individual in (order, masks).

        Scratch buffers (``free``/``scratch``/``gap``/``has_gap``/
        ``pocket``) are allocated once per call and reused across all *m*
        task steps via ``out=``/`copyto` — the per-step ``np.where`` and
        ``np.tile`` temporaries were measurable churn at event frequency.
        Every rewritten expression computes the same values in the same
        order, so costs are bit-identical to the allocating version.
        """
        pop, m = order.shape
        n = masks.shape[2]
        free0 = np.maximum(np.asarray(node_free_times, dtype=float), ref_time)
        if free0.size != n:
            raise ScheduleError(
                f"node_free_times has {free0.size} entries, resource has {n}"
            )
        self._stats.evaluate_calls += 1
        free = np.empty((pop, n))
        free[:] = free0
        rows_idx = np.arange(pop)
        makespan = np.full(pop, ref_time)
        theta = np.zeros(pop)
        idle_len = np.zeros(pop)
        idle_sq = np.zeros(pop)  # Σ (b² − a²)/2 relative to ref, linear weight
        scratch = np.empty((pop, n))
        gap = np.empty((pop, n))
        pocket = np.empty((pop, n))
        has_gap = np.empty((pop, n), dtype=bool)
        exp_pockets: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        weighting = self._config.idle_weighting
        dtable = self._dtable
        deadlines = self._deadline_arr
        # Workflow constraints (None/None for independent tasks, keeping
        # this loop byte-identical to the unconstrained original): floors
        # lower-bound a task's start; the completion track carries each
        # row's finish time so successors start no earlier.  Row ``m`` is
        # the sentinel for padded predecessor slots (-inf, never binds).
        pred_mat, floor_vec = self._constraint_arrays()
        comp_track = (
            np.full((pop, m + 1), -np.inf) if pred_mat is not None else None
        )
        for j in range(m):
            rows = order[:, j]
            msk = masks[rows_idx, rows]  # (pop, n)
            scratch.fill(-np.inf)
            np.copyto(scratch, free, where=msk)
            start = scratch.max(axis=1)
            if floor_vec is not None:
                start = np.maximum(start, floor_vec[rows])
            if comp_track is not None:
                pm = pred_mat[rows]  # (pop, maxP) predecessor rows
                start = np.maximum(
                    start, comp_track[rows_idx[:, None], pm].max(axis=1)
                )
            counts = msk.sum(axis=1)
            dur = dtable[rows, counts - 1]
            comp = start + dur
            if comp_track is not None:
                comp_track[rows_idx, rows] = comp
            np.subtract(start[:, None], free, out=scratch)
            gap.fill(0.0)
            np.copyto(gap, scratch, where=msk)
            np.greater(gap, 0.0, out=has_gap)
            pocket.fill(0.0)
            np.copyto(pocket, gap, where=has_gap)
            idle_len += pocket.sum(axis=1)
            if weighting == "linear":
                b = start - ref_time
                np.subtract(free, ref_time, out=scratch)
                np.multiply(scratch, scratch, out=scratch)  # a²
                np.subtract((b * b)[:, None], scratch, out=scratch)  # b² − a²
                np.divide(scratch, 2.0, out=scratch)
                pocket.fill(0.0)
                np.copyto(pocket, scratch, where=has_gap)
                idle_sq += pocket.sum(axis=1)
            elif weighting == "exponential":
                a = free - ref_time
                b = np.broadcast_to(start[:, None], msk.shape) - ref_time
                exp_pockets.append((a, b, has_gap.copy()))
            theta += np.maximum(comp - deadlines[rows], 0.0)
            np.copyto(free, np.broadcast_to(comp[:, None], (pop, n)), where=msk)
            np.maximum(makespan, comp, out=makespan)
        omega = makespan - ref_time
        if weighting == "linear":
            with np.errstate(invalid="ignore", divide="ignore"):
                phi = np.where(omega > 0, idle_len - idle_sq / np.where(omega > 0, omega, 1.0), 0.0)
        elif weighting == "uniform":
            phi = idle_len
        else:  # exponential: ∫ exp(−3t/ω) dt over each pocket
            phi = np.zeros(pop)
            rate = np.where(omega > 0, 3.0 / np.where(omega > 0, omega, 1.0), 0.0)
            for a, b, has_gap in exp_pockets:
                r = rate[:, None]
                safe_r = np.where(r > 0, r, 1.0)
                contrib = np.where(
                    has_gap & (r > 0),
                    (np.exp(-safe_r * a) - np.exp(-safe_r * b)) / safe_r,
                    0.0,
                )
                phi += contrib.sum(axis=1)
        w = self._config.weights
        return (w.makespan * omega + w.idle * phi + w.deadline * theta) / w.total

    # --------------------------------------------------------------- operators

    def _crossover_pair(
        self,
        pa: int,
        pb: int,
        order: np.ndarray,
        masks: np.ndarray,
        cut: int,
        point: int,
    ) -> Tuple[Tuple[np.ndarray, np.ndarray], Tuple[np.ndarray, np.ndarray]]:
        """Two-part crossover of individuals *pa*, *pb* (per-pair reference).

        Ordering: splice at *cut* (both directions).  Mapping: flatten each
        parent's masks *in the child's task order*, single-point binary
        crossover at the shared *point*, un-flatten keyed by row.  This is
        the reference kernel the batched operators are validated against
        (``GAConfig(batched=False)`` routes ``evolve`` through it).
        """
        m, n = masks.shape[1], masks.shape[2]
        oa, ob = order[pa], order[pb]

        def splice(head_src: np.ndarray, tail_src: np.ndarray) -> np.ndarray:
            head = head_src[:cut]
            # Membership via a row-indexed lookup table: rows are 0..m−1, so
            # this is O(m) versus np.isin's sort-based path.
            in_head = np.zeros(m, dtype=bool)
            in_head[head] = True
            tail = tail_src[~in_head[tail_src]]
            return np.concatenate([head, tail])

        c1_order = splice(oa, ob)
        c2_order = splice(ob, oa)

        def cross_maps(
            child_order: np.ndarray, first: np.ndarray, second: np.ndarray
        ) -> np.ndarray:
            flat_first = first[child_order].reshape(-1)
            flat_second = second[child_order].reshape(-1)
            child_flat = np.concatenate([flat_first[:point], flat_second[point:]])
            by_position = child_flat.reshape(m, n)
            child_masks = np.empty_like(first)
            child_masks[child_order] = by_position
            return child_masks

        c1_masks = cross_maps(c1_order, masks[pa], masks[pb])
        c2_masks = cross_maps(c2_order, masks[pb], masks[pa])
        return (c1_order, c1_masks), (c2_order, c2_masks)

    def _make_children(
        self, parents: Sequence[int], n_children: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The next generation's non-elite individuals — ``(order, masks)``.

        Consecutive selected parents are paired; each pair crosses over
        with ``crossover_probability`` or is copied through.  All random
        choices are drawn *up front*, scalar, in the reference order (pair
        decision, then cut, then point, per pair) so the batched and
        per-pair kernels consume one identical RNG stream and produce
        byte-identical children.
        """
        assert self._order is not None and self._masks is not None
        cfg = self._config
        m = len(self._id_order)
        n = self._n
        pair_count = len(parents) // 2
        do_cross = np.zeros(pair_count, dtype=bool)
        cuts = np.zeros(pair_count, dtype=np.int64)
        points = np.zeros(pair_count, dtype=np.int64)
        for i in range(pair_count):
            if self._rng.random() < cfg.crossover_probability:
                do_cross[i] = True
                cuts[i] = self._rng.integers(0, m + 1)
                points[i] = self._rng.integers(0, m * n + 1)
        pa = np.asarray(parents[: 2 * pair_count : 2], dtype=np.int64)
        pb = np.asarray(parents[1 : 2 * pair_count : 2], dtype=np.int64)
        total = 2 * pair_count + (len(parents) % 2)
        child_order = np.empty((total, m), dtype=self._order.dtype)
        child_masks = np.empty((total, m, n), dtype=bool)
        if cfg.effective_kernel == "reference":
            self._children_reference(
                child_order, child_masks, pa, pb, do_cross, cuts, points
            )
        else:
            self._children_batched(
                child_order, child_masks, pa, pb, do_cross, cuts, points
            )
        if len(parents) % 2 == 1:
            leftover = parents[-1]
            child_order[-1] = self._order[leftover]
            child_masks[-1] = self._masks[leftover]
        return child_order[:n_children], child_masks[:n_children]

    def _children_batched(
        self,
        child_order: np.ndarray,
        child_masks: np.ndarray,
        pa: np.ndarray,
        pb: np.ndarray,
        do_cross: np.ndarray,
        cuts: np.ndarray,
        points: np.ndarray,
    ) -> None:
        """Fill children slots ``2i``/``2i+1`` with whole-batch array ops."""
        assert self._order is not None and self._masks is not None
        order, masks = self._order, self._masks
        plain = np.flatnonzero(~do_cross)
        if plain.size:
            child_order[2 * plain] = order[pa[plain]]
            child_order[2 * plain + 1] = order[pb[plain]]
            child_masks[2 * plain] = masks[pa[plain]]
            child_masks[2 * plain + 1] = masks[pb[plain]]
        crossed = np.flatnonzero(do_cross)
        if crossed.size:
            oa, ob = order[pa[crossed]], order[pb[crossed]]
            ma, mb = masks[pa[crossed]], masks[pb[crossed]]
            c1 = batched_order_splice(oa, ob, cuts[crossed])
            c2 = batched_order_splice(ob, oa, cuts[crossed])
            child_order[2 * crossed] = c1
            child_order[2 * crossed + 1] = c2
            child_masks[2 * crossed] = batched_mask_crossover(
                c1, ma, mb, points[crossed]
            )
            child_masks[2 * crossed + 1] = batched_mask_crossover(
                c2, mb, ma, points[crossed]
            )

    def _children_reference(
        self,
        child_order: np.ndarray,
        child_masks: np.ndarray,
        pa: np.ndarray,
        pb: np.ndarray,
        do_cross: np.ndarray,
        cuts: np.ndarray,
        points: np.ndarray,
    ) -> None:
        """Per-pair reference kernel (the seed implementation's loop)."""
        assert self._order is not None and self._masks is not None
        for i in range(pa.size):
            a, b = int(pa[i]), int(pb[i])
            if do_cross[i]:
                (o1, m1), (o2, m2) = self._crossover_pair(
                    a, b, self._order, self._masks, int(cuts[i]), int(points[i])
                )
            else:
                o1, m1 = self._order[a], self._masks[a]
                o2, m2 = self._order[b], self._masks[b]
            child_order[2 * i], child_masks[2 * i] = o1, m1
            child_order[2 * i + 1], child_masks[2 * i + 1] = o2, m2

    def _mutate_population(self, order: np.ndarray, masks: np.ndarray) -> None:
        """In-place two-part mutation: order swaps + mapping bit flips."""
        cfg = self._config
        pop, m = order.shape
        n = masks.shape[2]
        if m >= 2 and cfg.swap_probability > 0:
            swap = self._rng.random(pop) < cfg.swap_probability
            for p in np.flatnonzero(swap):
                i, j = self._rng.choice(m, size=2, replace=False)
                order[p, i], order[p, j] = order[p, j], order[p, i]
        if cfg.bitflip_probability > 0:
            flips = self._rng.random(masks.shape) < cfg.bitflip_probability
            masks ^= flips
        flat = masks.reshape(-1, n)
        empty = ~flat.any(axis=1)
        if empty.any():
            picks = self._rng.integers(n, size=int(empty.sum()))
            flat[np.flatnonzero(empty), picks] = True

    def greedy_mapping(
        self, order_row: np.ndarray, node_free_times: Sequence[float], ref_time: float
    ) -> np.ndarray:
        """Completion-optimal masks for a fixed task order — ``(m, n)`` bool.

        Walks the tasks in *order_row* (task rows); each is allocated the
        earliest-free node subset minimising its completion time (the same
        argument as :func:`repro.scheduling.fifo.earliest_free_allocation`:
        on a homogeneous resource only the k earliest-free nodes need
        considering for each size k).  Delegates to the shared allocator in
        :mod:`repro.scheduling.warmstart`, which also maps the warm-start
        seed orderings.
        """
        return greedy_allocation_masks(
            order_row, self._dtable, node_free_times, ref_time
        )

    # --------------------------------------------------------------- evolution

    def _memetic_step(
        self,
        costs: np.ndarray,
        node_free_times: Sequence[float],
        ref_time: float,
        memo: Optional[Dict[bytes, float]] = None,
    ) -> np.ndarray:
        """Replace the worst individual with the greedy re-map of the best."""
        assert self._order is not None and self._masks is not None
        best = int(np.argmin(costs))
        worst = int(np.argmax(costs))
        if best == worst:
            return costs
        candidate_masks = self.greedy_mapping(
            self._order[best], node_free_times, ref_time
        )
        cand_cost = self._evaluate(
            self._order[best : best + 1],
            candidate_masks[None, :, :],
            node_free_times,
            ref_time,
        )[0]
        if cand_cost < costs[worst]:
            self._order[worst] = self._order[best]
            self._masks[worst] = candidate_masks
            costs = costs.copy()
            costs[worst] = cand_cost
            if memo is not None:
                # The injected individual is likely to elite its way into
                # the next generation; remember its (already computed) cost.
                digest, _ = packed_digest_buffer(
                    self._order[worst : worst + 1],
                    self._masks[worst : worst + 1],
                )
                memo[digest] = float(cand_cost)
        return costs

    def _vector_costs(
        self,
        order: np.ndarray,
        masks: np.ndarray,
        node_free_times: Sequence[float],
        ref_time: float,
    ) -> np.ndarray:
        """eq.-(8) costs through the lean whole-population evaluator.

        Workflow constraints route through :meth:`_evaluate` instead —
        the lean evaluator has no completion track, and the vectorized
        kernel's contract is cost parity, not a particular code path.
        """
        pred_mat, floor_vec = self._constraint_arrays()
        if pred_mat is not None or floor_vec is not None:
            return self._evaluate(order, masks, node_free_times, ref_time)
        self._stats.evaluate_calls += 1
        return vectorized_costs(
            order,
            masks,
            self._dtable,
            self._deadline_arr,
            node_free_times,
            ref_time,
            self._config.weights,
            self._config.idle_weighting,
        )

    def _warmstart_inject(
        self,
        costs: np.ndarray,
        node_free_times: Sequence[float],
        ref_time: float,
    ) -> np.ndarray:
        """Replace the worst individuals with winning list-scheduling seeds.

        The vectorized kernel's once-per-``evolve`` analogue of the
        per-generation memetic step: build ``warmstart_count`` seeds
        (:func:`repro.scheduling.warmstart.warmstart_population`) plus —
        while ``memetic`` is on — the greedy re-map of the incumbent best
        ordering, cost them all in one evaluator call, and replace the
        worst individuals pairwise (best seed against worst incumbent)
        wherever the seed wins.  With elitism this bounds the kernel's
        best cost by the best greedy schedule from generation 0 on, which
        is what makes the cost-parity gate hold without per-generation
        greedy re-maps.
        """
        assert self._order is not None and self._masks is not None
        cfg = self._config
        pop = self._order.shape[0]
        order_parts = []
        if cfg.warmstart_count > 0:
            # Priorities feed the seed rules only when some task carries a
            # nonzero b-level — the all-zero default keeps the call (and
            # its RNG draws) identical to the pre-workflow path.
            priorities = (
                self._priority_arr if np.any(self._priority_arr != 0.0) else None
            )
            order_parts.append(
                warmstart_orders(
                    self._dtable,
                    self._deadline_arr,
                    cfg.warmstart_count,
                    self._rng,
                    priorities=priorities,
                )
            )
        if cfg.memetic:
            order_parts.append(self._order[int(np.argmin(costs))][None, :])
        if not order_parts:
            return costs
        w_orders = np.concatenate(order_parts)
        self._repair_orders(w_orders)
        w_masks = greedy_allocation_masks_batch(
            w_orders, self._dtable, node_free_times, ref_time
        )
        seed_costs = self._vector_costs(w_orders, w_masks, node_free_times, ref_time)
        self._stats.rows_costed += seed_costs.size
        self._stats.rows_evaluated += seed_costs.size
        count = min(seed_costs.size, pop - 1)
        seed_rank = np.argsort(seed_costs, kind="stable")[:count]
        worst_rank = np.argsort(costs, kind="stable")[::-1][:count]
        take = seed_costs[seed_rank] < costs[worst_rank]
        if take.any():
            rows = worst_rank[take]
            seeds = seed_rank[take]
            self._order[rows] = w_orders[seeds]
            self._masks[rows] = w_masks[seeds]
            costs = costs.copy()
            costs[rows] = seed_costs[seeds]
            self._stats.warmstart_seeds += int(take.sum())
        return costs

    def _memetic_vectorized(
        self,
        costs: np.ndarray,
        cached: Optional[Tuple[np.ndarray, np.ndarray, float]],
        node_free_times: Sequence[float],
        ref_time: float,
    ) -> Tuple[np.ndarray, Optional[Tuple[np.ndarray, np.ndarray, float]]]:
        """The memetic step with the candidate cached between generations.

        The reference kernel greedily re-maps the incumbent best ordering
        *every* generation and injects the result over the worst
        individual.  The greedy re-map is a pure function of (ordering,
        availability) and availability is fixed within one ``evolve``
        call, so this keeps the last ``(ordering, masks, cost)`` candidate
        and only recomputes when the incumbent's ordering changed — on a
        converged population almost never.  Re-*injection* over the worst
        individual still happens every generation the candidate wins
        (selection churn can drop a previously injected copy), which is a
        pair of array copies, not an evaluation.  Mutates *costs* in
        place (the caller owns the freshly concatenated vector).
        """
        assert self._order is not None and self._masks is not None
        best = int(np.argmin(costs))
        border = self._order[best]
        if cached is None or not np.array_equal(border, cached[0]):
            cand_masks = greedy_allocation_masks(
                border, self._dtable, node_free_times, ref_time
            )
            cand_cost = float(
                self._vector_costs(
                    border[None, :], cand_masks[None, :, :],
                    node_free_times, ref_time,
                )[0]
            )
            self._stats.rows_costed += 1
            self._stats.rows_evaluated += 1
            cached = (border.copy(), cand_masks, cand_cost)
        cand_order, cand_masks, cand_cost = cached
        worst = int(np.argmax(costs))
        if worst != best and cand_cost < costs[worst]:
            self._order[worst] = cand_order
            self._masks[worst] = cand_masks
            costs[worst] = cand_cost
        return costs, cached

    def _evolve_vectorized(
        self,
        generations: int,
        node_free_times: Sequence[float],
        ref_time: float,
    ) -> float:
        """The ``kernel="vectorized"`` generation loop (see module notes).

        Structurally the same cost → fitness → elites → selection →
        crossover → mutation cycle as the reference loop, with three
        deliberate differences:

        * **children-only costing** — elites re-enter unchanged, so their
          costs are carried structurally (counted as ``carry_hits``)
          instead of re-derived through the digest memo;
        * **array-drawn randomness** — a fixed number of RNG calls per
          generation (see :mod:`repro.scheduling.vectorized`), which is
          why this kernel's stream diverges from the reference;
        * **warm-start injection once per call** in place of the
          per-generation memetic re-map.

        In-batch dedup is deliberately skipped: at case-study sizes the
        digest loop costs more than the evaluations it saves, and the
        lean evaluator makes redundant rows cheap (docs/performance.md).
        The memetic refinement survives in two cheaper forms: the greedy
        re-map of the incumbent best rides the warm-start injection, and
        per generation it re-runs **only when the incumbent's ordering
        changed** — the greedy re-map is a pure function of (ordering,
        availability), so repeating it on an unchanged ordering cannot
        produce a new candidate.
        """
        assert self._order is not None and self._masks is not None
        cfg = self._config
        stats = self._stats
        rng = self._rng
        self._invalidate_cost_cache()
        generations_before = self._generations
        history_before = len(self._history)
        costs = self._vector_costs(
            self._order, self._masks, node_free_times, ref_time
        )
        stats.rows_costed += costs.size
        stats.rows_evaluated += costs.size
        costs = self._warmstart_inject(costs, node_free_times, ref_time)
        best_seen = float(costs.min())
        stalled = 0
        pop = cfg.population_size
        m = len(self._id_order)
        n = self._n
        elite = cfg.elite_count
        n_children = pop - elite
        pairs = n_children // 2
        p_cross = cfg.crossover_probability
        p_swap = cfg.swap_probability
        p_flip = cfg.bitflip_probability
        do_swaps = m >= 2 and p_swap > 0
        last_memetic: Optional[Tuple[np.ndarray, np.ndarray, float]] = None
        done = 0
        stop = False
        while done < generations and not stop:
            # Pre-draw a block of generations' positional randomness in a
            # handful of array RNG calls (a scalar `rng.integers` costs as
            # much as a whole-population array draw).
            block = min(32, generations - done)
            if pairs:
                cross_flags = rng.random((block, pairs)) < p_cross
                cuts_b = rng.integers(0, m + 1, size=(block, pairs))
                points_b = rng.integers(0, m * n + 1, size=(block, pairs))
            if do_swaps:
                swap_flags = rng.random((block, n_children)) < p_swap
                swap_i = rng.integers(0, m, size=(block, n_children))
                swap_j = rng.integers(0, m - 1, size=(block, n_children))
            for t in range(block):
                fitness = scale_fitness(costs)
                elite_idx = np.argsort(costs, kind="stable")[:elite]
                parents = vectorized_selection(fitness, n_children, rng)
                if pairs:
                    child_order, child_masks = vectorized_children(
                        self._order,
                        self._masks,
                        parents,
                        cross_flags[t],
                        cuts_b[t],
                        points_b[t],
                    )
                else:
                    child_order = self._order[parents].copy()
                    child_masks = self._masks[parents].copy()
                flip_idx = (
                    bernoulli_indices(rng, n_children * m * n, p_flip)
                    if p_flip > 0
                    else None
                )
                vectorized_mutation(
                    child_order,
                    child_masks,
                    swap_flags[t] if do_swaps else None,
                    swap_i[t] if do_swaps else None,
                    swap_j[t] if do_swaps else None,
                    flip_idx,
                    rng,
                )
                self._repair_orders(child_order)
                child_costs = self._vector_costs(
                    child_order, child_masks, node_free_times, ref_time
                )
                self._order = np.concatenate(
                    [self._order[elite_idx], child_order]
                )
                self._masks = np.concatenate(
                    [self._masks[elite_idx], child_masks]
                )
                costs = np.concatenate([costs[elite_idx], child_costs])
                stats.rows_costed += pop
                stats.rows_evaluated += n_children
                stats.carry_hits += elite_idx.size
                if cfg.memetic:
                    costs, last_memetic = self._memetic_vectorized(
                        costs, last_memetic, node_free_times, ref_time
                    )
                self._generations += 1
                new_best = float(costs.min())
                self._history.append((self._generations, new_best))
                if cfg.early_stop_after is not None:
                    if new_best < best_seen:
                        best_seen = new_best
                        stalled = 0
                    else:
                        stalled += 1
                        if stalled >= cfg.early_stop_after:
                            stats.early_stops += 1
                            stop = True
                            break
            done += block
        if cfg.eval_reuse:
            self._store_cost_cache(costs, node_free_times, ref_time)
        best_cost = float(costs.min())
        if self._tracer is not None:
            self._tracer.emit(
                EvolveStep(
                    t=float(ref_time),
                    resource=self._trace_name,
                    n_tasks=self.n_tasks,
                    generations=self._generations - generations_before,
                    best_cost=best_cost,
                    history=tuple(
                        best for _, best in self._history[history_before:]
                    ),
                    kernel="vectorized",
                )
            )
        return best_cost

    def evolve(
        self,
        generations: int,
        node_free_times: Sequence[float],
        ref_time: float,
    ) -> float:
        """Advance the population *generations* steps; returns the best cost.

        A generation is: cost the population (eq. 8) → scale to fitness
        (eq. 9) → carry elites → stochastic-remainder selection → pairwise
        two-part crossover → two-part mutation.

        Under ``GAConfig(eval_reuse=True)`` (the default) each costing
        deduplicates identical individuals and the elites carried into a
        new generation keep their previous costs (availability is fixed
        within one call), which is byte-identical to evaluating everything
        — populations, RNG stream, and cost history match the
        ``eval_reuse=False`` reference bit for bit.  The final cost vector
        is retained so an immediately following :meth:`best_solution`
        under the same availability pays no extra evaluation.  With
        ``GAConfig(early_stop_after=K)`` (off by default) the loop halts
        after K consecutive generations without best-cost improvement.
        """
        if generations < 0:
            raise ValidationError(f"generations must be >= 0, got {generations}")
        if self._order is None:
            return 0.0
        assert self._masks is not None
        cfg = self._config
        if cfg.effective_kernel == "vectorized":
            return self._evolve_vectorized(generations, node_free_times, ref_time)
        self._invalidate_cost_cache()
        # The evolve-scoped digest→cost memo: availability is fixed for
        # the whole call, so every cost computed in one generation is
        # reusable in every later one — elites carry their costs forward,
        # and on a converged population most children are re-creations of
        # already-costed individuals.
        memo: Optional[Dict[bytes, float]] = {} if cfg.eval_reuse else None
        generations_before = self._generations
        history_before = len(self._history)
        costs = self._population_costs(node_free_times, ref_time, memo=memo)
        if cfg.memetic:
            costs = self._memetic_step(costs, node_free_times, ref_time, memo)
        best_seen = float(costs.min())
        stalled = 0
        for _ in range(generations):
            fitness = scale_fitness(costs)
            elite_idx = np.argsort(costs, kind="stable")[: cfg.elite_count]
            n_children = cfg.population_size - elite_idx.size
            parents = stochastic_remainder_selection(fitness, n_children, self._rng)
            new_order, new_masks = self._make_children(parents, n_children)
            self._mutate_population(new_order, new_masks)
            self._repair_orders(new_order)
            self._order = np.concatenate([self._order[elite_idx], new_order])
            self._masks = np.concatenate([self._masks[elite_idx], new_masks])
            self._generations += 1
            costs = self._population_costs(node_free_times, ref_time, memo=memo)
            if cfg.memetic:
                costs = self._memetic_step(costs, node_free_times, ref_time, memo)
            self._history.append((self._generations, float(costs.min())))
            if cfg.early_stop_after is not None:
                new_best = float(costs.min())
                if new_best < best_seen:
                    best_seen = new_best
                    stalled = 0
                else:
                    stalled += 1
                    if stalled >= cfg.early_stop_after:
                        self._stats.early_stops += 1
                        break
        if cfg.eval_reuse:
            self._store_cost_cache(costs, node_free_times, ref_time)
        best_cost = float(costs.min())
        if self._tracer is not None:
            self._tracer.emit(
                EvolveStep(
                    t=float(ref_time),
                    resource=self._trace_name,
                    n_tasks=self.n_tasks,
                    generations=self._generations - generations_before,
                    best_cost=best_cost,
                    history=tuple(
                        best for _, best in self._history[history_before:]
                    ),
                    kernel=cfg.effective_kernel,
                )
            )
        return best_cost

    def best_solution(
        self, node_free_times: Sequence[float], ref_time: float
    ) -> SolutionString:
        """The lowest-cost individual under the given availability.

        With ``eval_reuse`` on, the cost vector retained by the last
        :meth:`evolve` (or ``best_solution``) call is reused when the
        population and the availability key are unchanged — a scheduling
        event's ``evolve`` → dispatch → ``best_solution`` sequence then
        pays no second full evaluation.  Any ``add_task`` /
        ``remove_task`` / availability change recomputes.
        """
        if self._order is None:
            raise ScheduleError("population is empty (no tasks)")
        assert self._masks is not None
        if self._config.eval_reuse:
            costs = self._cached_costs_for(node_free_times, ref_time)
            if costs is not None:
                self._stats.event_cache_hits += 1
            else:
                self._stats.event_cache_misses += 1
                costs = self._population_costs(node_free_times, ref_time)
                self._store_cost_cache(costs, node_free_times, ref_time)
        else:
            costs = self._evaluate(self._order, self._masks, node_free_times, ref_time)
        return self._solution_at(int(np.argmin(costs)))

    def reference_cost(
        self,
        solution: SolutionString,
        node_free_times: Sequence[float],
        ref_time: float,
    ) -> float:
        """Scalar (non-vectorised) eq.-(8) cost of one solution.

        The reference implementation used by tests to validate the
        vectorised evaluator.
        """
        from repro.scheduling.cost import IDLE_WEIGHTERS, schedule_cost
        from repro.scheduling.schedule import build_schedule

        schedule = build_schedule(
            solution,
            node_free_times,
            lambda tid, k: float(self._dtable[self._require_row(tid)][k - 1]),
            ref_time=ref_time,
        )
        deadlines = {tid: float(self._deadline_arr[r]) for tid, r in self._row_of.items()}
        breakdown = schedule_cost(
            schedule,
            deadlines,
            self._config.weights,
            idle_weighter=IDLE_WEIGHTERS[self._config.idle_weighting],
        )
        return breakdown.combined

    def cost_of(
        self,
        solution: SolutionString,
        node_free_times: Sequence[float],
        ref_time: float,
    ) -> float:
        """Vectorised eq.-(8) cost of one externally supplied solution."""
        order = np.array([[self._require_row(t) for t in solution.ordering]])
        masks = np.zeros((1, self.n_tasks, self._n), dtype=bool)
        for tid in solution.ordering:
            masks[0, self._row_of[tid]] = solution.mask(tid)
        return float(self._evaluate(order, masks, node_free_times, ref_time)[0])

    # ------------------------------------------------------------- checkpoint

    def snapshot_state(self) -> dict:
        """The full kernel state: population arrays, task rows, caches, stats.

        The RNG is *not* included — it belongs to the run's
        :class:`~repro.utils.rng.RngRegistry` and is snapshot there.  The
        event-level cost cache is serialised too (its presence changes
        whether the next ``best_solution`` call recomputes, which shows in
        the reuse counters the experiment result reports).
        """
        from repro.checkpoint.codec import encode_ndarray

        state = {
            "kernel": self._config.effective_kernel,
            "id_order": list(self._id_order),
            "dtable": encode_ndarray(self._dtable),
            "deadlines": [float(d) for d in self._deadline_arr],
            "order": None if self._order is None else encode_ndarray(self._order),
            "masks": None if self._masks is None else encode_ndarray(self._masks),
            "generations": self._generations,
            "history": [[int(g), float(c)] for g, c in self._history],
            "stats": self._stats.snapshot_counters(),
            "cached_costs": (
                None
                if self._cached_costs is None
                else encode_ndarray(self._cached_costs)
            ),
            "cost_cache_key": (
                None
                if self._cost_cache_key is None
                else [self._cost_cache_key[0].hex(), self._cost_cache_key[1]]
            ),
        }
        # Workflow keys appear only when carrying non-default state, so
        # independent-task snapshots stay byte-identical to the seed's.
        if np.any(self._priority_arr != 0.0):
            state["priorities"] = [float(v) for v in self._priority_arr]
        if self._floor:
            state["floors"] = [
                [int(t), float(f)] for t, f in sorted(self._floor.items())
            ]
        if self._preds:
            state["preds"] = [
                [int(t), [int(p) for p in parents]]
                for t, parents in sorted(self._preds.items())
            ]
        return state

    def restore_state(self, state: dict) -> None:
        """Rebuild the population exactly as snapshot (RNG restored elsewhere).

        The batched and reference kernels share one RNG protocol and are
        byte-identical, so snapshots move freely between them (and old
        snapshots without a ``kernel`` key are one of the two).  The
        vectorized kernel consumes a different stream, so crossing the
        vectorized/byte-identical boundary in either direction is refused
        — a resumed run would silently diverge from its uninterrupted
        twin.
        """
        from repro.checkpoint.codec import decode_ndarray

        snap_kernel = state.get("kernel")
        current = self._config.effective_kernel
        if snap_kernel is not None and snap_kernel != current:
            if "vectorized" in (snap_kernel, current):
                raise ScheduleError(
                    f"snapshot was taken under kernel {snap_kernel!r}, "
                    f"scheduler is configured for {current!r}"
                )
        self._id_order = [int(t) for t in state["id_order"]]
        self._row_of = {tid: row for row, tid in enumerate(self._id_order)}
        self._dtable = decode_ndarray(state["dtable"])
        self._deadline_arr = np.asarray(state["deadlines"], dtype=float)
        priorities = state.get("priorities")
        self._priority_arr = (
            np.zeros(len(self._id_order), dtype=float)
            if priorities is None
            else np.asarray(priorities, dtype=float)
        )
        self._floor = {int(t): float(f) for t, f in state.get("floors", [])}
        self._preds = {
            int(t): tuple(int(p) for p in parents)
            for t, parents in state.get("preds", [])
        }
        self._constraint_cache = None
        self._order = (
            None if state["order"] is None else decode_ndarray(state["order"])
        )
        self._masks = (
            None if state["masks"] is None else decode_ndarray(state["masks"])
        )
        self._generations = int(state["generations"])
        self._history = [(int(g), float(c)) for g, c in state["history"]]
        self._stats.restore_counters(state["stats"])
        self._cached_costs = (
            None
            if state["cached_costs"] is None
            else decode_ndarray(state["cached_costs"])
        )
        key = state["cost_cache_key"]
        self._cost_cache_key = (
            None if key is None else (bytes.fromhex(key[0]), float(key[1]))
        )
