"""Additional baseline schedulers: random and round-robin placement.

The paper compares its GA only against FIFO; the surrounding literature it
cites (Abraham et al.'s heuristics survey, batch systems like Condor/LSF)
routinely includes *random* and *round-robin* dispatch as the naive
baselines.  Both are implemented here behind the same fixed-placement
protocol as :class:`~repro.scheduling.fifo.FIFOScheduler` — tasks are
placed in arrival order and the decision never changes — so the policy
comparison bench isolates exactly one variable: how the allocation is
chosen.

* :class:`RandomScheduler` — a uniformly random non-empty node subset.
* :class:`RoundRobinScheduler` — the task's duration-optimal processor
  count ``k* = argmin_k t(k)``, taken as the next k nodes in cyclic order
  (classic striping; ignores current bookings when choosing nodes).
"""

from __future__ import annotations

from typing import Dict, Protocol, Sequence

import numpy as np

from repro.errors import ScheduleError
from repro.scheduling.fifo import Allocation, SizeDurationFn

__all__ = ["StaticPlacement", "RandomScheduler", "RoundRobinScheduler"]


class StaticPlacement(Protocol):
    """The fixed-placement protocol shared by FIFO/random/round-robin."""

    @property
    def makespan(self) -> float:
        """Latest booked completion."""

    @property
    def booked_free_times(self) -> np.ndarray:
        """Per-node booked-until times (copy)."""

    def sync_availability(self, node_free_times: Sequence[float]) -> None:
        """Raise bookings to at least the executor's actual availability."""

    def place(self, task_id: int, duration: SizeDurationFn, now: float) -> Allocation:
        """Book a fixed allocation for an arriving task."""

    def placement(self, task_id: int) -> Allocation:
        """The allocation previously booked for *task_id*."""

    def forget(self, task_id: int) -> None:
        """Drop a cancelled task's placement (bookings stay reserved)."""


class _BookingBase:
    """Shared booking state for the fixed-placement baselines."""

    def __init__(self, n_nodes: int) -> None:
        if n_nodes < 1:
            raise ScheduleError(f"n_nodes must be >= 1, got {n_nodes}")
        self._free = np.zeros(n_nodes, dtype=float)
        self._placements: Dict[int, Allocation] = {}

    @property
    def n_nodes(self) -> int:
        """Number of processing nodes."""
        return self._free.size

    @property
    def makespan(self) -> float:
        """Latest booked completion."""
        return float(self._free.max())

    @property
    def booked_free_times(self) -> np.ndarray:
        """Per-node booked-until times (copy)."""
        return self._free.copy()

    def placement(self, task_id: int) -> Allocation:
        """The fixed allocation previously booked for *task_id*."""
        try:
            return self._placements[task_id]
        except KeyError:
            raise ScheduleError(f"no placement booked for task {task_id}") from None

    def sync_availability(self, node_free_times: Sequence[float]) -> None:
        """Raise bookings to at least actual availability (never earlier)."""
        actual = np.asarray(node_free_times, dtype=float)
        if actual.size != self._free.size:
            raise ScheduleError(
                f"expected {self._free.size} node times, got {actual.size}"
            )
        self._free = np.maximum(self._free, actual)

    def forget(self, task_id: int) -> None:
        """Drop a cancelled task's placement.

        The node bookings it made are left in place — later placements
        may already have been stacked on top of them, so releasing the
        window would double-book.  The hole is the price of cancelling
        under a fixed-placement policy.
        """
        self._placements.pop(task_id, None)

    def snapshot_state(self) -> dict:
        """Booked free times and fixed placements (checkpoint support)."""
        return {
            "free": [float(x) for x in self._free],
            "placements": {
                str(tid): [list(a.node_ids), a.start, a.completion]
                for tid, a in sorted(self._placements.items())
            },
        }

    def restore_state(self, state: dict) -> None:
        """Rebuild bookings from a :meth:`snapshot_state` dict."""
        self._free = np.asarray(state["free"], dtype=float)
        self._placements = {
            int(tid): Allocation(tuple(int(n) for n in nodes), float(s), float(c))
            for tid, (nodes, s, c) in state["placements"].items()
        }

    def _book(self, task_id: int, node_ids: tuple, duration: float, now: float) -> Allocation:
        if task_id in self._placements:
            raise ScheduleError(f"task {task_id} already placed")
        if not (duration > 0 and np.isfinite(duration)):
            raise ScheduleError(f"duration must be finite and > 0, got {duration}")
        free = np.maximum(self._free, now)
        start = float(max(free[list(node_ids)]))
        allocation = Allocation(tuple(sorted(node_ids)), start, start + duration)
        for nid in allocation.node_ids:
            self._free[nid] = allocation.completion
        self._placements[task_id] = allocation
        return allocation


class RandomScheduler(_BookingBase):
    """Place each task on a uniformly random non-empty node subset.

    The weakest sensible baseline: no performance prediction, no load
    awareness — the allocation size and members are both random.
    """

    def __init__(self, n_nodes: int, rng: np.random.Generator) -> None:
        super().__init__(n_nodes)
        self._rng = rng

    def place(self, task_id: int, duration: SizeDurationFn, now: float) -> Allocation:
        """Book a random allocation for an arriving task."""
        k = int(self._rng.integers(1, self.n_nodes + 1))
        node_ids = tuple(
            int(i) for i in self._rng.choice(self.n_nodes, size=k, replace=False)
        )
        return self._book(task_id, node_ids, float(duration(k)), now)


class RoundRobinScheduler(_BookingBase):
    """Stripe tasks across the nodes in cyclic order.

    Each task gets its duration-optimal processor count (so the baseline
    is performance-*aware* but not load-aware), starting at a cursor that
    advances by k per placement.
    """

    def __init__(self, n_nodes: int) -> None:
        super().__init__(n_nodes)
        self._cursor = 0

    def place(self, task_id: int, duration: SizeDurationFn, now: float) -> Allocation:
        """Book the next k nodes in cyclic order, k = argmin duration."""
        durations = [float(duration(k)) for k in range(1, self.n_nodes + 1)]
        k = int(np.argmin(durations)) + 1
        node_ids = tuple(
            (self._cursor + offset) % self.n_nodes for offset in range(k)
        )
        self._cursor = (self._cursor + k) % self.n_nodes
        return self._book(task_id, node_ids, durations[k - 1], now)

    def snapshot_state(self) -> dict:
        state = super().snapshot_state()
        state["cursor"] = self._cursor
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        self._cursor = int(state["cursor"])
