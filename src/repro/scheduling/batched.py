"""Whole-population batched forms of the two-part genetic operators.

The object-level operators in :mod:`repro.scheduling.operators` and the
per-pair packed operators in :class:`~repro.scheduling.ga.GAScheduler` are
the *reference* implementations — clear, validated, and kept for the
property tests and the perf-regression baseline.  Profiling the case study
showed the per-pair crossover loop dominated ``evolve`` (≈60 % of an
experiment-2 run), so these functions re-express the same operators as
single array programs over a whole batch of parent pairs.

All functions are pure: the random choices (cut locations, crossover
points, insert positions) are *arguments*, drawn by the caller, which is
what lets the property tests assert exact agreement with the reference
operators and lets :meth:`GAScheduler.evolve` keep a byte-identical RNG
stream whichever kernel is active.

Shape conventions (B = batch, m = tasks, n = nodes):

* orderings are ``(B, m)`` int arrays of task *rows* — each row of the
  batch is a permutation of ``0..m-1``;
* masks are ``(B, m, n)`` bool arrays keyed by task row (not by position),
  preserving "the node mapping associated with a particular task from one
  generation to the next".
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "batched_order_splice",
    "batched_mask_crossover",
    "batched_insert",
]


def batched_order_splice(
    orders_a: np.ndarray, orders_b: np.ndarray, cuts: np.ndarray
) -> np.ndarray:
    """Splice each pair of orderings at its cut — the batched order splice.

    For every batch row ``b`` the child is ``orders_a[b, :cuts[b]]``
    followed by the remaining rows in ``orders_b[b]``'s order, exactly as
    :func:`repro.scheduling.operators.order_splice` builds it.  Membership
    of the head is resolved through a scattered lookup table rather than a
    per-pair ``np.isin``, so the whole batch is O(B·m).

    Parameters
    ----------
    orders_a, orders_b:
        ``(B, m)`` row permutations (head source / tail source).
    cuts:
        ``(B,)`` splice locations in ``0..m``.
    """
    orders_a = np.asarray(orders_a)
    orders_b = np.asarray(orders_b)
    cuts = np.asarray(cuts)
    if orders_a.shape != orders_b.shape:
        raise ValidationError(
            f"order batches disagree: {orders_a.shape} vs {orders_b.shape}"
        )
    batch, m = orders_a.shape
    if cuts.shape != (batch,):
        raise ValidationError(f"cuts must have shape ({batch},), got {cuts.shape}")
    return _order_splice_core(orders_a, orders_b, cuts)


def _order_splice_core(
    orders_a: np.ndarray, orders_b: np.ndarray, cuts: np.ndarray
) -> np.ndarray:
    """:func:`batched_order_splice` without input validation (hot loop)."""
    batch, m = orders_a.shape
    positions = np.arange(m)
    rows = np.arange(batch)[:, None]
    head_mask = positions[None, :] < cuts[:, None]  # (B, m)
    # Row-indexed lookup table: in_head[b, r] == r appears in a's head.
    in_head = np.zeros((batch, m), dtype=bool)
    in_head[rows, orders_a] = head_mask
    keep = ~in_head[rows, orders_b]  # b's rows to keep
    # Kept elements of b land after the head, preserving b's order; they
    # fill every tail slot exactly (m − cut kept rows per pair), so the
    # scatter below covers everything the head copy leaves unset.
    dest = cuts[:, None] + np.cumsum(keep, axis=1) - 1
    children = np.empty_like(orders_a)
    np.copyto(children, orders_a, where=head_mask)
    b_idx, j_idx = np.nonzero(keep)
    children[b_idx, dest[b_idx, j_idx]] = orders_b[b_idx, j_idx]
    return children


def batched_mask_crossover(
    child_orders: np.ndarray,
    masks_first: np.ndarray,
    masks_second: np.ndarray,
    points: np.ndarray,
) -> np.ndarray:
    """Single-point mask crossover for a batch of children, keyed by row.

    The reference ``cross_maps`` gathers each parent's row-keyed masks *in
    the child's task order* (the paper's "reordering ... necessary to
    preserve the node mapping associated with a particular task"), crosses
    the flattened strings at the shared point, and scatters back under row
    keys.  Row ``r``'s bit for node ``j`` therefore comes from the first
    parent exactly when ``pos(r) * n + j < point``, where ``pos(r)`` is
    ``r``'s position in the child ordering — so the whole gather/cross/
    scatter collapses to one inverse permutation and an ``np.where`` over
    the row-keyed masks, never materialising the position-ordered view.

    Parameters
    ----------
    child_orders:
        ``(B, m)`` child orderings (from :func:`batched_order_splice`).
    masks_first, masks_second:
        ``(B, m, n)`` row-keyed parent masks; ``masks_first`` supplies the
        flat prefix up to each point, ``masks_second`` the suffix.
    points:
        ``(B,)`` crossover points in ``0..m*n``.

    Note: empty-mask repair is *not* applied here; the mutation step owns
    the legitimacy repair (exactly as the packed reference kernel does).
    """
    masks_first = np.asarray(masks_first)
    masks_second = np.asarray(masks_second)
    child_orders = np.asarray(child_orders)
    points = np.asarray(points)
    if masks_first.shape != masks_second.shape:
        raise ValidationError(
            f"mask batches disagree: {masks_first.shape} vs {masks_second.shape}"
        )
    batch, m, n = masks_first.shape
    if child_orders.shape != (batch, m):
        raise ValidationError(
            f"child_orders must have shape ({batch}, {m}), got {child_orders.shape}"
        )
    if points.shape != (batch,):
        raise ValidationError(f"points must have shape ({batch},), got {points.shape}")
    return _mask_crossover_core(child_orders, masks_first, masks_second, points)


def _mask_crossover_core(
    child_orders: np.ndarray,
    masks_first: np.ndarray,
    masks_second: np.ndarray,
    points: np.ndarray,
) -> np.ndarray:
    """:func:`batched_mask_crossover` without input validation (hot loop)."""
    batch, m, n = masks_first.shape
    rows = np.arange(batch)[:, None]
    inverse = np.empty((batch, m), dtype=np.int32)
    inverse[rows, child_orders] = np.arange(m, dtype=np.int32)[None, :]
    # Flat crossover-string index of (task row r, node j): pos(r)*n + j.
    # ``pos*n + j < point`` ⟺ ``pos < ceil((point − j) / n)``, so the cut
    # collapses to a per-(pair, node) position threshold — two small
    # ``(B, n)`` integer ops instead of materialising the flat index as an
    # ``(B, m, n)`` cube.  Integer math is exact, so the result is
    # byte-identical to the flat-index comparison; the suffix copy +
    # masked prefix overwrite replaces ``np.where``, which benchmarks ~4×
    # slower on broadcast operands at these sizes.
    thresholds = (points[:, None] - np.arange(n, dtype=np.int32) + n - 1) // n
    children = masks_second.copy()
    np.copyto(
        children,
        masks_first,
        where=inverse[:, :, None] < thresholds.astype(np.int32)[:, None, :],
    )
    return children


def batched_insert(
    orders: np.ndarray, positions: np.ndarray, value: int
) -> np.ndarray:
    """Insert *value* into every ordering at its per-row position.

    The batched form of the per-individual ``np.insert`` loop in
    :meth:`GAScheduler.add_task`: row ``i`` of the result equals
    ``np.insert(orders[i], positions[i], value)``.

    Parameters
    ----------
    orders:
        ``(B, m)`` orderings.
    positions:
        ``(B,)`` insert positions in ``0..m``.
    value:
        The row index to splice in (the new task's row).
    """
    orders = np.asarray(orders)
    positions = np.asarray(positions)
    batch, m = orders.shape
    if positions.shape != (batch,):
        raise ValidationError(
            f"positions must have shape ({batch},), got {positions.shape}"
        )
    if m == 0:
        return np.full((batch, 1), value, dtype=orders.dtype)
    out_pos = np.arange(m + 1)
    before = out_pos[None, :] < positions[:, None]
    # Source column: k for the prefix, k-1 for the suffix; the insert slot
    # itself is overwritten below, so its clipped gather value is irrelevant.
    src = np.where(before, out_pos[None, :], out_pos[None, :] - 1)
    src = np.clip(src, 0, m - 1)
    children = orders[np.arange(batch)[:, None], src]
    children[out_pos[None, :] == positions[:, None]] = value
    return children
