"""The resource-monitoring module (§2.2).

"The resource monitoring is responsible for gathering statistics concerning
the process nodes on which tasks may execute. ... Currently, only host
availability is supported, where the resource monitor queries each known
node every five minutes. ... Resource monitoring is also responsible for
organising the GA scheduling results and resource availabilities into
service information that can be advertised."

The monitor keeps an availability flag per node, polls on a periodic timer
(default 300 s, as in the paper), and exposes the poll as an observable so
the scheduler refreshes advertised service information.  Failure injection
(``mark_down`` / ``mark_up``) feeds the robustness tests: the paper's real
monitor would discover a crashed host at the next poll, so availability
changes only become *visible* to consumers at poll time unless an
immediate refresh is forced.

The load statistics the paper lists as pending ("availability, load
average and idle time.  Currently, only host availability is supported")
are provided through the NWS-substitute extension: with ``track_load``
enabled the monitor keeps one adaptive
:class:`~repro.pace.forecast.LoadTracker` per node; polls sample a
caller-provided load source, and consumers read per-node slowdown
forecasts.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from repro.errors import ValidationError
from repro.pace.forecast import LoadTracker
from repro.sim.engine import Engine
from repro.sim.events import Priority
from repro.sim.process import PeriodicProcess

__all__ = ["ResourceMonitor", "DEFAULT_POLL_INTERVAL"]

#: A load source maps a node id to its current load average.
LoadSource = Callable[[int], float]

#: The paper's polling cadence: "every five minutes".
DEFAULT_POLL_INTERVAL = 300.0


class ResourceMonitor:
    """Polls node availability and notifies observers (§2.2).

    Parameters
    ----------
    sim:
        The discrete-event engine supplying the timer.
    n_nodes:
        Number of nodes monitored.
    poll_interval:
        Seconds between polls (paper default: 300).
    """

    def __init__(
        self,
        sim: Engine,
        n_nodes: int,
        *,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
        load_source: Optional[LoadSource] = None,
    ) -> None:
        if n_nodes < 1:
            raise ValidationError(f"n_nodes must be >= 1, got {n_nodes}")
        self._sim = sim
        self._actual_up: List[bool] = [True] * n_nodes  # ground truth
        self._observed_up: List[bool] = [True] * n_nodes  # as of last poll
        self._observers: List[Callable[[], None]] = []
        self._polls = 0
        self._load_source = load_source
        self._trackers: Optional[List[LoadTracker]] = (
            [LoadTracker() for _ in range(n_nodes)]
            if load_source is not None
            else None
        )
        self._process = PeriodicProcess(
            sim,
            poll_interval,
            self.poll,
            priority=Priority.MONITORING,
            label="resource-monitor-poll",
        )

    # ------------------------------------------------------------------ state

    @property
    def n_nodes(self) -> int:
        """Number of monitored nodes."""
        return len(self._actual_up)

    @property
    def polls(self) -> int:
        """Number of polls performed."""
        return self._polls

    @property
    def poll_interval(self) -> float:
        """The polling cadence in seconds."""
        return self._process.interval

    def is_available(self, node_id: int) -> bool:
        """Availability of *node_id* as of the last poll."""
        self._check_node(node_id)
        return self._observed_up[node_id]

    def available_ids(self) -> List[int]:
        """Node ids observed available at the last poll."""
        return [i for i, up in enumerate(self._observed_up) if up]

    def unavailable_ids(self) -> List[int]:
        """Node ids observed down at the last poll."""
        return [i for i, up in enumerate(self._observed_up) if not up]

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Begin periodic polling."""
        self._process.start()

    def stop(self) -> None:
        """Stop periodic polling."""
        self._process.stop()

    def subscribe(self, observer: Callable[[], None]) -> None:
        """Register a callback fired after every poll (service-info refresh)."""
        self._observers.append(observer)

    def poll(self) -> None:
        """Query every node now, updating availability (and load samples)."""
        self._polls += 1
        self._observed_up = list(self._actual_up)
        if self._trackers is not None:
            assert self._load_source is not None
            for nid, tracker in enumerate(self._trackers):
                if self._actual_up[nid]:
                    tracker.observe(float(self._load_source(nid)))
        for observer in self._observers:
            observer()

    # ------------------------------------------------------------- checkpoint

    def snapshot_state(self) -> dict:
        """Availability flags, poll count, and the polling process.

        Load tracking (the NWS extension) is not checkpointable yet — no
        experiment path enables it, and silently dropping tracker state
        would corrupt forecasts on resume.
        """
        if self._trackers is not None:
            from repro.errors import CheckpointError

            raise CheckpointError(
                "cannot checkpoint a monitor with load tracking enabled"
            )
        return {
            "actual_up": list(self._actual_up),
            "observed_up": list(self._observed_up),
            "polls": self._polls,
            "process": self._process.snapshot_state(),
        }

    def restore_state(self, state: dict) -> None:
        """Rewind availability and re-arm the polling process."""
        self._actual_up = [bool(x) for x in state["actual_up"]]
        self._observed_up = [bool(x) for x in state["observed_up"]]
        self._polls = int(state["polls"])
        self._process.restore_state(state["process"])

    # -------------------------------------------------------- load forecasts

    @property
    def tracks_load(self) -> bool:
        """Whether load sampling (the NWS extension) is enabled."""
        return self._trackers is not None

    def slowdown(self, node_id: int) -> float:
        """Forecast execution-time multiplier for *node_id* (>= 1).

        1.0 when load tracking is disabled or no samples exist yet.
        """
        self._check_node(node_id)
        if self._trackers is None:
            return 1.0
        return self._trackers[node_id].slowdown()

    def load_tracker(self, node_id: int) -> LoadTracker:
        """The adaptive tracker behind *node_id*'s forecasts.

        Raises
        ------
        ValidationError
            If load tracking is disabled.
        """
        self._check_node(node_id)
        if self._trackers is None:
            raise ValidationError("load tracking is not enabled on this monitor")
        return self._trackers[node_id]

    # ----------------------------------------------------- failure injection

    def mark_down(self, node_id: int, *, immediate: bool = False) -> None:
        """Simulate a node crash; discovered at the next poll unless *immediate*."""
        self._check_node(node_id)
        self._actual_up[node_id] = False
        if immediate:
            self.poll()

    def mark_up(self, node_id: int, *, immediate: bool = False) -> None:
        """Simulate a node recovery; discovered at the next poll unless *immediate*."""
        self._check_node(node_id)
        self._actual_up[node_id] = True
        if immediate:
            self.poll()

    def _check_node(self, node_id: int) -> None:
        if not (0 <= node_id < len(self._actual_up)):
            raise ValidationError(
                f"node_id {node_id} out of range 0..{len(self._actual_up) - 1}"
            )
