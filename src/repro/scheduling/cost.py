"""The combined cost function of eq. (8).

"A combined cost function is used which considers makespan, idle time and
deadline. ... Solutions that have large idle times are penalised by
weighting pockets of idle time ... which penalises early idle time more
than later idle time.  The contract penalty θ_k is derived from the
expected deadline times δ and task completion time η."

The combined value is::

    f_c = (W_m·ω_k + W_i·φ_k + W_c·θ_k) / (W_m + W_i + W_c)

with ω_k the (relative) makespan, φ_k the weighted idle time and θ_k the
total deadline overrun.  The idle-weighting function is pluggable; the
default linear decay gives a pocket ``[a, b)`` weight ``∫_a^b (1 − t/ω) dt``
measured from the schedule's reference time, so idle time at the very front
of the schedule counts fully and idle time near the makespan counts ~0 —
exactly the paper's rationale ("idle time at the front of the schedule ...
is the processing time which will be wasted first").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.errors import ValidationError
from repro.scheduling.schedule import Schedule
from repro.utils.validation import check_non_negative

__all__ = [
    "CostWeights",
    "CostBreakdown",
    "linear_idle_weight",
    "exponential_idle_weight",
    "uniform_idle_weight",
    "IDLE_WEIGHTERS",
    "weighted_idle_time",
    "deadline_penalty",
    "schedule_cost",
]

#: An idle weighter maps ``(pocket_start, pocket_end, horizon)`` — all
#: measured relative to the schedule's reference time — to weighted seconds.
IdleWeighter = Callable[[float, float, float], float]


@dataclass(frozen=True)
class CostWeights:
    """The three weights of eq. (8); all non-negative, not all zero."""

    makespan: float = 1.0
    idle: float = 1.0
    deadline: float = 1.0

    def __post_init__(self) -> None:
        check_non_negative(self.makespan, "makespan weight")
        check_non_negative(self.idle, "idle weight")
        check_non_negative(self.deadline, "deadline weight")
        if self.makespan + self.idle + self.deadline == 0:
            raise ValidationError("at least one cost weight must be positive")

    @property
    def total(self) -> float:
        """Normalising denominator ``W_m + W_i + W_c``."""
        return self.makespan + self.idle + self.deadline


@dataclass(frozen=True)
class CostBreakdown:
    """The cost components of one schedule: ω, φ, θ, and the combined f_c."""

    makespan: float
    weighted_idle: float
    deadline_penalty: float
    combined: float


def linear_idle_weight(start: float, end: float, horizon: float) -> float:
    """``∫_start^end max(0, 1 − t/horizon) dt`` — the default front-loading.

    A pocket at the very front weighs its full duration; one ending at the
    horizon weighs about half its duration near the front and 0 at the end.
    """
    if horizon <= 0:
        return 0.0
    a = min(max(start, 0.0), horizon)
    b = min(max(end, 0.0), horizon)
    if b <= a:
        return 0.0
    return (b - a) - (b * b - a * a) / (2.0 * horizon)


def exponential_idle_weight(start: float, end: float, horizon: float) -> float:
    """``∫ exp(−3t/horizon) dt`` — sharper front-loading (ablation variant)."""
    import math

    if horizon <= 0:
        return 0.0
    rate = 3.0 / horizon
    a = min(max(start, 0.0), horizon)
    b = min(max(end, 0.0), horizon)
    if b <= a:
        return 0.0
    return (math.exp(-rate * a) - math.exp(-rate * b)) / rate


def uniform_idle_weight(start: float, end: float, horizon: float) -> float:
    """Unweighted idle seconds within ``[0, horizon]`` (no front-loading)."""
    if horizon <= 0:
        return 0.0
    a = min(max(start, 0.0), horizon)
    b = min(max(end, 0.0), horizon)
    return max(b - a, 0.0)


#: Named idle weighters for configuration and the idle-weighting ablation.
IDLE_WEIGHTERS: Mapping[str, IdleWeighter] = {
    "linear": linear_idle_weight,
    "exponential": exponential_idle_weight,
    "uniform": uniform_idle_weight,
}


def weighted_idle_time(
    schedule: Schedule, weighter: IdleWeighter = linear_idle_weight
) -> float:
    """φ_k: total idle time weighted by front-of-schedule position."""
    horizon = schedule.relative_makespan
    ref = schedule.ref_time
    return sum(
        weighter(p.start - ref, p.end - ref, horizon) for p in schedule.idle_pockets
    )


def deadline_penalty(schedule: Schedule, deadlines: Mapping[int, float]) -> float:
    """θ_k: total overrun ``Σ max(0, η_j − δ_j)`` over scheduled tasks.

    Raises
    ------
    ValidationError
        If a scheduled task has no deadline entry.
    """
    total = 0.0
    for e in schedule.entries:
        try:
            deadline = deadlines[e.task_id]
        except KeyError:
            raise ValidationError(f"no deadline for task {e.task_id}") from None
        total += max(0.0, e.completion - deadline)
    return total


def schedule_cost(
    schedule: Schedule,
    deadlines: Mapping[int, float],
    weights: CostWeights = CostWeights(),
    *,
    idle_weighter: IdleWeighter = linear_idle_weight,
) -> CostBreakdown:
    """Evaluate eq. (8) for one built schedule."""
    omega = schedule.relative_makespan
    phi = weighted_idle_time(schedule, idle_weighter)
    theta = deadline_penalty(schedule, deadlines)
    combined = (
        weights.makespan * omega + weights.idle * phi + weights.deadline * theta
    ) / weights.total
    return CostBreakdown(omega, phi, theta, combined)
