"""Evaluation reuse for the GA hot loop: dedup costing and cost caching.

The GA re-costs its whole population with eq. (8) every generation and the
grid triggers ``evolve`` on *every* task arrival and completion, so the
vectorised evaluator dominates end-to-end wall time once crossover is
batched.  Savvas & Kechadi (*Dynamic Task Scheduling in Computing Cluster
Environments*) make the matching observation for iterative cluster
schedulers: redundant re-evaluation of unchanged candidates is the first
redundancy to eliminate.  Three facts make reuse safe here:

* eq. (8) is a **pure function** of ``(order row, mask row,
  node_free_times, ref_time)`` — no RNG, no hidden state;
* the vectorised evaluator in :meth:`~repro.scheduling.ga.GAScheduler._evaluate`
  only ever reduces *within* an individual (``axis=1``), never across the
  population axis, so evaluating any subset of rows produces bit-identical
  per-row costs to evaluating the full population;
* within one ``evolve`` call ``node_free_times``/``ref_time`` are fixed.

So duplicate individuals (a converged population is mostly duplicates),
elites carried between generations, and repeat costings of an unchanged
population under unchanged availability can all reuse previously computed
cost floats **byte-identically** — asserted by the property tests in
``tests/properties/test_evalreuse_properties.py``.

This module holds the policy-free plumbing: individual digests, the
dedup index, an availability key, and the observability counters exposed
as :attr:`GAScheduler.stats <repro.scheduling.ga.GAScheduler.stats>`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = [
    "EvalReuseStats",
    "availability_key",
    "population_digests",
    "packed_digest_buffer",
    "dedup_index",
]


@dataclass
class EvalReuseStats:
    """Counters that make the reuse layer's effect observable, not asserted.

    ``rows_costed`` splits exactly into ``rows_evaluated`` (ran through the
    vectorised evaluator), ``dedup_hits`` (matched an earlier individual's
    digest in the same costing), and ``carry_hits`` (cost carried from an
    earlier generation's evaluation of the identical individual within
    one ``evolve`` call — the elite carry-forward, which the memo extends
    to every previously seen individual).
    """

    #: Invocations of the vectorised eq.-(8) evaluator (any row count).
    evaluate_calls: int = 0
    #: Individuals whose cost was requested through the reuse layer.
    rows_costed: int = 0
    #: Individuals actually (re-)evaluated.
    rows_evaluated: int = 0
    #: Individuals whose cost was copied from a duplicate in the same batch.
    dedup_hits: int = 0
    #: Individuals whose cost was carried forward from an earlier
    #: generation of the same ``evolve`` call (elite carry-forward,
    #: generalised to every previously costed individual via the
    #: evolve-scoped digest→cost memo).
    carry_hits: int = 0
    #: ``best_solution`` calls answered from the event-level cost cache.
    event_cache_hits: int = 0
    #: ``best_solution`` / ``evolve`` costings that had to recompute.
    event_cache_misses: int = 0
    #: Generation loops halted early by ``GAConfig(early_stop_after=K)``.
    early_stops: int = 0
    #: Individuals replaced by a winning warm-start list-scheduling seed
    #: (vectorized kernel's once-per-``evolve`` injection; see
    #: :mod:`repro.scheduling.warmstart`).
    warmstart_seeds: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of requested costs served without re-evaluation."""
        if self.rows_costed == 0:
            return 0.0
        return 1.0 - self.rows_evaluated / self.rows_costed

    def reset(self) -> None:
        """Zero every counter (reset symmetry with the other stats objects)."""
        for f in fields(self):
            setattr(self, f.name, f.default)

    def snapshot_counters(self) -> Dict[str, int]:
        """The raw counter fields alone (checkpoint support; no hit_rate)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def restore_counters(self, counters: Dict[str, int]) -> None:
        """Set every counter field from a :meth:`snapshot_counters` dict.

        Counters absent from *counters* reset to their defaults, so
        checkpoints written before a counter existed stay restorable.
        """
        for f in fields(self):
            setattr(self, f.name, int(counters.get(f.name, f.default)))

    def snapshot(self) -> Dict[str, float]:
        """A plain-dict copy (for benchmarks and reports)."""
        return {
            "evaluate_calls": self.evaluate_calls,
            "rows_costed": self.rows_costed,
            "rows_evaluated": self.rows_evaluated,
            "dedup_hits": self.dedup_hits,
            "carry_hits": self.carry_hits,
            "event_cache_hits": self.event_cache_hits,
            "event_cache_misses": self.event_cache_misses,
            "early_stops": self.early_stops,
            "warmstart_seeds": self.warmstart_seeds,
            "hit_rate": self.hit_rate,
        }


def availability_key(
    node_free_times: Sequence[float], ref_time: float
) -> Tuple[bytes, float]:
    """Hashable identity of an eq.-(8) availability context.

    eq. (8) only ever sees ``max(node_free_times, ref_time)`` (nothing can
    start in the past), so the key is the *clamped* free-time vector plus
    ``ref_time`` (which additionally shifts ω and the idle weighting).
    Two calls with equal keys are guaranteed bit-identical cost vectors
    for an unchanged population.
    """
    free0 = np.maximum(np.asarray(node_free_times, dtype=float), ref_time)
    return free0.tobytes(), float(ref_time)


def packed_digest_buffer(order: np.ndarray, masks: np.ndarray) -> Tuple[bytes, int]:
    """All individuals' digest bytes in one buffer — ``(buffer, stride)``.

    Individual ``p``'s digest is ``buffer[p*stride:(p+1)*stride]``: its
    order row's raw int64 bytes followed by its bit-packed mask row.  The
    mask cube is packed population-wide in a single :func:`numpy.packbits`
    call and the whole key matrix serialised with one ``tobytes`` — the
    per-individual work is a constant-time bytes slice, which keeps exact
    digests (no lossy hashing, hence no collisions) cheap relative to one
    eq.-(8) evaluation.
    """
    pop = order.shape[0]
    packed = np.packbits(masks.reshape(pop, -1), axis=1)
    order_bytes = np.ascontiguousarray(order, dtype=np.int64).view(np.uint8)
    key = np.concatenate([order_bytes.reshape(pop, -1), packed], axis=1)
    return key.tobytes(), key.shape[1]


def population_digests(order: np.ndarray, masks: np.ndarray) -> List[bytes]:
    """One digest per individual over its ``(order row, mask row)`` bytes."""
    buffer, stride = packed_digest_buffer(order, masks)
    return [
        buffer[p * stride:(p + 1) * stride] for p in range(order.shape[0])
    ]


def dedup_index(digests: Sequence[bytes]) -> Tuple[np.ndarray, np.ndarray]:
    """First-occurrence rows and the inverse map, à la :func:`numpy.unique`.

    Returns ``(unique_rows, inverse)`` with ``unique_rows`` the indices of
    the first occurrence of each distinct digest *in population order* and
    ``inverse[p]`` the position of individual ``p``'s digest within
    ``unique_rows`` — so ``costs = unique_costs[inverse]`` scatters a
    subset evaluation back over the full population.
    """
    first: Dict[bytes, int] = {}
    unique_rows: List[int] = []
    inverse = np.empty(len(digests), dtype=np.int64)
    for p, digest in enumerate(digests):
        slot = first.get(digest)
        if slot is None:
            slot = len(unique_rows)
            first[digest] = slot
            unique_rows.append(p)
        inverse[p] = slot
    return np.asarray(unique_rows, dtype=np.int64), inverse
