"""The two-part solution-string coding scheme (§2.1, Fig. 2).

"The coding scheme we have developed for this problem consists of two parts:
an ordering part, which specifies the order in which the tasks are to be
executed and a mapping part, which specifies the allocation of processing
nodes to each task.  The ordering of the task-allocation sections in the
mapping part of the string is commensurate with the task order."

A :class:`SolutionString` is immutable; operators produce new instances.
The ordering is a tuple of task ids; the mapping stores, per task id, a
boolean node mask of length ``n`` with at least one bit set.  Keeping the
mapping keyed by task id (rather than by position) is what lets crossover
"preserve the node mapping associated with a particular task from one
generation to the next" and lets the GA absorb task additions/removals.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence, Tuple

import numpy as np

from repro.errors import CodingError

__all__ = ["SolutionString", "random_solution"]


class SolutionString:
    """One legitimate schedule encoding: task order + per-task node masks.

    Parameters
    ----------
    ordering:
        Task ids in execution order.
    mapping:
        Per-task boolean node masks, all of one common length ``n``; every
        mask must select at least one node.  Keys must be exactly the ids
        in *ordering*.
    """

    __slots__ = ("_ordering", "_mapping", "_n_nodes")

    def __init__(
        self, ordering: Sequence[int], mapping: Mapping[int, np.ndarray]
    ) -> None:
        ordering_t = tuple(int(t) for t in ordering)
        if len(set(ordering_t)) != len(ordering_t):
            raise CodingError(f"ordering contains duplicates: {ordering_t}")
        if set(ordering_t) != set(mapping.keys()):
            raise CodingError(
                "ordering and mapping must cover the same task ids: "
                f"{sorted(ordering_t)} vs {sorted(mapping.keys())}"
            )
        fixed: Dict[int, np.ndarray] = {}
        n_nodes = None
        for tid, mask in mapping.items():
            arr = np.asarray(mask, dtype=bool)
            if arr.ndim != 1:
                raise CodingError(f"mask for task {tid} must be 1-D")
            if n_nodes is None:
                n_nodes = arr.size
            elif arr.size != n_nodes:
                raise CodingError(
                    f"mask for task {tid} has length {arr.size}, expected {n_nodes}"
                )
            if not arr.any():
                raise CodingError(f"mask for task {tid} selects no nodes")
            arr.setflags(write=False)
            fixed[tid] = arr
        if ordering_t and n_nodes == 0:
            raise CodingError("node masks must have at least one position")
        self._ordering = ordering_t
        self._mapping = fixed
        self._n_nodes = int(n_nodes) if n_nodes is not None else 0

    # ------------------------------------------------------------------ access

    @property
    def ordering(self) -> Tuple[int, ...]:
        """Task ids in execution order."""
        return self._ordering

    @property
    def n_tasks(self) -> int:
        """Number of tasks encoded."""
        return len(self._ordering)

    @property
    def n_nodes(self) -> int:
        """Node-mask length ``n``."""
        return self._n_nodes

    def mask(self, task_id: int) -> np.ndarray:
        """The (read-only) node mask for *task_id*."""
        try:
            return self._mapping[task_id]
        except KeyError:
            raise CodingError(f"solution does not encode task {task_id}") from None

    def node_ids(self, task_id: int) -> Tuple[int, ...]:
        """Selected node ids for *task_id*, ascending."""
        return tuple(int(i) for i in np.flatnonzero(self.mask(task_id)))

    def count(self, task_id: int) -> int:
        """Number of nodes allocated to *task_id*."""
        return int(self.mask(task_id).sum())

    def items(self) -> Iterable[Tuple[int, np.ndarray]]:
        """``(task_id, mask)`` pairs in execution order."""
        return ((tid, self._mapping[tid]) for tid in self._ordering)

    # -------------------------------------------------------------- rebuilding

    def with_ordering(self, ordering: Sequence[int]) -> "SolutionString":
        """A copy with a new task order over the same mapping."""
        return SolutionString(ordering, self._mapping)

    def with_mask(self, task_id: int, mask: np.ndarray) -> "SolutionString":
        """A copy with *task_id*'s mask replaced."""
        if task_id not in self._mapping:
            raise CodingError(f"solution does not encode task {task_id}")
        new_mapping = dict(self._mapping)
        new_mapping[task_id] = np.asarray(mask, dtype=bool)
        return SolutionString(self._ordering, new_mapping)

    def with_task(
        self, task_id: int, mask: np.ndarray, position: int | None = None
    ) -> "SolutionString":
        """A copy with a new task spliced in at *position* (default: end)."""
        if task_id in self._mapping:
            raise CodingError(f"task {task_id} already encoded")
        ordering = list(self._ordering)
        pos = len(ordering) if position is None else position
        if not (0 <= pos <= len(ordering)):
            raise CodingError(f"position {pos} out of range 0..{len(ordering)}")
        ordering.insert(pos, task_id)
        new_mapping = dict(self._mapping)
        new_mapping[task_id] = np.asarray(mask, dtype=bool)
        return SolutionString(ordering, new_mapping)

    def without_task(self, task_id: int) -> "SolutionString":
        """A copy with *task_id* excised (e.g. after it starts executing)."""
        if task_id not in self._mapping:
            raise CodingError(f"solution does not encode task {task_id}")
        ordering = [t for t in self._ordering if t != task_id]
        new_mapping = {t: m for t, m in self._mapping.items() if t != task_id}
        return SolutionString(ordering, new_mapping)

    # ------------------------------------------------------------ presentation

    def to_figure2_string(self) -> str:
        """Render in the flat format of Fig. 2: order row + bitstring row.

        >>> import numpy as np
        >>> s = SolutionString([2, 0], {0: np.array([1, 0, 1], bool),
        ...                              2: np.array([0, 1, 0], bool)})
        >>> s.to_figure2_string()
        '2 0 | 010 101'
        """
        order = " ".join(str(t) for t in self._ordering)
        maps = " ".join(
            "".join("1" if b else "0" for b in self._mapping[tid])
            for tid in self._ordering
        )
        return f"{order} | {maps}"

    # ---------------------------------------------------------------- equality

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SolutionString):
            return NotImplemented
        return self._ordering == other._ordering and all(
            np.array_equal(self._mapping[t], other._mapping[t])
            for t in self._ordering
        )

    def __hash__(self) -> int:
        return hash(
            (
                self._ordering,
                tuple(self._mapping[t].tobytes() for t in self._ordering),
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SolutionString({self.to_figure2_string()!r})"


def random_solution(
    task_ids: Sequence[int], n_nodes: int, rng: np.random.Generator
) -> SolutionString:
    """A uniformly random legitimate solution over *task_ids* and *n_nodes*.

    Each node mask is drawn uniformly from the non-empty subsets.
    """
    if n_nodes <= 0:
        raise CodingError(f"n_nodes must be > 0, got {n_nodes}")
    ids = list(task_ids)
    ordering = [ids[i] for i in rng.permutation(len(ids))]
    mapping: Dict[int, np.ndarray] = {}
    for tid in ids:
        mask = rng.random(n_nodes) < 0.5
        if not mask.any():
            mask[int(rng.integers(n_nodes))] = True
        mapping[tid] = mask
    return SolutionString(ordering, mapping)
