"""Performance-driven task scheduling for local grid load balancing (§2)."""

from repro.scheduling.baselines import (
    RandomScheduler,
    RoundRobinScheduler,
    StaticPlacement,
)
from repro.scheduling.coding import SolutionString, random_solution
from repro.scheduling.endpoint import SchedulerServer
from repro.scheduling.cost import (
    IDLE_WEIGHTERS,
    CostBreakdown,
    CostWeights,
    deadline_penalty,
    exponential_idle_weight,
    linear_idle_weight,
    schedule_cost,
    uniform_idle_weight,
    weighted_idle_time,
)
from repro.scheduling.fifo import (
    Allocation,
    FIFOScheduler,
    earliest_free_allocation,
    exhaustive_allocation,
)
from repro.scheduling.fitness import scale_fitness
from repro.scheduling.ga import GAConfig, GAScheduler
from repro.scheduling.monitor import DEFAULT_POLL_INTERVAL, ResourceMonitor
from repro.scheduling.operators import (
    crossover,
    mutate,
    order_splice,
    stochastic_remainder_selection,
)
from repro.scheduling.schedule import (
    IdlePocket,
    Schedule,
    ScheduledTask,
    build_schedule,
    render_gantt,
)
from repro.scheduling.scheduler import LocalScheduler, SchedulingPolicy

__all__ = [
    "RandomScheduler",
    "RoundRobinScheduler",
    "StaticPlacement",
    "SchedulerServer",
    "SolutionString",
    "random_solution",
    "IDLE_WEIGHTERS",
    "CostBreakdown",
    "CostWeights",
    "deadline_penalty",
    "exponential_idle_weight",
    "linear_idle_weight",
    "schedule_cost",
    "uniform_idle_weight",
    "weighted_idle_time",
    "Allocation",
    "FIFOScheduler",
    "earliest_free_allocation",
    "exhaustive_allocation",
    "scale_fitness",
    "GAConfig",
    "GAScheduler",
    "DEFAULT_POLL_INTERVAL",
    "ResourceMonitor",
    "crossover",
    "mutate",
    "order_splice",
    "stochastic_remainder_selection",
    "IdlePocket",
    "Schedule",
    "ScheduledTask",
    "build_schedule",
    "render_gantt",
    "LocalScheduler",
    "SchedulingPolicy",
]
