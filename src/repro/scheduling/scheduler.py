"""The performance-driven local grid scheduler (Fig. 3, §2.2).

One :class:`LocalScheduler` manages one local grid resource.  It wires
together the six functional modules of Fig. 3:

* **communication** — :meth:`submit` (requests in), result listeners and
  service-information listeners (results / advertisements out);
* **task management** — a :class:`~repro.tasks.queue.TaskQueue` holding the
  optimisation set T;
* **GA scheduling** — a :class:`~repro.scheduling.ga.GAScheduler` (or the
  FIFO baseline) searching for schedules over T;
* **resource monitoring** — a :class:`~repro.scheduling.monitor.ResourceMonitor`
  tracking node availability;
* **task execution** — an :class:`~repro.tasks.execution.ExecutionEngine`
  booking virtual-time executions;
* **PACE evaluation engine** — the shared
  :class:`~repro.pace.evaluation.EvaluationEngine` behind its cache.

Dispatch model: the paper's scheduler "interrogates the GA when there are
free resources available in order to submit tasks for execution" and
removes launched tasks from T.  Here, every task arrival and every task
completion triggers ``evolve`` + ``dispatch``: the incumbent schedule is
rebuilt against actual node availability and every entry whose start time
is *now* is launched.  Under FIFO, placements are fixed at arrival and a
launch event is booked for each placement's start time.
"""

from __future__ import annotations

import enum
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.errors import TaskError, ValidationError
from repro.obs.records import (
    CostComponents,
    DagReady,
    TaskCompleted,
    TaskDispatched,
    TaskQueued,
)
from repro.obs.trace import Tracer
from repro.pace.evaluation import EvaluationEngine
from repro.pace.resource import ResourceModel
from repro.scheduling.baselines import (
    RandomScheduler,
    RoundRobinScheduler,
    StaticPlacement,
)
from repro.scheduling.cost import IDLE_WEIGHTERS, schedule_cost
from repro.scheduling.fifo import FIFOScheduler
from repro.scheduling.ga import GAConfig, GAScheduler
from repro.scheduling.monitor import ResourceMonitor
from repro.scheduling.schedule import build_schedule
from repro.sim.engine import Engine
from repro.sim.events import EventHandle, Priority
from repro.tasks.execution import ExecutionEngine, ExecutionMode
from repro.tasks.queue import TaskQueue
from repro.tasks.task import Environment, Task, TaskRequest, TaskState

__all__ = ["SchedulingPolicy", "LocalScheduler"]

#: How far into the future an unavailable node's free time is pushed.
#: Finite (unlike inf) so cost arithmetic stays valid; far beyond any
#: experiment horizon so down nodes are never selected for launchable work.
UNAVAILABLE_HORIZON = 1.0e7

_EPS = 1e-9


class SchedulingPolicy(str, enum.Enum):
    """Local scheduling algorithms available.

    FIFO and GA are Table 2's rows; RANDOM and ROUND_ROBIN are the extra
    literature baselines of :mod:`repro.scheduling.baselines` (fixed
    placements like FIFO, weaker allocation choices).
    """

    FIFO = "fifo"
    GA = "ga"
    RANDOM = "random"
    ROUND_ROBIN = "round-robin"

    @property
    def is_static(self) -> bool:
        """Whether placements are fixed at arrival (everything but GA)."""
        return self is not SchedulingPolicy.GA


class LocalScheduler:
    """A performance-driven scheduler for one local grid resource.

    Parameters
    ----------
    sim:
        Discrete-event engine (shared across the grid).
    resource:
        The local resource (homogeneous in the case study).
    evaluator:
        PACE evaluation engine (typically shared, for a shared cache).
    policy:
        FIFO or GA.
    rng:
        Random generator for the GA's stochastic choices.
    ga_config:
        GA tunables; ignored under FIFO.
    generations_per_event:
        GA generations evolved on each arrival/completion event.
    environments:
        Execution environments this resource supports (Fig. 5 advertises
        mpi, pvm and test).
    execution_mode / runtime_noise / execution_rng:
        Passed to the :class:`ExecutionEngine`.
    """

    def __init__(
        self,
        sim: Engine,
        resource: ResourceModel,
        evaluator: EvaluationEngine,
        *,
        policy: SchedulingPolicy = SchedulingPolicy.GA,
        rng: Optional[np.random.Generator] = None,
        ga_config: GAConfig = GAConfig(),
        generations_per_event: int = 10,
        environments: Tuple[Environment, ...] = (
            Environment.MPI,
            Environment.PVM,
            Environment.TEST,
        ),
        execution_mode: str = ExecutionMode.TEST,
        runtime_noise: float = 0.0,
        execution_rng: Optional[np.random.Generator] = None,
        monitor_poll_interval: float = 300.0,
        freetime_mode: str = "makespan",
        load_profile: Optional[Callable[[float], float]] = None,
        duration_correction: Optional[Callable[[], float]] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if generations_per_event < 0:
            raise ValidationError("generations_per_event must be >= 0")
        if freetime_mode not in ("makespan", "mean", "min"):
            raise ValidationError(f"unknown freetime_mode {freetime_mode!r}")
        if policy is SchedulingPolicy.GA and rng is None:
            raise ValidationError("GA policy requires an rng")
        self._sim = sim
        self._resource = resource
        self._evaluator = evaluator
        self._policy = policy
        self._tracer = tracer
        self._freetime_mode = freetime_mode
        self._generations_per_event = int(generations_per_event)
        self._environments = tuple(environments)
        self._queue = TaskQueue()
        self._executor = ExecutionEngine(
            sim,
            resource,
            evaluator,
            mode=execution_mode,
            runtime_noise=runtime_noise,
            rng=execution_rng,
            load_profile=load_profile,
        )
        # Optional multiplier applied to every duration *estimate* (not the
        # actual runtime) — the hook the NWS forecasting extension uses to
        # correct static PACE predictions for background load.
        self._duration_correction = duration_correction
        self._executor.on_completion(self._handle_completion)
        self._monitor = ResourceMonitor(
            sim, resource.size, poll_interval=monitor_poll_interval
        )
        self._monitor.subscribe(self._notify_service_change)
        self._platform = resource.slowest_platform()
        self._ga: Optional[GAScheduler] = None
        self._static: Optional[StaticPlacement] = None
        if policy is SchedulingPolicy.GA:
            assert rng is not None
            self._ga = GAScheduler(
                resource.size,
                self._task_duration,
                rng,
                ga_config,
                duration_row=self._task_duration_row,
                tracer=tracer,
                trace_name=resource.name,
            )
        elif policy is SchedulingPolicy.FIFO:
            self._static = FIFOScheduler(resource.size)
        elif policy is SchedulingPolicy.RANDOM:
            if rng is None:
                raise ValidationError("RANDOM policy requires an rng")
            self._static = RandomScheduler(resource.size, rng)
        else:
            self._static = RoundRobinScheduler(resource.size)
        self._result_listeners: List[Callable[[Task], None]] = []
        self._service_listeners: List[Callable[[], None]] = []
        self._all_tasks: List[Task] = []
        self._task_by_id: dict[int, Task] = {}
        # Incumbent-schedule per-node free times, refreshed at each
        # scheduling event; None = recompute on the next freetime() query.
        self._cached_node_free: Optional[np.ndarray] = None
        # task id -> pending static-launch event (checkpoint support).
        self._static_launch_handles: dict[int, "EventHandle"] = {}
        # Workflow gating state — all empty for independent-task runs, in
        # which case every path below is byte-identical to the seed:
        # * _gate: task id -> parent node names whose inputs have not yet
        #   arrived at this cluster (remote transfers in flight, or a
        #   co-located parent still queued/running).  Gated tasks are never
        #   dispatched; `dag.ready` is emitted the instant a gate clears.
        # * _floors: task id -> absolute earliest start (staging estimate
        #   or a dispatched parent's booked completion), mirrored into the
        #   GA and into dispatch-side schedule building.
        # * _constraints: child task id -> co-queued parent task ids that
        #   must precede it; _dependants is the reverse index used to
        #   collapse a constraint into a floor when the parent launches.
        # * _completion_watch: parent task id -> (child, parent node) gate
        #   keys cleared when the parent completes locally.
        # * _wf_node_task: (workflow id, node) -> local task id.
        self._gate: dict[int, set] = {}
        self._floors: dict[int, float] = {}
        self._constraints: dict[int, Tuple[int, ...]] = {}
        self._dependants: dict[int, set] = {}
        self._completion_watch: dict[int, List[Tuple[int, str]]] = {}
        self._wf_node_task: dict[Tuple[int, str], int] = {}

    # ------------------------------------------------------------------ state

    @property
    def sim(self) -> Engine:
        """The discrete-event engine."""
        return self._sim

    @property
    def evaluator(self) -> EvaluationEngine:
        """The PACE evaluation engine behind this scheduler."""
        return self._evaluator

    @property
    def resource(self) -> ResourceModel:
        """The managed resource."""
        return self._resource

    @property
    def policy(self) -> SchedulingPolicy:
        """The active scheduling policy."""
        return self._policy

    @property
    def queue(self) -> TaskQueue:
        """The task-management queue (the optimisation set T)."""
        return self._queue

    @property
    def executor(self) -> ExecutionEngine:
        """The task-execution engine."""
        return self._executor

    @property
    def monitor(self) -> ResourceMonitor:
        """The resource monitor."""
        return self._monitor

    @property
    def environments(self) -> Tuple[Environment, ...]:
        """Execution environments this resource supports."""
        return self._environments

    @property
    def ga(self) -> Optional[GAScheduler]:
        """The GA kernel (None under FIFO)."""
        return self._ga

    @property
    def all_tasks(self) -> List[Task]:
        """Every task ever submitted here, in submission order."""
        return list(self._all_tasks)

    def task(self, task_id: int) -> Optional[Task]:
        """The task submitted here under *task_id*, or ``None``."""
        return self._task_by_id.get(task_id)

    def supports(self, environment: Environment) -> bool:
        """Whether this resource provides *environment* (matchmaking gate)."""
        return environment in self._environments

    # ------------------------------------------------------------ estimation

    def _task_duration(self, task_id: int, count: int) -> float:
        task = self._task_by_id[task_id]
        base = self._evaluator.evaluate_count(task.application, count, self._platform)
        return base * self._correction_factor()

    def _task_duration_row(self, task_id: int) -> np.ndarray:
        """The whole ``t(1..n)`` estimate row — one bulk cache traversal."""
        task = self._task_by_id[task_id]
        row = self._evaluator.evaluate_counts(
            task.application, self._platform, self._resource.size
        )
        return row * self._correction_factor()

    def effective_free_times(self) -> np.ndarray:
        """Per-node availability: executor bookings, down nodes pushed out."""
        free = np.array(
            [self._executor.node_free_at(n.node_id) for n in self._resource.nodes]
        )
        now = self._sim.now
        for nid in self._monitor.unavailable_ids():
            free[nid] = max(free[nid], now + UNAVAILABLE_HORIZON)
        return np.maximum(free, now)

    def freetime(self) -> float:
        """ω — the earliest (approximate) time processors free up (§3.2).

        The paper advertises the GA's latest scheduling makespan, arguing
        "it is reasonable to assume that all of processors within a grid
        have approximately the same freetime" thanks to GA balancing.
        ``freetime_mode`` makes the aggregation pluggable for the
        estimator ablation:

        * ``"makespan"`` (paper, default) — latest per-node free time;
        * ``"mean"`` — average per-node free time (optimistic);
        * ``"min"`` — earliest per-node free time (most optimistic).
        """
        now = self._sim.now
        per_node = np.maximum(self._freetime_per_node(), now)
        if self._freetime_mode == "mean":
            return float(per_node.mean())
        if self._freetime_mode == "min":
            return float(per_node.min())
        return float(per_node.max())

    def _freetime_per_node(self) -> np.ndarray:
        """Per-node booked-or-scheduled free times for the estimator."""
        base = np.array(
            [self._executor.node_free_at(n.node_id) for n in self._resource.nodes]
        )
        if self._policy.is_static:
            assert self._static is not None
            return np.maximum(self._static.booked_free_times, base)
        if self._queue.is_empty:
            return base
        if self._cached_node_free is not None:
            return np.maximum(self._cached_node_free, base)
        assert self._ga is not None
        now = self._sim.now
        free = self.effective_free_times()
        best = self._ga.best_solution(free, now)
        schedule = build_schedule(
            best,
            free,
            self._task_duration,
            ref_time=now,
            floors=self._floors or None,
            predecessors=self._constraints or None,
        )
        self._cached_node_free = np.array(
            [schedule.node_free_after(n.node_id) for n in self._resource.nodes]
        )
        return self._cached_node_free

    def expected_completion(self, request: TaskRequest) -> Tuple[float, int]:
        """Eq. (10): ``η_r = ω + min_k t_x(k)`` and the minimising k.

        The agent-level estimate used by matchmaking; the local scheduler
        "may change the task order and advance or postpone a specific task
        execution", so this is approximate by design.
        """
        best_k, best_t = self._evaluator.best_count(
            request.application, self._platform, self._resource.size
        )
        best_t *= self._correction_factor()
        return self.freetime() + best_t, best_k

    def _correction_factor(self) -> float:
        if self._duration_correction is None:
            return 1.0
        factor = float(self._duration_correction())
        if factor <= 0.0:
            raise ValidationError(f"duration correction must be > 0, got {factor}")
        return factor

    # ------------------------------------------------------------ submission

    def submit(self, request: TaskRequest) -> Task:
        """Accept a request: queue, schedule, and dispatch what can start now."""
        if not self.supports(request.environment):
            raise TaskError(
                f"resource {self._resource.name!r} does not support "
                f"{request.environment.value!r}"
            )
        if request.workflow is not None and self._policy.is_static:
            raise TaskError(
                f"resource {self._resource.name!r} runs the static "
                f"{self._policy.value!r} policy, which cannot honour "
                f"workflow precedence — workflow tasks need the GA"
            )
        task = self._queue.submit(request)
        self._all_tasks.append(task)
        self._task_by_id[task.task_id] = task
        if self._tracer is not None:
            self._tracer.emit(
                TaskQueued(
                    t=self._sim.now,
                    resource=self._resource.name,
                    task_id=task.task_id,
                )
            )
        if self._policy.is_static:
            self._place_static(task)
        else:
            assert self._ga is not None
            if request.workflow is None:
                self._ga.add_task(task.task_id, task.deadline)
            else:
                floor, preds = self._register_workflow(task)
                self._ga.add_task(
                    task.task_id,
                    task.deadline,
                    priority=request.workflow.priority,
                    floor=floor,
                    predecessors=preds,
                )
            self._evolve_and_dispatch()
        self._notify_service_change()
        return task

    def _register_workflow(self, task: Task) -> Tuple[Optional[float], Tuple[int, ...]]:
        """Record a workflow task's gates/constraints; ``(floor, preds)``.

        Called before the task enters the GA so the very first dispatch
        pass already sees it gated.  Each binding input resolves to one of:
        already local (parent ran here and completed, or the output staged
        in earlier) — no gate; co-located and still queued — an ordering
        constraint plus a completion gate; co-located and running — a
        floor at the parent's booked completion plus a completion gate;
        remote — a transfer gate the agent clears via
        :meth:`notify_input_arrived`.
        """
        binding = task.request.workflow
        assert binding is not None
        tid = task.task_id
        self._wf_node_task[(binding.workflow_id, binding.node)] = tid
        gate: set = set()
        floor: Optional[float] = None
        preds: List[int] = []
        own = self._resource.name
        for parent_node, source, _size in binding.inputs:
            if source == own:
                continue  # the parent ran here; its output is already local
            if source == "":
                ptid = self._wf_node_task.get((binding.workflow_id, parent_node))
                if ptid is None:
                    raise TaskError(
                        f"workflow {binding.workflow_id} node {binding.node!r} "
                        f"depends on {parent_node!r}, which was never "
                        f"submitted to {own!r}"
                    )
                parent = self._task_by_id[ptid]
                if parent.state is TaskState.QUEUED:
                    preds.append(ptid)
                    self._dependants.setdefault(ptid, set()).add(tid)
                elif parent.state is TaskState.RUNNING:
                    nodes = parent.allocated_nodes or ()
                    booked = max(
                        (self._executor.node_free_at(nid) for nid in nodes),
                        default=self._sim.now,
                    )
                    floor = booked if floor is None else max(floor, booked)
                else:
                    continue  # completed: output present
                gate.add(parent_node)
                self._completion_watch.setdefault(ptid, []).append(
                    (tid, parent_node)
                )
            else:
                gate.add(parent_node)  # remote input: wait for the transfer
        if preds:
            self._constraints[tid] = tuple(preds)
        if floor is not None:
            self._floors[tid] = floor
        if gate:
            self._gate[tid] = gate
        else:
            self._emit_ready(task)
        return floor, tuple(preds)

    def _emit_ready(self, task: Task) -> None:
        """Trace ``dag.ready``: every input of a workflow task is local."""
        if self._tracer is None:
            return
        binding = task.request.workflow
        assert binding is not None
        self._tracer.emit(
            DagReady(
                t=self._sim.now,
                resource=self._resource.name,
                task_id=task.task_id,
                workflow=binding.workflow_id,
                node=binding.node,
            )
        )

    def notify_input_arrived(self, task_id: int, parent_node: str) -> None:
        """A staged-in input for *task_id* landed on this cluster.

        Clears the matching gate key; when the last key clears the task
        becomes dispatchable (``dag.ready``) and a scheduling pass runs.
        """
        gate = self._gate.get(task_id)
        if gate is None or parent_node not in gate:
            return
        gate.discard(parent_node)
        if not gate:
            del self._gate[task_id]
            self._emit_ready(self._task_by_id[task_id])
            if self._policy is SchedulingPolicy.GA:
                self._evolve_and_dispatch()

    def set_start_floor(self, task_id: int, floor: float) -> None:
        """Raise a queued task's earliest-start floor (transfer ETA)."""
        current = self._floors.get(task_id)
        if current is None or floor > current:
            self._floors[task_id] = float(floor)
        if self._ga is not None and task_id in self._queue:
            self._ga.set_floor(task_id, floor)

    # ----------------------------------------------------- static placement

    def _place_static(self, task: Task) -> None:
        """Book a fixed allocation (FIFO/random/round-robin) and arm launch."""
        assert self._static is not None
        self._static.sync_availability(self.effective_free_times())
        allocation = self._static.place(
            task.task_id,
            lambda k: self._task_duration(task.task_id, k),
            self._sim.now,
        )
        self._static_launch_handles[task.task_id] = self._sim.schedule(
            allocation.start,
            lambda: self._launch_static(task),
            priority=Priority.SCHEDULING,
            label=f"static-launch-{task.task_id}",
        )

    def _launch_static(self, task: Task) -> None:
        assert self._static is not None
        allocation = self._static.placement(task.task_id)
        ready = self._executor.earliest_all_free(allocation.node_ids)
        if ready > self._sim.now + _EPS:
            # Actual availability drifted later than the booking (runtime
            # noise or a node failure); re-arm at the observed time.
            self._static_launch_handles[task.task_id] = self._sim.schedule(
                ready,
                lambda: self._launch_static(task),
                priority=Priority.SCHEDULING,
                label=f"static-launch-{task.task_id}",
            )
            return
        self._static_launch_handles.pop(task.task_id, None)
        self._queue.remove(task.task_id)
        completion = self._executor.launch(task, allocation.node_ids)
        if self._tracer is not None:
            self._tracer.emit(
                TaskDispatched(
                    t=self._sim.now,
                    resource=self._resource.name,
                    task_id=task.task_id,
                    node_ids=tuple(int(n) for n in allocation.node_ids),
                    start=self._sim.now,
                    completion=completion,
                )
            )

    # -------------------------------------------------------------------- GA

    def _evolve_and_dispatch(self) -> None:
        assert self._ga is not None
        if self._queue.is_empty:
            self._cached_node_free = None
            return
        now = self._sim.now
        free = self.effective_free_times()
        self._ga.evolve(self._generations_per_event, free, now)
        # Hand the same availability vector to dispatch: the GA retained
        # its final cost vector for exactly this (free, now) key, so the
        # dispatch-side best_solution reuses it instead of paying one
        # more full eq.-(8) evaluation per scheduling event.
        self._dispatch(free)

    def _dispatch(self, free: Optional[np.ndarray] = None) -> None:
        """Launch every incumbent-schedule entry whose start time is now.

        A single pass suffices: the built schedule is conflict-free, so all
        entries starting at the current instant are concurrently
        launchable, and every other entry starts strictly later by
        construction.  Remaining tasks are reconsidered at the next
        arrival/completion event.
        """
        assert self._ga is not None
        now = self._sim.now
        if free is None:
            free = self.effective_free_times()
        best = self._ga.best_solution(free, now)
        schedule = build_schedule(
            best,
            free,
            self._task_duration,
            ref_time=now,
            floors=self._floors or None,
            predecessors=self._constraints or None,
        )
        self._cached_node_free = np.array(
            [schedule.node_free_after(n.node_id) for n in self._resource.nodes]
        )
        if self._tracer is not None:
            # eq. (8) breakdown of the incumbent — pure recomputation (no
            # RNG, no state), so tracing cannot perturb the run.
            breakdown = schedule_cost(
                schedule,
                {tid: self._ga.deadline(tid) for tid in self._ga.task_ids},
                self._ga.config.weights,
                idle_weighter=IDLE_WEIGHTERS[self._ga.config.idle_weighting],
            )
            self._tracer.emit(
                CostComponents(
                    t=now,
                    resource=self._resource.name,
                    omega=breakdown.makespan,
                    phi=breakdown.weighted_idle,
                    theta=breakdown.deadline_penalty,
                    combined=breakdown.combined,
                )
            )
        for entry in schedule.entries:
            if entry.task_id in self._gate:
                continue  # inputs still staging in (or a parent unfinished)
            if entry.start <= now + _EPS:
                task = self._queue.remove(entry.task_id)
                self._ga.remove_task(entry.task_id)
                completion = self._executor.launch(task, entry.node_ids)
                self._floors.pop(entry.task_id, None)
                if self._dependants:
                    self._release_dependants(entry.task_id, completion)
                if self._tracer is not None:
                    self._tracer.emit(
                        TaskDispatched(
                            t=now,
                            resource=self._resource.name,
                            task_id=entry.task_id,
                            node_ids=tuple(int(n) for n in entry.node_ids),
                            start=entry.start,
                            completion=completion,
                        )
                    )

    def _release_dependants(self, parent_id: int, completion: float) -> None:
        """Collapse ordering constraints on a just-launched parent to floors.

        The parent left the optimisation set, so "after the parent" becomes
        "not before the parent's booked completion" for every waiting
        child (the completion gate still protects against runtime noise).
        """
        assert self._ga is not None
        for child in sorted(self._dependants.pop(parent_id, ())):
            remaining = tuple(
                p for p in self._constraints.get(child, ()) if p != parent_id
            )
            if remaining:
                self._constraints[child] = remaining
            else:
                self._constraints.pop(child, None)
            current = self._floors.get(child)
            if current is None or completion > current:
                self._floors[child] = completion
            if child in self._queue:
                self._ga.set_floor(child, completion)

    def workflow_task_id(self, workflow_id: int, node: str) -> Optional[int]:
        """The local task id realising *(workflow, node)*, or ``None``.

        The binding outlives the task (completed parents must stay
        resolvable), so callers should check the task's state before
        acting on the id.
        """
        return self._wf_node_task.get((workflow_id, node))

    # ----------------------------------------------------------- cancellation

    def cancel_task(self, task_id: int) -> Task:
        """Cancel a task whether it is still queued or already running.

        Queued tasks leave the optimisation set (and the GA population /
        static booking); running tasks are killed via
        :meth:`ExecutionEngine.cancel`, freeing their nodes immediately.
        Either way the follow-up scheduling pass runs so freed capacity
        is reused at once.
        """
        self._forget_workflow_state(task_id)
        if task_id in self._queue:
            task = self._queue.cancel(task_id)
            if self._policy.is_static:
                handle = self._static_launch_handles.pop(task_id, None)
                if handle is not None:
                    handle.cancel()
                assert self._static is not None
                self._static.forget(task_id)
            else:
                assert self._ga is not None
                self._ga.remove_task(task_id)
                self._evolve_and_dispatch()
            self._notify_service_change()
            return task
        task = self._executor.cancel(task_id)
        if self._policy is SchedulingPolicy.GA:
            self._evolve_and_dispatch()
        self._notify_service_change()
        return task

    def _forget_workflow_state(self, task_id: int) -> None:
        """Drop gating/constraint bookkeeping for a cancelled task.

        Children left waiting on the cancelled task keep their gates —
        failure propagation (the workflow coordinator cancelling the rest
        of the graph) is the layer that resolves them.
        """
        if not (self._gate or self._floors or self._constraints
                or self._completion_watch or self._dependants):
            return
        self._gate.pop(task_id, None)
        self._floors.pop(task_id, None)
        for parent in self._constraints.pop(task_id, ()):
            deps = self._dependants.get(parent)
            if deps is not None:
                deps.discard(task_id)
                if not deps:
                    del self._dependants[parent]
        self._dependants.pop(task_id, None)
        self._completion_watch.pop(task_id, None)
        for watchers in self._completion_watch.values():
            watchers[:] = [w for w in watchers if w[0] != task_id]

    # ------------------------------------------------------------ completions

    def _handle_completion(self, task: Task) -> None:
        if self._tracer is not None:
            self._tracer.emit(
                TaskCompleted(
                    t=self._sim.now,
                    resource=self._resource.name,
                    task_id=task.task_id,
                    completion=self._sim.now,
                )
            )
        # Clear co-located completion gates before the scheduling pass so
        # children of the finished parent are dispatchable this very event.
        for child, parent_node in self._completion_watch.pop(task.task_id, ()):
            gate = self._gate.get(child)
            if gate is None:
                continue
            gate.discard(parent_node)
            if not gate:
                del self._gate[child]
                self._emit_ready(self._task_by_id[child])
        for listener in self._result_listeners:
            listener(task)
        if self._policy is SchedulingPolicy.GA:
            self._evolve_and_dispatch()
        self._notify_service_change()

    # ---------------------------------------------------------- notifications

    def on_result(self, listener: Callable[[Task], None]) -> None:
        """Register a callback fired when a task completes (results output)."""
        self._result_listeners.append(listener)

    def on_service_change(self, listener: Callable[[], None]) -> None:
        """Register a callback fired when advertised state may have changed."""
        self._service_listeners.append(listener)

    def off_service_change(self, listener: Callable[[], None]) -> None:
        """Unregister a service-change callback; unknown listeners are a no-op.

        Counterpart of :meth:`on_service_change` so push-advertisement
        strategies can detach on ``stop()`` instead of leaking a stale
        closure per crash/restart cycle.
        """
        try:
            self._service_listeners.remove(listener)
        except ValueError:
            pass

    def _notify_service_change(self) -> None:
        for listener in self._service_listeners:
            listener()

    # ------------------------------------------------------------- checkpoint

    def snapshot_state(self) -> dict:
        """Full scheduler state: task table, queue, bookings, kernel, monitor.

        Task objects are serialised exactly once (from the submission-order
        ``_all_tasks`` list); every other structure references them by id so
        restore preserves the identity sharing between the queue, the
        executor's running/completed sets, and the agent's reply map.
        """
        from repro.checkpoint.codec import encode_task

        state = {
            "tasks": [encode_task(t) for t in self._all_tasks],
            "queue": self._queue.snapshot_state(),
            "executor": self._executor.snapshot_state(),
            "monitor": self._monitor.snapshot_state(),
            "cached_node_free": (
                None
                if self._cached_node_free is None
                else [float(x) for x in self._cached_node_free]
            ),
            "static_launch_events": {
                str(tid): handle.descriptor()
                for tid, handle in sorted(self._static_launch_handles.items())
                if not handle.cancelled
            },
        }
        if self._ga is not None:
            state["ga"] = self._ga.snapshot_state()
        if self._static is not None:
            state["static"] = self._static.snapshot_state()
        # Workflow gating state rides along only when any is live, so
        # independent-task snapshots stay byte-identical to the seed's.
        workflow: dict = {}
        if self._gate:
            workflow["gate"] = [
                [tid, sorted(keys)] for tid, keys in sorted(self._gate.items())
            ]
        if self._floors:
            workflow["floors"] = [
                [tid, f] for tid, f in sorted(self._floors.items())
            ]
        if self._constraints:
            workflow["constraints"] = [
                [tid, list(parents)]
                for tid, parents in sorted(self._constraints.items())
            ]
        if self._completion_watch:
            workflow["watch"] = [
                [tid, [[c, n] for c, n in watchers]]
                for tid, watchers in sorted(self._completion_watch.items())
            ]
        if self._wf_node_task:
            workflow["node_tasks"] = [
                [wf, node, tid]
                for (wf, node), tid in sorted(self._wf_node_task.items())
            ]
        if workflow:
            state["workflow"] = workflow
        return state

    def restore_state(self, state: dict, *, applications) -> None:
        """Rebuild from a snapshot; *applications* maps name → model.

        Must be called on a freshly built scheduler (same resource, policy,
        and configuration as the snapshot source).  Pending static-launch
        events are re-created with their original identities; listeners are
        whatever the rebuilt wiring registered — callbacks are code, not
        state.
        """
        from repro.checkpoint.codec import decode_task

        self._all_tasks = [
            decode_task(raw, applications) for raw in state["tasks"]
        ]
        self._task_by_id = {t.task_id: t for t in self._all_tasks}
        self._queue.restore_state(state["queue"], self._task_by_id)
        self._executor.restore_state(state["executor"], self._task_by_id)
        self._monitor.restore_state(state["monitor"])
        cached = state["cached_node_free"]
        self._cached_node_free = None if cached is None else np.array(cached)
        if self._ga is not None:
            self._ga.restore_state(state["ga"])
        if self._static is not None:
            self._static.restore_state(state["static"])
        for handle in self._static_launch_handles.values():
            handle.cancel()
        self._static_launch_handles = {}
        for tid, descriptor in state["static_launch_events"].items():
            task = self._task_by_id[int(tid)]
            self._static_launch_handles[int(tid)] = self._sim.restore_event(
                descriptor, lambda t=task: self._launch_static(t)
            )
        workflow = state.get("workflow", {})
        self._gate = {
            int(tid): set(keys) for tid, keys in workflow.get("gate", [])
        }
        self._floors = {
            int(tid): float(f) for tid, f in workflow.get("floors", [])
        }
        self._constraints = {
            int(tid): tuple(int(p) for p in parents)
            for tid, parents in workflow.get("constraints", [])
        }
        self._dependants = {}
        for child, parents in self._constraints.items():
            for parent in parents:
                self._dependants.setdefault(parent, set()).add(child)
        self._completion_watch = {
            int(tid): [(int(c), str(n)) for c, n in watchers]
            for tid, watchers in workflow.get("watch", [])
        }
        self._wf_node_task = {
            (int(wf), str(node)): int(tid)
            for wf, node, tid in workflow.get("node_tasks", [])
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LocalScheduler({self._resource.name!r}, policy={self._policy.value}, "
            f"queued={len(self._queue)}, running={len(self._executor.running_tasks)})"
        )
