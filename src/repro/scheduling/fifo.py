"""The FIFO baseline scheduler (§4.1).

"The FIFO scheduling does not change the order of tasks.  Each task is
scheduled according to the time at which it arrives (also driven by the
PACE predictive data).  All of the possible resource allocations (a total
of 2^16 − 1 possibilities) are tried.  As soon as the current best solution
is found, it is fixed and will not change as new tasks enter the system."

Two search strategies implement the allocation choice:

* :func:`exhaustive_allocation` — the literal 2^n − 1 subset enumeration,
  practical only for small n; kept as the reference implementation.
* :func:`earliest_free_allocation` — for each size k the optimal subset is
  the k earliest-free nodes (on a homogeneous resource the duration depends
  only on k, and replacing any chosen node by an earlier-free one can only
  lower the start time), so searching sizes 1..n over the free-time order
  is equivalent and O(n log n).  A property test asserts equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ScheduleError
from repro.utils.validation import check_non_empty

__all__ = [
    "Allocation",
    "exhaustive_allocation",
    "earliest_free_allocation",
    "FIFOScheduler",
]

#: duration(n_allocated) -> predicted seconds for the task being placed.
SizeDurationFn = Callable[[int], float]


@dataclass(frozen=True)
class Allocation:
    """A fixed placement decision: nodes, start, and completion time."""

    node_ids: Tuple[int, ...]
    start: float
    completion: float

    @property
    def duration(self) -> float:
        """Booked execution time."""
        return self.completion - self.start

    @property
    def size(self) -> int:
        """Number of allocated nodes."""
        return len(self.node_ids)


def _best(candidates: List[Allocation]) -> Allocation:
    """Earliest completion wins; ties prefer fewer nodes, then lower ids."""
    return min(
        candidates, key=lambda a: (a.completion, a.size, a.node_ids)
    )


def exhaustive_allocation(
    free_times: Sequence[float], duration: SizeDurationFn
) -> Allocation:
    """Try every non-empty node subset; return the earliest-completion one.

    The literal strategy the paper describes.  Exponential in the node
    count — use :func:`earliest_free_allocation` beyond ~16 nodes.
    """
    check_non_empty(free_times, "free_times")
    n = len(free_times)
    candidates: List[Allocation] = []
    for k in range(1, n + 1):
        dur = float(duration(k))
        _check_duration(dur, k)
        for subset in combinations(range(n), k):
            start = max(free_times[i] for i in subset)
            candidates.append(Allocation(subset, start, start + dur))
    return _best(candidates)


def earliest_free_allocation(
    free_times: Sequence[float], duration: SizeDurationFn
) -> Allocation:
    """Equivalent optimal search in O(n log n) for homogeneous nodes.

    For each size k the k earliest-free nodes minimise the start time, and
    duration depends only on k, so only n candidates need comparing.  Node
    order within equal free times follows ascending id, matching the
    tie-break of :func:`exhaustive_allocation`.
    """
    check_non_empty(free_times, "free_times")
    free = np.asarray(free_times, dtype=float)
    # stable sort keeps ascending node id among equal free times
    order = np.argsort(free, kind="stable")
    sorted_free = free[order]
    candidates: List[Allocation] = []
    for k in range(1, free.size + 1):
        dur = float(duration(k))
        _check_duration(dur, k)
        start = float(sorted_free[k - 1])
        node_ids = tuple(sorted(int(i) for i in order[:k]))
        candidates.append(Allocation(node_ids, start, start + dur))
    return _best(candidates)


def _check_duration(dur: float, k: int) -> None:
    if not (dur > 0 and np.isfinite(dur)):
        raise ScheduleError(f"duration for {k} nodes must be finite and > 0, got {dur}")


class FIFOScheduler:
    """Arrival-order scheduler with fixed, never-revised allocations.

    Parameters
    ----------
    n_nodes:
        Number of processing nodes.
    exhaustive:
        Use the literal subset enumeration (reference mode, small n only).

    The scheduler maintains booked free times per node; ``place`` books the
    best allocation for an arriving task and returns it.
    """

    def __init__(self, n_nodes: int, *, exhaustive: bool = False) -> None:
        if n_nodes < 1:
            raise ScheduleError(f"n_nodes must be >= 1, got {n_nodes}")
        if exhaustive and n_nodes > 20:
            raise ScheduleError(
                f"exhaustive search over {n_nodes} nodes is intractable"
            )
        self._free = np.zeros(n_nodes, dtype=float)
        self._exhaustive = exhaustive
        self._placements: Dict[int, Allocation] = {}

    @property
    def n_nodes(self) -> int:
        """Number of processing nodes."""
        return self._free.size

    @property
    def booked_free_times(self) -> np.ndarray:
        """Per-node booked-until times (copy)."""
        return self._free.copy()

    @property
    def makespan(self) -> float:
        """Latest booked completion — the resource's freetime estimate."""
        return float(self._free.max())

    def placement(self, task_id: int) -> Allocation:
        """The fixed allocation previously booked for *task_id*."""
        try:
            return self._placements[task_id]
        except KeyError:
            raise ScheduleError(f"no placement booked for task {task_id}") from None

    def forget(self, task_id: int) -> None:
        """Drop a placement whose task was cancelled before launching.

        The booked node times are deliberately left as they are — the
        conservative choice shared with the other static policies: a
        too-late booking only delays later placements, never breaks them,
        and FIFO bookings are monotonic (see :meth:`sync_availability`).
        """
        self._placements.pop(task_id, None)

    def sync_availability(self, node_free_times: Sequence[float]) -> None:
        """Raise bookings to at least the executor's actual availability.

        Bookings only ever move later: FIFO placements are fixed, so actual
        availability (e.g. a node marked down) can delay but never undo.
        """
        actual = np.asarray(node_free_times, dtype=float)
        if actual.size != self._free.size:
            raise ScheduleError(
                f"expected {self._free.size} node times, got {actual.size}"
            )
        self._free = np.maximum(self._free, actual)

    def snapshot_state(self) -> dict:
        """Booked free times and fixed placements (checkpoint support)."""
        return {
            "free": [float(x) for x in self._free],
            "placements": {
                str(tid): [list(a.node_ids), a.start, a.completion]
                for tid, a in sorted(self._placements.items())
            },
        }

    def restore_state(self, state: dict) -> None:
        """Rebuild bookings from a :meth:`snapshot_state` dict."""
        self._free = np.asarray(state["free"], dtype=float)
        self._placements = {
            int(tid): Allocation(tuple(int(n) for n in nodes), float(s), float(c))
            for tid, (nodes, s, c) in state["placements"].items()
        }

    def place(
        self, task_id: int, duration: SizeDurationFn, now: float
    ) -> Allocation:
        """Book the best allocation for an arriving task; fixed thereafter."""
        if task_id in self._placements:
            raise ScheduleError(f"task {task_id} already placed")
        free = np.maximum(self._free, now)
        search = exhaustive_allocation if self._exhaustive else earliest_free_allocation
        allocation = search(free, duration)
        for nid in allocation.node_ids:
            self._free[nid] = allocation.completion
        self._placements[task_id] = allocation
        return allocation
