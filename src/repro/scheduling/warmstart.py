"""List-scheduling warm starts for the GA population (eq. 10).

The paper's GA evolves continuously in real time; an event-driven run only
affords a handful of generations per scheduling event, so how good the
population is *before* evolution matters as much as how fast a generation
runs.  Cheap list-scheduling heuristics are the standard complement to a
vectorised kernel — SAMPO's ``GeneticScheduler`` seeds its population from
HEFT schedules, and Savvas & Kechadi's dynamic cluster heuristics make the
same argument for iterative schedulers: fewer generations to converge is
as good as faster generations.

This module builds those seeds from the same inputs the GA already holds:

* ``dtable`` — the ``(m, n)`` predicted-duration table (``dtable[r, k-1]``
  is task row *r* on *k* nodes, the PACE ``t(k)`` row of eq. 10);
* ``deadlines`` — the ``(m,)`` absolute deadline vector;
* the node availability ``(node_free_times, ref_time)`` of the current
  scheduling event.

A *seed* is one ``(ordering, masks)`` pair in the packed representation of
:class:`~repro.scheduling.ga.GAScheduler` — a row permutation plus a
row-keyed ``(m, n)`` bool allocation matrix.  Orderings come from three
deterministic priority rules (arrival order, earliest deadline first, and
min-ETA greedy — smallest ``min_k t(k)`` first, the eq.-(10) estimate) plus
rng-perturbed variants for diversity; every ordering is mapped with the
completion-optimal greedy allocator.  Determinism: given equal inputs and
an equal rng state, the seeded population is identical — property-tested,
including through a checkpoint/restore round-trip.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "greedy_allocation_masks",
    "greedy_allocation_masks_batch",
    "warmstart_orders",
    "warmstart_population",
]


def greedy_allocation_masks_batch(
    orders: np.ndarray,
    dtable: np.ndarray,
    node_free_times: Sequence[float],
    ref_time: float,
) -> np.ndarray:
    """Completion-optimal masks for a batch of orders — ``(S, m, n)`` bool.

    Walks every ordering's tasks in lockstep (the walks are independent,
    so each of the ``m`` steps is a whole-batch array program); each task
    is allocated the earliest-free node subset minimising its completion
    time, the same argument as
    :func:`repro.scheduling.fifo.earliest_free_allocation`: on a
    homogeneous resource only the k earliest-free nodes need considering
    for each size k, so the per-task choice is an argmin over the
    cumulative-max of the sorted free times plus the task's ``t(k)`` row.
    """
    orders = np.asarray(orders, dtype=np.int64)
    s, m = orders.shape
    free0 = np.maximum(np.asarray(node_free_times, dtype=float), ref_time)
    n = free0.size
    free = np.empty((s, n))
    free[:] = free0[None, :]
    masks = np.zeros((s, m, n), dtype=bool)
    srange = np.arange(s)
    positions = np.arange(n)[None, :]
    for step in range(m):
        rows = orders[:, step]
        idx = np.argsort(free, axis=1, kind="stable")
        start_k = np.maximum.accumulate(
            np.take_along_axis(free, idx, axis=1), axis=1
        )
        comp_k = start_k + dtable[rows]
        kbest = np.argmin(comp_k, axis=1)  # chosen size − 1, per ordering
        comp_best = comp_k[srange, kbest]
        chosen = np.zeros((s, n), dtype=bool)
        chosen[srange[:, None], idx] = positions <= kbest[:, None]
        masks[srange, rows] = chosen
        free = np.where(chosen, comp_best[:, None], free)
    return masks


def greedy_allocation_masks(
    order_rows: np.ndarray,
    dtable: np.ndarray,
    node_free_times: Sequence[float],
    ref_time: float,
) -> np.ndarray:
    """Completion-optimal masks for one fixed task order — ``(m, n)`` bool.

    The single-ordering view of :func:`greedy_allocation_masks_batch`
    (also the memetic re-map used by
    :meth:`~repro.scheduling.ga.GAScheduler.greedy_mapping`).
    """
    order_rows = np.asarray(order_rows, dtype=np.int64)
    return greedy_allocation_masks_batch(
        order_rows[None, :], dtable, node_free_times, ref_time
    )[0]


def warmstart_orders(
    dtable: np.ndarray,
    deadlines: np.ndarray,
    count: int,
    rng: np.random.Generator,
    *,
    priorities: "np.ndarray | None" = None,
) -> np.ndarray:
    """*count* candidate orderings — ``(count, m)`` row permutations.

    The first three (as *count* allows) are the deterministic priority
    rules, in fixed precedence:

    1. **min-ETA greedy** — ascending ``min_k t(k)``, the eq.-(10)
       completion estimate (shortest-expected-task-first);
    2. **earliest deadline first** — ascending δ;
    3. **arrival order** — the identity row permutation (row order is
       insertion order until the first swap-remove).

    With *priorities* given (workflow b-levels), a **descending-priority**
    rule — the classic list-scheduling order: most critical-path work
    first, arrival order on ties — is prepended as rule 0.  ``None``
    (the default) keeps the rule list, and therefore the rng draws,
    identical to the pre-workflow behaviour.

    Remaining slots are perturbed copies: a base rule is cycled through
    and two random positions are swapped per extra candidate, giving the
    GA nearby-but-distinct starting points.  All stochastic choices come
    from *rng*, so the result is a pure function of the inputs and the
    rng state.
    """
    if count < 1:
        raise ValidationError(f"count must be >= 1, got {count}")
    m = dtable.shape[0]
    base = [
        np.argsort(dtable.min(axis=1), kind="stable"),
        np.argsort(deadlines, kind="stable"),
        np.arange(m, dtype=np.int64),
    ]
    if priorities is not None:
        base.insert(0, np.argsort(-np.asarray(priorities, dtype=float), kind="stable"))
    orders = np.empty((count, m), dtype=np.int64)
    for i in range(min(count, len(base))):
        orders[i] = base[i]
    for i in range(len(base), count):
        orders[i] = base[i % len(base)]
        if m >= 2:
            a, b = rng.choice(m, size=2, replace=False)
            orders[i, a], orders[i, b] = orders[i, b], orders[i, a]
    return orders


def warmstart_population(
    dtable: np.ndarray,
    deadlines: np.ndarray,
    node_free_times: Sequence[float],
    ref_time: float,
    count: int,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """*count* list-scheduling seeds — ``(orders (count, m), masks (count, m, n))``.

    Each candidate ordering from :func:`warmstart_orders` is mapped with
    the greedy allocator under the given availability.  Every seed is a
    legitimate solution by construction: orderings are permutations,
    every task's mask selects at least one node.
    """
    orders = warmstart_orders(dtable, deadlines, count, rng)
    masks = greedy_allocation_masks_batch(
        orders, dtable, node_free_times, ref_time
    )
    return orders, masks
