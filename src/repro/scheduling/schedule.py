"""Schedule construction from a solution string (§2.1, Fig. 2).

A schedule assigns each task T_j a node set ρ_j and a start time τ_j "at
which the allocated nodes all begin to execute the task in unison"
(eq. 6: η_j = τ_j + t_x(ρ_j, σ_j)).  Given a solution string, node
availability times, and per-task durations, :func:`build_schedule` produces
the deterministic earliest-start schedule:

* tasks are placed in ordering-part order;
* each task starts at the latest free time among its allocated nodes;
* its completion updates those nodes' free times.

The builder also records every **idle pocket** — an interval during which a
node sat free between (or before) task executions — because the GA's cost
function penalises front-loaded idle time (§2.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.errors import ScheduleError
from repro.scheduling.coding import SolutionString

__all__ = ["ScheduledTask", "IdlePocket", "Schedule", "build_schedule", "render_gantt"]


@dataclass(frozen=True)
class ScheduledTask:
    """One task's placement within a schedule."""

    task_id: int
    node_ids: Tuple[int, ...]
    start: float
    completion: float

    @property
    def duration(self) -> float:
        """Execution time on the allocation."""
        return self.completion - self.start


@dataclass(frozen=True)
class IdlePocket:
    """An interval ``[start, end)`` during which ``node_id`` sat idle."""

    node_id: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        """Length of the pocket."""
        return self.end - self.start


class Schedule:
    """An immutable built schedule: placements, makespan, idle pockets.

    ``ref_time`` is the instant the schedule was built for (virtual "now");
    makespan and idle weights are measured from it.
    """

    def __init__(
        self,
        entries: Sequence[ScheduledTask],
        idle_pockets: Sequence[IdlePocket],
        node_free: Mapping[int, float],
        ref_time: float,
    ) -> None:
        self._entries = tuple(entries)
        self._by_id = {e.task_id: e for e in self._entries}
        if len(self._by_id) != len(self._entries):
            raise ScheduleError("duplicate task ids in schedule")
        self._idle_pockets = tuple(idle_pockets)
        self._node_free = dict(node_free)
        self._ref_time = float(ref_time)

    @property
    def entries(self) -> Tuple[ScheduledTask, ...]:
        """Task placements in execution order."""
        return self._entries

    @property
    def idle_pockets(self) -> Tuple[IdlePocket, ...]:
        """Recorded idle pockets (leading + internal gaps)."""
        return self._idle_pockets

    @property
    def ref_time(self) -> float:
        """The instant the schedule was built for."""
        return self._ref_time

    @property
    def makespan(self) -> float:
        """Latest completion η of any task (eq. 7); ``ref_time`` if empty."""
        if not self._entries:
            return self._ref_time
        return max(e.completion for e in self._entries)

    @property
    def relative_makespan(self) -> float:
        """Makespan measured from ``ref_time``."""
        return self.makespan - self._ref_time

    def entry(self, task_id: int) -> ScheduledTask:
        """The placement of *task_id*."""
        try:
            return self._by_id[task_id]
        except KeyError:
            raise ScheduleError(f"schedule has no task {task_id}") from None

    def node_free_after(self, node_id: int) -> float:
        """When *node_id* becomes free once the schedule completes."""
        try:
            return self._node_free[node_id]
        except KeyError:
            raise ScheduleError(f"schedule covers no node {node_id}") from None

    def total_idle(self) -> float:
        """Unweighted total idle seconds across pockets."""
        return sum(p.duration for p in self._idle_pockets)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Schedule(tasks={len(self._entries)}, "
            f"makespan={self.relative_makespan:.2f}, idle={self.total_idle():.2f})"
        )


def build_schedule(
    solution: SolutionString,
    node_free_times: Sequence[float],
    duration: Callable[[int, int], float],
    *,
    ref_time: float = 0.0,
    floors: "Mapping[int, float] | None" = None,
    predecessors: "Mapping[int, Sequence[int]] | None" = None,
) -> Schedule:
    """Build the earliest-start schedule for *solution*.

    Parameters
    ----------
    solution:
        The two-part encoded candidate.
    node_free_times:
        Absolute virtual time each node becomes available (index = node id).
        Values earlier than *ref_time* are clamped to it — a node cannot
        have been idle before "now" from the schedule's perspective.
    duration:
        ``duration(task_id, n_allocated) -> seconds`` — the PACE prediction
        for the task on that allocation size (homogeneous resource).
    ref_time:
        The current virtual time.
    floors:
        Optional per-task earliest start times (absolute) — workflow data
        still staging in, or a dispatched parent's booked completion.
    predecessors:
        Optional ``task_id -> predecessor task ids`` precedence map: a
        task starts no earlier than every listed predecessor's completion
        *within this schedule* (predecessors absent from the solution are
        ignored — their influence arrives as a floor instead).  Both
        default to ``None``, which is byte-identical to the independent
        builder.

    Raises
    ------
    ScheduleError
        If the solution's mask length disagrees with ``node_free_times``,
        or a duration is non-positive.
    """
    free = np.maximum(np.asarray(node_free_times, dtype=float), ref_time)
    if solution.n_tasks and solution.n_nodes != free.size:
        raise ScheduleError(
            f"solution encodes {solution.n_nodes} nodes, resource has {free.size}"
        )
    entries: List[ScheduledTask] = []
    pockets: List[IdlePocket] = []
    completions: Dict[int, float] = {}
    for task_id, mask in solution.items():
        node_ids = np.flatnonzero(mask)
        start = float(free[node_ids].max())
        if floors is not None:
            start = max(start, float(floors.get(int(task_id), start)))
        if predecessors is not None:
            for pred in predecessors.get(int(task_id), ()):
                pred_completion = completions.get(int(pred))
                if pred_completion is not None:
                    start = max(start, pred_completion)
        dur = float(duration(int(task_id), int(node_ids.size)))
        if not (dur > 0 and np.isfinite(dur)):
            raise ScheduleError(
                f"duration for task {task_id} on {node_ids.size} nodes "
                f"must be finite and > 0, got {dur}"
            )
        completion = start + dur
        for nid in node_ids:
            if start > free[nid]:
                pockets.append(IdlePocket(int(nid), float(free[nid]), start))
        free[node_ids] = completion
        completions[int(task_id)] = completion
        entries.append(
            ScheduledTask(int(task_id), tuple(int(i) for i in node_ids), start, completion)
        )
    node_free = {int(i): float(free[i]) for i in range(free.size)}
    return Schedule(entries, pockets, node_free, ref_time)


def render_gantt(
    schedule: Schedule, *, width: int = 60, n_nodes: int | None = None
) -> str:
    """ASCII Gantt chart of a schedule (the visual of Fig. 2).

    Each row is a node; task ids are printed inside their execution spans;
    ``.`` marks idle time.
    """
    if not schedule.entries:
        return "(empty schedule)"
    t0 = schedule.ref_time
    t1 = schedule.makespan
    span = max(t1 - t0, 1e-9)
    nodes: Dict[int, List[str]] = {}
    max_node = max(max(e.node_ids) for e in schedule.entries)
    count = (max_node + 1) if n_nodes is None else n_nodes
    for nid in range(count):
        nodes[nid] = ["."] * width
    for e in schedule.entries:
        a = int((e.start - t0) / span * width)
        b = max(int((e.completion - t0) / span * width), a + 1)
        label = str(e.task_id)
        for nid in e.node_ids:
            row = nodes[nid]
            for x in range(a, min(b, width)):
                row[x] = "#"
            for i, ch in enumerate(label):
                if a + i < width:
                    row[a + i] = ch
    lines = [f"P{nid:<3d} |{''.join(row)}|" for nid, row in sorted(nodes.items())]
    header = f"t = {t0:.1f} .. {t1:.1f}  (makespan {t1 - t0:.1f}s)"
    return "\n".join([header] + lines)
