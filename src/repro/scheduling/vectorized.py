"""The fully vectorised GA kernel: whole-population operators, lean costing.

The batched kernel (:mod:`repro.scheduling.batched`) vectorised the
crossover *arithmetic* but kept the reference RNG protocol — every pair
decision, cut and point drawn scalar, in per-pair order — because its
contract is byte-identity with the per-pair kernel.  Profiling shows that
at case-study sizes (pop 50, m ≈ 12, n = 16) the remaining cost of a
generation is almost entirely **python/numpy call overhead**, not array
arithmetic: scalar RNG draws, the per-individual digest loop, the
per-generation memetic re-map, and a second full eq.-(8) evaluation for
the memetic candidate.

This module is the kernel with that overhead designed out, selected with
``GAConfig(kernel="vectorized")``:

* operators are **pure array programs over the whole population**: the
  random choices (pair decisions, cuts, points, swap positions, bit
  flips) are *arguments*, drawn by the caller as arrays — the evolve
  loop draws them in multi-generation blocks, so RNG dispatch is O(1)
  per generation;
* :func:`vectorized_costs` is a re-derived eq.-(8) evaluator that keeps
  its per-node state **node-major** (``(n, P)``) so the per-step masked
  maximum reduces along axis 0 of a contiguous array — measured ~3×
  cheaper than the row-major reduction at case-study sizes — and defers
  all idle-pocket accounting to whole-cube operations after the walk;
* cost evaluation runs once per generation over the **children only** —
  elites carry their costs forward structurally (the vectorised analogue
  of the eval-reuse memo).

Byte-identity with the reference kernel is **explicitly relaxed**: this
kernel consumes a different RNG stream and reorders float arithmetic.
The gate is *schedule-cost parity* instead — at an equal generation
budget the vectorised kernel's best cost must not exceed the reference
kernel's, and every individual must stay a legitimate solution
(property-tested; see docs/performance.md).

Shape conventions match the packed population of
:class:`~repro.scheduling.ga.GAScheduler`: orderings are ``(P, m)`` row
permutations, masks are ``(P, m, n)`` bool cubes keyed by task row.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import ScheduleError
from repro.scheduling.batched import _mask_crossover_core, _order_splice_core

__all__ = [
    "bernoulli_indices",
    "vectorized_selection",
    "vectorized_children",
    "vectorized_mutation",
    "vectorized_costs",
]


def bernoulli_indices(
    rng: np.random.Generator, total: int, p: float
) -> np.ndarray:
    """Positions of the successes in *total* iid Bernoulli(*p*) trials.

    Distribution-exact: successes in an iid Bernoulli sequence sit at the
    cumulative sums of iid geometric gaps, so drawing ``~total·p`` gaps
    replaces a *total*-sized uniform draw + threshold — the dominant RNG
    cost of the mutation step (bit generation scales with the number of
    floats drawn, and ``total ≈ P·m·n`` while successes are ``~P``).
    Returned indices are strictly increasing (hence unique).
    """
    if p <= 0.0 or total <= 0:
        return np.empty(0, dtype=np.int64)
    if p >= 1.0:
        return np.arange(total, dtype=np.int64)
    mean = total * p
    chunk = int(mean + 6.0 * np.sqrt(mean)) + 8
    positions = np.cumsum(rng.geometric(p, size=chunk)) - 1
    while positions[-1] < total:  # undershoot: extend the walk (rare)
        more = np.cumsum(rng.geometric(p, size=chunk)) + positions[-1]
        positions = np.concatenate([positions, more])
    return positions[: np.searchsorted(positions, total)]


def vectorized_selection(
    fitness: np.ndarray, count: int, rng: np.random.Generator
) -> np.ndarray:
    """Stochastic remainder selection drawn with O(1) RNG calls — ``(count,)``.

    Distribution-identical to
    :func:`repro.scheduling.operators.stochastic_remainder_selection`:
    each individual receives ``floor(expected)`` deterministic copies and
    the remaining slots are weighted draws on the fractional remainders;
    the result is returned in shuffled order so consecutive entries pair
    for crossover.  Only the *stream* differs — copies are materialised
    with ``np.repeat``, the weighted draws are inverse-CDF samples
    (``searchsorted`` over the remainder cumsum, far cheaper than
    ``rng.choice`` with explicit probabilities), and the shuffle is one
    ``rng.permutation`` instead of per-index scalar draws.
    """
    f = np.asarray(fitness, dtype=float)
    total_f = f.sum()
    if total_f == 0.0:
        return rng.integers(0, f.size, size=count)
    expected = f * (count / total_f)
    guaranteed = expected.astype(np.int64)  # truncation == floor: f >= 0
    base = np.repeat(np.arange(f.size, dtype=np.int64), guaranteed)
    slots = count - base.size
    if slots > 0:
        remainder = expected - guaranteed
        cdf = np.cumsum(remainder)
        if cdf[-1] <= 0:
            extra = rng.integers(0, f.size, size=slots)
        else:
            extra = np.searchsorted(
                cdf, rng.random(slots) * cdf[-1], side="right"
            )
        base = np.concatenate([base, extra.astype(np.int64)])
    elif slots < 0:
        return rng.permutation(base)[:count]
    return rng.permutation(base)


def vectorized_children(
    order: np.ndarray,
    masks: np.ndarray,
    parents: np.ndarray,
    do_cross: np.ndarray,
    cuts: np.ndarray,
    points: np.ndarray,
) -> tuple:
    """The next generation's non-elite individuals, built batch-at-once.

    Consecutive selected *parents* pair up exactly as in the reference
    kernel; ``do_cross``/``cuts``/``points`` are the per-pair random
    choices, drawn by the caller as arrays (the evolve loop draws them in
    multi-generation blocks).  Both crossover directions go through a
    single fused order-splice / mask-crossover invocation — the a-head
    children occupy the first half of the batch, the b-head children the
    second; child order within a generation is immaterial to selection.
    Pairs that do not cross copy their parents through; an odd leftover
    parent is copied verbatim.

    Returns ``(child_order (C, m), child_masks (C, m, n))`` with
    ``C == parents.size``.
    """
    parents = np.asarray(parents, dtype=np.int64)
    pair_count = parents.size // 2
    m = order.shape[1]
    if pair_count == 0 or m == 0:
        return order[parents].copy(), masks[parents].copy()
    pa = parents[: 2 * pair_count : 2]
    pb = parents[1 : 2 * pair_count : 2]
    heads = np.concatenate([pa, pb])
    tails = np.concatenate([pb, pa])
    head_orders = order[heads]
    head_masks = masks[heads]
    cuts2 = np.concatenate([cuts, cuts])
    child_order = _order_splice_core(head_orders, order[tails], cuts2)
    child_masks = _mask_crossover_core(
        child_order, head_masks, masks[tails], np.concatenate([points, points])
    )
    plain = np.flatnonzero(~np.concatenate([do_cross, do_cross]))
    if plain.size:
        child_order[plain] = head_orders[plain]
        child_masks[plain] = head_masks[plain]
    if parents.size % 2:
        child_order = np.concatenate([child_order, order[parents[-1:]]])
        child_masks = np.concatenate([child_masks, masks[parents[-1:]]])
    return child_order, child_masks


def vectorized_mutation(
    order: np.ndarray,
    masks: np.ndarray,
    swap_sel: Optional[np.ndarray],
    swap_i: Optional[np.ndarray],
    swap_j: Optional[np.ndarray],
    flip_idx: Optional[np.ndarray],
    repair_picks_rng: np.random.Generator,
) -> None:
    """In-place two-part mutation from pre-drawn array choices.

    *swap_sel* (``(P,)`` bool) marks the individuals whose ordering
    mutates; each swaps positions ``i = swap_i`` and
    ``j = (i + 1 + swap_j) % m`` — with ``swap_j`` uniform on
    ``0..m-2`` this offset trick is uniform over ordered distinct pairs,
    the same distribution as the reference's per-individual
    ``rng.choice(m, 2, replace=False)``.  *flip_idx* holds the **flat**
    bit positions to toggle in ``masks`` (unique indices into the
    flattened ``(P·m·n,)`` view — :func:`bernoulli_indices` output, the
    sparse equivalent of XORing a Bernoulli bit field).  Any of the
    choices may be ``None`` to skip that part.  The empty-mask
    legitimacy repair always runs (crossover and flips can zero a row);
    its rare node picks come from *repair_picks_rng*.
    """
    pop, m = order.shape
    n = masks.shape[2]
    if swap_sel is not None and m >= 2:
        rows = np.flatnonzero(swap_sel)
        if rows.size:
            i = swap_i[rows]
            j = (i + 1 + swap_j[rows]) % m
            vi = order[rows, i]
            order[rows, i] = order[rows, j]
            order[rows, j] = vi
    if flip_idx is not None and flip_idx.size:
        if masks.flags["C_CONTIGUOUS"]:
            masks.reshape(-1)[flip_idx] ^= True
        else:  # a flat view would silently copy; scatter through coordinates
            masks[np.unravel_index(flip_idx, masks.shape)] ^= True
    flat = masks.reshape(-1, n)
    empty = ~flat.any(axis=1)
    if empty.any():
        picks = repair_picks_rng.integers(n, size=int(empty.sum()))
        flat[np.flatnonzero(empty), picks] = True


#: Reusable evaluator state, keyed by problem shape.  ``evolve`` calls the
#: evaluator once per generation with an identical shape, so the working
#: arrays (the ``(n, P)`` free times, the ``(m, P)`` start/completion
#: tables, and the ``(m, n, P)`` step cube) are allocated once and
#: rewritten in place.  Every entry is fully overwritten before use, so
#: the cache carries no state between calls — it only skips allocator
#: traffic.  Process-local by construction (``run_many`` parallelism is
#: process-based).
_SCRATCH: dict = {}


def _cost_scratch(m: int, n: int, pop: int):
    """The per-shape working arrays of :func:`vectorized_costs`."""
    key = (m, n, pop)
    entry = _SCRATCH.get(key)
    if entry is None:
        if len(_SCRATCH) > 32:  # unbounded shapes would pin memory
            _SCRATCH.clear()
        entry = (
            np.empty((n, pop)),
            np.empty((m, pop)),
            np.empty((m, pop)),
            np.empty((m, n, pop)),
            np.ones(m * n),
            np.arange(pop)[:, None],
        )
        _SCRATCH[key] = entry
    return entry


def vectorized_costs(
    order: np.ndarray,
    masks: np.ndarray,
    dtable: np.ndarray,
    deadlines: np.ndarray,
    node_free_times: Sequence[float],
    ref_time: float,
    weights,
    idle_weighting: str = "linear",
) -> np.ndarray:
    """eq.-(8) cost of every individual — the lean whole-population evaluator.

    Computes the same quantity as the reference evaluator
    (:meth:`GAScheduler._evaluate <repro.scheduling.ga.GAScheduler._evaluate>`)
    with a fraction of the numpy calls per task step, which is what
    matters at case-study sizes where call overhead dominates arithmetic:

    * everything runs in **time relative to** ``ref_time`` and
      **node-major layout**: free times are a contiguous ``(n, P)``
      array, so the per-step masked maximum is an axis-0 reduction
      (~3× cheaper than the row-major axis-1 reduction here);
    * the inner walk over the ``m`` (inherently sequential) task steps
      does only four array operations — masked free gather, start
      maximum, completion, and the free-time update; the masked gathers
      are retained as an ``(m, n, P)`` cube;
    * all idle-pocket accounting happens **after** the walk as whole-cube
      arithmetic: the cube row for step ``j`` holds ``frel·mask``, so
      ``Σ_sel frel = cube[j].sum()`` and ``Σ_sel frel² = (cube[j]²).sum()``
      (masks are boolean, so squaring preserves the selection), giving
      the linear weighting's pocket integral
      ``Σ (b² − a²)/2 = (count·start² − Σ_sel frel²)/2`` per step with no
      per-step reductions.

    Caller contract: every mask row selects at least one node (the
    operators' legitimacy repair runs *before* costing) and durations are
    finite and positive.  Float arithmetic is reordered relative to the
    reference, so agreement is to rounding (asserted with ``allclose`` by
    the property tests), not bit-identity.
    """
    pop, m = order.shape
    n = masks.shape[2]
    free0 = np.maximum(np.asarray(node_free_times, dtype=float), ref_time)
    if free0.size != n:
        raise ScheduleError(
            f"node_free_times has {free0.size} entries, resource has {n}"
        )
    if m == 0:
        return np.zeros(pop)
    frel, starts, comps, cube, ones_mn, rows_idx = _cost_scratch(m, n, pop)
    # (m, n, pop): step-major, node-major per step, contiguous.
    smask = np.ascontiguousarray(masks[rows_idx, order].transpose(1, 2, 0))
    counts = smask.sum(axis=1)  # (m, pop)
    order_t = order.T
    durs = dtable[order_t, counts - 1]  # (m, pop)
    frel[:] = (free0 - ref_time)[:, None]  # (n, pop) — all >= 0 after clamp
    for j in range(m):
        cj = cube[j]
        np.multiply(frel, smask[j], out=cj)  # frel >= 0, so 0-fill is safe
        np.maximum.reduce(cj, axis=0, out=starts[j])
        np.add(starts[j], durs[j], out=comps[j])
        np.copyto(frel, comps[j][None, :], where=smask[j])
    omega = np.maximum.reduce(comps, axis=0)
    np.maximum(omega, 0.0, out=omega)
    theta = np.maximum(comps - (deadlines[order_t] - ref_time), 0.0).sum(axis=0)
    # Idle pockets [a, b] on selected nodes: a = frel before the step
    # (cube holds frel·mask), b = the step's start.
    if idle_weighting != "exponential":
        cube2d = cube.reshape(m * n, pop)
        cs = counts * starts
        # Σ count·start − Σ_sel frel; the flat matvec is the cheapest
        # (m·n, P) → (P,) reduction at these sizes (BLAS, one dispatch).
        idle_len = cs.sum(axis=0) - ones_mn @ cube2d
        if idle_weighting == "uniform":
            phi = idle_len
        else:  # linear
            cs *= starts
            sel_sq = np.einsum("ij,ij->j", cube2d, cube2d)
            idle_sq = (cs.sum(axis=0) - sel_sq) * 0.5
            safe = np.where(omega > 0, omega, 1.0)
            phi = np.where(omega > 0, idle_len - idle_sq / safe, 0.0)
    else:  # exponential: ∫ exp(−3t/ω) dt over each pocket, t relative
        rate = np.where(omega > 0, 3.0 / np.where(omega > 0, omega, 1.0), 0.0)
        r = rate[None, None, :]
        safe_r = np.where(r > 0, r, 1.0)
        has_gap = smask & (cube < starts[:, None, :])
        contrib = np.where(
            has_gap & (r > 0),
            (np.exp(-safe_r * cube) - np.exp(-safe_r * starts[:, None, :]))
            / safe_r,
            0.0,
        )
        phi = contrib.sum(axis=(0, 1))
    return (
        weights.makespan * omega + weights.idle * phi + weights.deadline * theta
    ) / weights.total
