"""The scheduler's communication module (Fig. 3) — a transport endpoint.

"The communication module acts as the interface of the system to the
external environment.  A request can be received directly from a user when
the system functions independently or from an agent when the system works
with a higher-level agent-based system.  The task execution results are
sent directly back to the user from where the request originates."

:class:`SchedulerServer` binds a :class:`~repro.scheduling.scheduler.LocalScheduler`
to an (address, port) identity on the transport: REQUEST messages become
local submissions, completions return RESULT messages to the submitter,
and PULL messages are answered with the scheduler's Fig. 5 service record —
allowing a scheduler to *function independently*, without a fronting agent.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import TaskError, TransportError
from repro.net.message import Endpoint, Message, MessageKind
from repro.net.payloads import RequestEnvelope, ServiceInfo, TaskResult
from repro.net.transport import Transport
from repro.scheduling.scheduler import LocalScheduler
from repro.tasks.task import Task

__all__ = ["SchedulerServer"]


class SchedulerServer:
    """Expose a local scheduler directly on the message transport.

    Parameters
    ----------
    scheduler:
        The scheduler to serve.
    transport:
        The grid's message transport.
    endpoint:
        The (address, port) identity to bind (Fig. 5's ``<local>`` tuple).
    """

    def __init__(
        self,
        scheduler: LocalScheduler,
        transport: Transport,
        endpoint: Endpoint,
    ) -> None:
        self._scheduler = scheduler
        self._transport = transport
        self._endpoint = endpoint
        self._reply_to: Dict[int, RequestEnvelope] = {}
        self._rejected = 0
        transport.register(endpoint, self._handle_message)
        scheduler.on_result(self._handle_completion)

    # ------------------------------------------------------------------ state

    @property
    def endpoint(self) -> Endpoint:
        """The bound transport identity."""
        return self._endpoint

    @property
    def scheduler(self) -> LocalScheduler:
        """The served scheduler."""
        return self._scheduler

    @property
    def rejected(self) -> int:
        """Requests refused (unsupported environment)."""
        return self._rejected

    def service_info(self) -> ServiceInfo:
        """The scheduler's Fig. 5 record, self-identified (no agent)."""
        scheduler = self._scheduler
        return ServiceInfo(
            agent_endpoint=self._endpoint,
            scheduler_endpoint=self._endpoint,
            hardware_type=scheduler.resource.slowest_platform().name,
            nproc=scheduler.resource.size,
            environments=scheduler.environments,
            freetime=scheduler.freetime(),
        )

    # --------------------------------------------------------------- messages

    def _handle_message(self, message: Message) -> None:
        if message.kind is MessageKind.REQUEST:
            envelope = message.payload
            if not isinstance(envelope, RequestEnvelope):
                raise TransportError(
                    f"bad REQUEST payload: {type(envelope).__name__}"
                )
            self._submit(envelope)
        elif message.kind is MessageKind.PULL:
            self._transport.send(
                Message(
                    MessageKind.ADVERTISE,
                    self._endpoint,
                    message.sender,
                    payload=self.service_info(),
                )
            )
        else:
            raise TransportError(
                f"scheduler endpoint cannot handle {message.kind.value!r}"
            )

    def _submit(self, envelope: RequestEnvelope) -> None:
        envelope = envelope.visited(f"scheduler:{self._scheduler.resource.name}")
        try:
            task = self._scheduler.submit(envelope.request)
        except TaskError:
            # Unsupported environment: report failure straight back.
            self._rejected += 1
            self._transport.send(
                Message(
                    MessageKind.RESULT,
                    self._endpoint,
                    envelope.reply_to,
                    payload=TaskResult(
                        request_id=envelope.request_id,
                        application=envelope.request.application.name,
                        success=False,
                        submit_time=envelope.request.submit_time,
                        deadline=envelope.request.deadline,
                        trace=envelope.trace,
                    ),
                )
            )
            return
        self._reply_to[task.task_id] = envelope

    def _handle_completion(self, task: Task) -> None:
        envelope = self._reply_to.pop(task.task_id, None)
        if envelope is None:
            return  # submitted by other means (e.g. a fronting agent)
        assert task.completion_time is not None and task.start_time is not None
        self._transport.send(
            Message(
                MessageKind.RESULT,
                self._endpoint,
                envelope.reply_to,
                payload=TaskResult(
                    request_id=envelope.request_id,
                    application=task.application.name,
                    success=True,
                    resource_name=task.resource_name
                    or self._scheduler.resource.name,
                    submit_time=task.request.submit_time,
                    start_time=task.start_time,
                    completion_time=task.completion_time,
                    deadline=task.deadline,
                    trace=envelope.trace,
                ),
            )
        )
