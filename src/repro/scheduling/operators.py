"""Genetic operators for the two-part coding scheme (§2.1).

* **Selection** — "a fixed population size and stochastic remainder
  selection": each individual receives ``floor(f_i / mean_f)`` offspring
  deterministically; the fractional remainders fill the remaining slots by
  weighted sampling without replacement of probability proportional to the
  remainder.
* **Crossover** — "first splices the two ordering strings at a random
  location, and then reorders the pairs to produce legitimate solutions.
  The mapping parts are crossed over by first reordering them to be
  consistent with the new task order, and then performing a single-point
  (binary) crossover.  The reordering is necessary to preserve the node
  mapping associated with a particular task from one generation to the
  next."
* **Mutation** — "two-part, with a switching operator randomly applied to
  the ordering parts, and a random bit-flip applied to the mapping parts."

One repair rule is ours: a crossover or bit-flip that would leave a task
with an empty node mask re-sets one random bit, because an empty mask is
not a legitimate solution (every task needs at least one node).  The paper
does not specify its repair; any choice that restores legitimacy preserves
the algorithm's behaviour.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.scheduling.coding import SolutionString

__all__ = [
    "stochastic_remainder_selection",
    "order_splice",
    "crossover",
    "mutate",
]


def stochastic_remainder_selection(
    fitness: Sequence[float], count: int, rng: np.random.Generator
) -> List[int]:
    """Select *count* parent indices by stochastic remainder sampling.

    Returns indices into the population; order is shuffled so consecutive
    entries can be paired for crossover.
    """
    f = np.asarray(fitness, dtype=float)
    if f.size == 0:
        raise ValidationError("fitness must not be empty")
    if np.any(f < 0) or not np.all(np.isfinite(f)):
        raise ValidationError("fitness values must be finite and >= 0")
    if count <= 0:
        raise ValidationError(f"count must be > 0, got {count}")
    mean = f.mean()
    if mean == 0:
        # Degenerate population: select uniformly.
        picks = rng.integers(0, f.size, size=count)
        return [int(i) for i in picks]
    expected = f / mean * (count / f.size)
    guaranteed = np.floor(expected).astype(int)
    selected: List[int] = []
    for idx, copies in enumerate(guaranteed):
        selected.extend([idx] * int(copies))
    remainder = expected - guaranteed
    slots = count - len(selected)
    if slots > 0:
        total = remainder.sum()
        if total <= 0:
            extra = rng.integers(0, f.size, size=slots)
        else:
            extra = rng.choice(f.size, size=slots, replace=True, p=remainder / total)
        selected.extend(int(i) for i in extra)
    elif slots < 0:
        # Rounding overshoot: trim random extras.
        rng.shuffle(selected)
        selected = selected[:count]
    result = np.array(selected)
    rng.shuffle(result)
    return [int(i) for i in result]


def order_splice(
    order_a: Sequence[int], order_b: Sequence[int], cut: int
) -> Tuple[int, ...]:
    """Splice two orderings at *cut*: a's prefix, then b's order for the rest.

    This is the "reorder the pairs to produce legitimate solutions" step —
    the child is always a permutation of the common task set.

    >>> order_splice([3, 5, 2, 1], [1, 2, 5, 3], 2)
    (3, 5, 1, 2)
    """
    if set(order_a) != set(order_b):
        raise ValidationError("orderings must cover the same task ids")
    if not (0 <= cut <= len(order_a)):
        raise ValidationError(f"cut {cut} out of range 0..{len(order_a)}")
    head = list(order_a[:cut])
    head_set = set(head)
    tail = [t for t in order_b if t not in head_set]
    return tuple(head + tail)


def _repair_empty_masks(
    masks: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Set one random bit in any all-zero row (legitimacy repair)."""
    empty = ~masks.any(axis=1)
    for row in np.flatnonzero(empty):
        masks[row, int(rng.integers(masks.shape[1]))] = True
    return masks


def crossover(
    parent_a: SolutionString,
    parent_b: SolutionString,
    rng: np.random.Generator,
) -> Tuple[SolutionString, SolutionString]:
    """Two-part crossover producing two children.

    The ordering strings are spliced at one random location (both
    directions, giving two children); the mapping parts — flattened in each
    child's task order — undergo a shared single-point binary crossover.
    """
    if set(parent_a.ordering) != set(parent_b.ordering):
        raise ValidationError("parents must encode the same task set")
    m = parent_a.n_tasks
    if m == 0:
        return parent_a, parent_b
    n = parent_a.n_nodes
    cut = int(rng.integers(0, m + 1))
    child1_order = order_splice(parent_a.ordering, parent_b.ordering, cut)
    child2_order = order_splice(parent_b.ordering, parent_a.ordering, cut)

    # Mapping crossover: reorder both parents' maps to the child's task
    # order (keyed lookup does this for free), flatten, single-point cross.
    point = int(rng.integers(0, m * n + 1))

    def cross_maps(
        order: Tuple[int, ...], first: SolutionString, second: SolutionString
    ) -> dict:
        flat_first = np.concatenate([first.mask(t) for t in order])
        flat_second = np.concatenate([second.mask(t) for t in order])
        child_flat = np.concatenate([flat_first[:point], flat_second[point:]])
        masks = child_flat.reshape(m, n).copy()
        masks = _repair_empty_masks(masks, rng)
        return {t: masks[i] for i, t in enumerate(order)}

    child1 = SolutionString(child1_order, cross_maps(child1_order, parent_a, parent_b))
    child2 = SolutionString(child2_order, cross_maps(child2_order, parent_b, parent_a))
    return child1, child2


def mutate(
    solution: SolutionString,
    rng: np.random.Generator,
    *,
    swap_probability: float = 0.2,
    bitflip_probability: float = 0.02,
) -> SolutionString:
    """Two-part mutation: order swap + per-bit mapping flips.

    With probability *swap_probability* two ordering positions are switched;
    every mapping bit flips independently with *bitflip_probability*.
    Empty masks are repaired.
    """
    if not (0 <= swap_probability <= 1 and 0 <= bitflip_probability <= 1):
        raise ValidationError("mutation probabilities must be in [0, 1]")
    m = solution.n_tasks
    if m == 0:
        return solution
    n = solution.n_nodes
    ordering = list(solution.ordering)
    if m >= 2 and rng.random() < swap_probability:
        i, j = rng.choice(m, size=2, replace=False)
        ordering[i], ordering[j] = ordering[j], ordering[i]
    masks = np.stack([solution.mask(t) for t in ordering]).copy()
    flips = rng.random(masks.shape) < bitflip_probability
    masks ^= flips
    masks = _repair_empty_masks(masks, rng)
    return SolutionString(ordering, {t: masks[i] for i, t in enumerate(ordering)})
