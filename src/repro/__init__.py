"""Reproduction of Cao et al., *Agent-Based Grid Load Balancing Using
Performance-Driven Task Scheduling* (IPPS 2003).

The package couples a GA-based, performance-driven local grid scheduler
(:mod:`repro.scheduling`) with a hierarchy of homogeneous agents doing
service advertisement and discovery (:mod:`repro.agents`), both driven by a
PACE-style performance-prediction substrate (:mod:`repro.pace`), running in
virtual time (:mod:`repro.sim`).  The §4 case study is reproduced end to
end by :mod:`repro.experiments`.

Quickstart
----------
>>> from repro.experiments import table2_experiments, run_experiment
>>> cfg = table2_experiments(request_count=30)[2]   # GA + agents, small
>>> result = run_experiment(cfg)
>>> result.metrics.total.n_tasks
30
"""

from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = ["ReproError", "__version__"]
