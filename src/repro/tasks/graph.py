"""Task graphs: DAG workloads with data movement between tasks.

The paper schedules *independent* tasks — each request is complete in
itself.  Real grid workloads (Montage mosaics, map-reduce analytics,
parameter-sweep fork-joins) are **workflows**: a task consumes its
parents' outputs, and when parent and child land on different clusters
the output bytes must move first.  :class:`TaskGraph` is the static
description of one such workflow:

* nodes name the tasks and bind each to a PACE application (by spec
  name, like the workload layer's :class:`~repro.experiments.workload.
  WorkloadItem`);
* edges carry the parent's **output size** toward that child, in
  abstract data units — the transfer layer charges ``size / bandwidth``
  seconds through the transport when the edge crosses clusters.

The graph is pure structure: no deadlines, no placement, no state.  The
:class:`~repro.tasks.workflow.WorkflowCoordinator` walks it at run time;
:func:`b_levels` turns it into scheduling priorities (the classic
bottom-level of list scheduling: longest downstream path including the
node's own estimated duration).

Three generator families mirror the shapes the workflow-scheduling
literature benchmarks on (fork-join, map-reduce, Montage); all are pure
functions of their arguments so scenarios stay byte-reproducible.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from repro.errors import TaskError

__all__ = [
    "TaskGraph",
    "b_levels",
    "fork_join",
    "map_reduce",
    "montage",
    "WORKFLOW_SHAPES",
]


class TaskGraph:
    """An immutable DAG of named tasks with sized data edges.

    Parameters
    ----------
    nodes:
        ``node name -> application spec name`` in insertion order; the
        order is part of the graph's identity (release and priority ties
        break on it deterministically).
    edges:
        ``(parent, child, size)`` triples; *size* is the volume of
        parent output the child consumes, ``>= 0``.

    Raises
    ------
    TaskError
        On duplicate/unknown node references, self-loops, duplicate
        edges, negative sizes, or cycles.
    """

    def __init__(
        self,
        nodes: Mapping[str, str],
        edges: Sequence[Tuple[str, str, float]],
    ) -> None:
        if not nodes:
            raise TaskError("a task graph needs at least one node")
        for name in nodes:
            if not name:
                raise TaskError("node names must be non-empty")
        self._apps: Dict[str, str] = dict(nodes)
        self._parents: Dict[str, List[Tuple[str, float]]] = {n: [] for n in nodes}
        self._children: Dict[str, List[Tuple[str, float]]] = {n: [] for n in nodes}
        seen = set()
        for parent, child, size in edges:
            if parent not in self._apps or child not in self._apps:
                raise TaskError(f"edge ({parent!r}, {child!r}) references unknown node")
            if parent == child:
                raise TaskError(f"self-loop on node {parent!r}")
            if (parent, child) in seen:
                raise TaskError(f"duplicate edge ({parent!r}, {child!r})")
            if not (size >= 0):
                raise TaskError(f"edge ({parent!r}, {child!r}) has negative size {size}")
            seen.add((parent, child))
            self._parents[child].append((parent, float(size)))
            self._children[parent].append((child, float(size)))
        self._order = self._topological_order()  # raises on cycles

    # ------------------------------------------------------------------ shape

    @property
    def node_names(self) -> Tuple[str, ...]:
        """All node names in insertion order."""
        return tuple(self._apps)

    @property
    def edge_count(self) -> int:
        """Number of data edges."""
        return sum(len(v) for v in self._children.values())

    def application(self, node: str) -> str:
        """The application spec name bound to *node*."""
        try:
            return self._apps[node]
        except KeyError:
            raise TaskError(f"unknown node {node!r}") from None

    def parents(self, node: str) -> Tuple[Tuple[str, float], ...]:
        """``(parent, size)`` pairs feeding *node*, in edge order."""
        self.application(node)  # membership check
        return tuple(self._parents[node])

    def children(self, node: str) -> Tuple[Tuple[str, float], ...]:
        """``(child, size)`` pairs consuming *node*'s output, in edge order."""
        self.application(node)  # membership check
        return tuple(self._children[node])

    def roots(self) -> Tuple[str, ...]:
        """Nodes with no parents, in insertion order."""
        return tuple(n for n in self._apps if not self._parents[n])

    def sinks(self) -> Tuple[str, ...]:
        """Nodes with no children, in insertion order."""
        return tuple(n for n in self._apps if not self._children[n])

    def topological_order(self) -> Tuple[str, ...]:
        """A deterministic topological order (Kahn, insertion-order ties)."""
        return self._order

    def _topological_order(self) -> Tuple[str, ...]:
        pending = {n: len(self._parents[n]) for n in self._apps}
        ready = [n for n in self._apps if pending[n] == 0]
        order: List[str] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for child, _ in self._children[node]:
                pending[child] -= 1
                if pending[child] == 0:
                    ready.append(child)
        if len(order) != len(self._apps):
            cyclic = sorted(n for n, deg in pending.items() if deg > 0)
            raise TaskError(f"task graph has a cycle through {cyclic}")
        return tuple(order)

    # -------------------------------------------------------------- serialise

    def to_dict(self) -> dict:
        """A JSON-ready description (checkpoint / golden-scenario support)."""
        return {
            "nodes": [[name, app] for name, app in self._apps.items()],
            "edges": [
                [parent, child, size]
                for parent, pairs in self._children.items()
                for child, size in pairs
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TaskGraph":
        """Rebuild a graph serialised by :meth:`to_dict`."""
        return cls(
            nodes={name: app for name, app in data["nodes"]},
            edges=[(p, c, float(s)) for p, c, s in data["edges"]],
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TaskGraph):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TaskGraph({len(self._apps)} nodes, {self.edge_count} edges, "
            f"roots={list(self.roots())}, sinks={list(self.sinks())})"
        )


def b_levels(graph: TaskGraph, durations: Mapping[str, float]) -> Dict[str, float]:
    """Bottom levels: longest downstream path including the node itself.

    ``b(n) = t(n) + max(b(c) for children c)`` with ``b(sink) = t(sink)``
    — the classic list-scheduling priority.  *durations* maps every node
    to its estimated execution seconds (transfer costs are deliberately
    excluded: b-levels rank urgency before placement is known).
    """
    levels: Dict[str, float] = {}
    for node in reversed(graph.topological_order()):
        try:
            own = float(durations[node])
        except KeyError:
            raise TaskError(f"no duration for node {node!r}") from None
        tail = max((levels[c] for c, _ in graph.children(node)), default=0.0)
        levels[node] = own + tail
    return levels


def _cycled(values: Sequence, index: int):
    return values[index % len(values)]


def fork_join(
    apps: Sequence[str], *, width: int, output_size: float = 1.0
) -> TaskGraph:
    """``source -> branch_0..branch_{w-1} -> sink`` — the parameter sweep.

    Applications cycle through *apps* in node order; every edge carries
    *output_size* units.
    """
    if width < 1:
        raise TaskError(f"fork_join width must be >= 1, got {width}")
    _check_apps(apps)
    nodes: Dict[str, str] = {"source": _cycled(apps, 0)}
    edges: List[Tuple[str, str, float]] = []
    for i in range(width):
        name = f"branch{i}"
        nodes[name] = _cycled(apps, i + 1)
        edges.append(("source", name, output_size))
    nodes["sink"] = _cycled(apps, width + 1)
    for i in range(width):
        edges.append((f"branch{i}", "sink", output_size))
    return TaskGraph(nodes, edges)


def map_reduce(
    apps: Sequence[str],
    *,
    mappers: int,
    reducers: int,
    output_size: float = 1.0,
) -> TaskGraph:
    """``split -> map_i -> reduce_j -> merge`` with an all-to-all shuffle.

    Every mapper feeds every reducer (the shuffle) — the densest data
    movement of the three families, so it stresses the transfer model and
    the data-gravity term hardest.
    """
    if mappers < 1 or reducers < 1:
        raise TaskError(
            f"map_reduce needs mappers >= 1 and reducers >= 1, "
            f"got {mappers}/{reducers}"
        )
    _check_apps(apps)
    nodes: Dict[str, str] = {"split": _cycled(apps, 0)}
    edges: List[Tuple[str, str, float]] = []
    for i in range(mappers):
        nodes[f"map{i}"] = _cycled(apps, i + 1)
        edges.append(("split", f"map{i}", output_size))
    for j in range(reducers):
        nodes[f"reduce{j}"] = _cycled(apps, mappers + 1 + j)
        for i in range(mappers):
            # the shuffle splits each mapper's output across the reducers
            edges.append((f"map{i}", f"reduce{j}", output_size / reducers))
    nodes["merge"] = _cycled(apps, mappers + reducers + 1)
    for j in range(reducers):
        edges.append((f"reduce{j}", "merge", output_size))
    return TaskGraph(nodes, edges)


def montage(
    apps: Sequence[str], *, width: int, output_size: float = 1.0
) -> TaskGraph:
    """A simplified Montage mosaic: the benchmark's layered diamond.

    ``project_i (w) -> diff_i (w-1, consuming adjacent projections) ->
    fit (1) -> background_i (w, consuming fit AND project_i) -> add (1)``
    with a ``stage`` root fanning out to the projections so the graph
    stays single-rooted.  Mixes fan-out, pairwise joins, a global
    barrier, and a second fan-out — the least regular of the families.
    """
    if width < 2:
        raise TaskError(f"montage width must be >= 2, got {width}")
    _check_apps(apps)
    nodes: Dict[str, str] = {"stage": _cycled(apps, 0)}
    edges: List[Tuple[str, str, float]] = []
    for i in range(width):
        nodes[f"project{i}"] = _cycled(apps, i + 1)
        edges.append(("stage", f"project{i}", output_size))
    for i in range(width - 1):
        name = f"diff{i}"
        nodes[name] = _cycled(apps, width + 1 + i)
        edges.append((f"project{i}", name, output_size))
        edges.append((f"project{i + 1}", name, output_size))
    nodes["fit"] = _cycled(apps, 2 * width)
    for i in range(width - 1):
        edges.append((f"diff{i}", "fit", output_size))
    for i in range(width):
        name = f"background{i}"
        nodes[name] = _cycled(apps, 2 * width + 1 + i)
        edges.append(("fit", name, output_size))
        edges.append((f"project{i}", name, output_size))
    nodes["add"] = _cycled(apps, 3 * width + 1)
    for i in range(width):
        edges.append((f"background{i}", "add", output_size))
    return TaskGraph(nodes, edges)


def _check_apps(apps: Sequence[str]) -> None:
    if not apps:
        raise TaskError("apps must be non-empty")


#: The generator families by scenario-facing name.
WORKFLOW_SHAPES = ("fork-join", "map-reduce", "montage")
