"""Task and request models (eqs. 3–5).

A :class:`TaskRequest` is what a user submits through the portal (Fig. 6):
an application (binary + PACE model), an execution-environment requirement,
a deadline δ, and contact information.  A :class:`Task` is the scheduler's
stateful view of one accepted request: it carries the unique id assigned by
task management (§2.2), the allocation ρ_j and start time τ_j once
scheduled, and a validated lifecycle.

Lifecycle::

    SUBMITTED ──> QUEUED ──> RUNNING ──> COMPLETED
        │            │          │
        └────────────┴──────────┴──────> REJECTED / CANCELLED

(``RUNNING -> CANCELLED`` covers in-flight kills: a workflow ancestor
failing permanently, or an operator tearing down a churn-killed agent's
work.)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import TaskError, TaskStateError
from repro.pace.application import ApplicationModel
from repro.utils.validation import check_non_negative

__all__ = ["Environment", "TaskState", "WorkflowBinding", "TaskRequest", "Task"]


class Environment(str, enum.Enum):
    """Application execution environments supported by a local scheduler (§3.2)."""

    MPI = "mpi"
    PVM = "pvm"
    TEST = "test"

    @classmethod
    def parse(cls, text: str) -> "Environment":
        """Parse an environment name as it appears in the XML templates."""
        try:
            return cls(text.strip().lower())
        except ValueError:
            raise TaskError(f"unknown execution environment {text!r}") from None


class TaskState(enum.Enum):
    """Lifecycle states of a :class:`Task`."""

    SUBMITTED = enum.auto()
    QUEUED = enum.auto()
    RUNNING = enum.auto()
    COMPLETED = enum.auto()
    REJECTED = enum.auto()
    CANCELLED = enum.auto()


_ALLOWED_TRANSITIONS = {
    TaskState.SUBMITTED: {TaskState.QUEUED, TaskState.REJECTED, TaskState.CANCELLED},
    TaskState.QUEUED: {TaskState.RUNNING, TaskState.CANCELLED},
    TaskState.RUNNING: {TaskState.COMPLETED, TaskState.CANCELLED},
    TaskState.COMPLETED: set(),
    TaskState.REJECTED: set(),
    TaskState.CANCELLED: set(),
}


@dataclass(frozen=True)
class WorkflowBinding:
    """Ties one :class:`TaskRequest` to a node of a task graph.

    Carried on the request so every layer (discovery, scheduling,
    dispatch gating) can see the task's workflow context without a side
    channel:

    ``workflow_id`` / ``node``
        Which graph this task belongs to and which node it realises.
    ``priority``
        The node's b-level (critical-path length to the sink, seconds).
        Precedence-aware runs stamp real b-levels; the naive baseline
        stamps 0.0 everywhere, turning every priority-keyed stable sort
        into a no-op.
    ``inputs``
        One ``(parent_node, source_resource, size)`` triple per inbound
        edge.  ``source_resource`` names the cluster holding the
        parent's output; the empty string marks a parent that is still
        in flight on the *same* cluster (eager release), where the
        dependency is enforced as a scheduler precedence constraint
        instead of a transfer.
    """

    workflow_id: int
    node: str
    priority: float = 0.0
    inputs: Tuple[Tuple[str, str, float], ...] = ()


@dataclass(frozen=True)
class TaskRequest:
    """A user's execution request (Fig. 6).

    Parameters
    ----------
    application:
        The PACE application model σ_r shipped with the request.
    environment:
        Required execution environment (mpi / pvm / test).
    deadline:
        Absolute virtual time δ_r by which execution must complete.
    submit_time:
        Virtual time the request entered the system.
    email:
        Contact address results are posted to.
    origin:
        Name of the agent the request first arrived at (for tracing
        dispatch decisions in the experiments).
    workflow:
        Optional :class:`WorkflowBinding` when this request realises a
        task-graph node; ``None`` (the default) is an ordinary
        independent task and leaves every code path byte-identical to
        the pre-workflow system.
    """

    application: ApplicationModel
    environment: Environment
    deadline: float
    submit_time: float = 0.0
    email: str = "user@example.org"
    origin: str = ""
    workflow: Optional[WorkflowBinding] = None

    def __post_init__(self) -> None:
        check_non_negative(self.submit_time, "submit_time")
        if self.deadline <= self.submit_time:
            raise TaskError(
                f"deadline {self.deadline} must be after submit time {self.submit_time}"
            )

    @property
    def relative_deadline(self) -> float:
        """Seconds between submission and deadline."""
        return self.deadline - self.submit_time


class Task:
    """The scheduler-side record of one accepted request (T_j of eq. 3)."""

    def __init__(self, task_id: int, request: TaskRequest) -> None:
        if task_id < 0:
            raise TaskError(f"task_id must be >= 0, got {task_id}")
        self._task_id = task_id
        self._request = request
        self._state = TaskState.SUBMITTED
        self._allocated_nodes: Optional[Tuple[int, ...]] = None
        self._start_time: Optional[float] = None
        self._completion_time: Optional[float] = None
        self._resource_name: Optional[str] = None

    # ------------------------------------------------------------------ access

    @property
    def task_id(self) -> int:
        """Unique id assigned by task management."""
        return self._task_id

    @property
    def request(self) -> TaskRequest:
        """The originating user request."""
        return self._request

    @property
    def application(self) -> ApplicationModel:
        """The application model σ_j."""
        return self._request.application

    @property
    def deadline(self) -> float:
        """Absolute deadline δ_j."""
        return self._request.deadline

    @property
    def state(self) -> TaskState:
        """Current lifecycle state."""
        return self._state

    @property
    def allocated_nodes(self) -> Optional[Tuple[int, ...]]:
        """Node ids of the allocation ρ_j (set when execution starts)."""
        return self._allocated_nodes

    @property
    def start_time(self) -> Optional[float]:
        """Execution start τ_j (set when execution starts)."""
        return self._start_time

    @property
    def completion_time(self) -> Optional[float]:
        """Completion η_j (set when execution completes)."""
        return self._completion_time

    @property
    def resource_name(self) -> Optional[str]:
        """Name of the resource the task ran on (set when execution starts)."""
        return self._resource_name

    @property
    def advance_time(self) -> Optional[float]:
        """``δ_j − η_j``: positive when the deadline was met (eq. 11 term)."""
        if self._completion_time is None:
            return None
        return self._request.deadline - self._completion_time

    # -------------------------------------------------------------- lifecycle

    def _transition(self, new_state: TaskState) -> None:
        if new_state not in _ALLOWED_TRANSITIONS[self._state]:
            raise TaskStateError(
                f"task {self._task_id}: illegal transition "
                f"{self._state.name} -> {new_state.name}"
            )
        self._state = new_state

    def mark_queued(self) -> None:
        """Accept the task into a scheduler's queue."""
        self._transition(TaskState.QUEUED)

    def mark_running(
        self, start_time: float, node_ids: Tuple[int, ...], resource_name: str
    ) -> None:
        """Record execution start with its allocation."""
        if len(node_ids) == 0:
            raise TaskError(f"task {self._task_id}: allocation must be non-empty")
        if len(set(node_ids)) != len(node_ids):
            raise TaskError(f"task {self._task_id}: allocation contains duplicates")
        self._transition(TaskState.RUNNING)
        self._start_time = float(start_time)
        self._allocated_nodes = tuple(node_ids)
        self._resource_name = resource_name

    def mark_completed(self, completion_time: float) -> None:
        """Record execution completion η_j."""
        if self._state is TaskState.RUNNING:
            assert self._start_time is not None  # RUNNING implies a start time
            if completion_time < self._start_time:
                raise TaskError(
                    f"task {self._task_id}: completion {completion_time} before "
                    f"start {self._start_time}"
                )
        self._transition(TaskState.COMPLETED)
        self._completion_time = float(completion_time)

    def mark_rejected(self) -> None:
        """Reject a submitted task (strict discovery mode)."""
        self._transition(TaskState.REJECTED)

    def mark_cancelled(self) -> None:
        """Cancel a task — queued, submitted, or already running."""
        self._transition(TaskState.CANCELLED)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Task(id={self._task_id}, app={self.application.name!r}, "
            f"state={self._state.name}, deadline={self.deadline:.1f})"
        )
