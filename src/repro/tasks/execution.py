"""The task-execution module (§2.2), in virtual time.

"Task execution ... is responsible for executing the program associated
with a task on a scheduled list of processors."  The paper's experiments
run in **test mode**: "tasks are not actually executed and the predictive
application execution times are scheduled and assumed to be accurate."

:class:`ExecutionEngine` reproduces that: launching a task books its
predicted duration against the allocated nodes on the simulation clock and
fires a completion callback when the virtual interval elapses.  A
*simulated* mode perturbs the actual duration with log-normal noise while
schedules are still built from the unperturbed predictions — the substrate
for the prediction-accuracy ablation.

A resource-level **background-load profile** models competing work from
outside the grid (the dynamic behaviour the paper's static PACE resource
models ignore): a task launched while the profile reads load ℓ runs
``(1 + ℓ)×`` slower.  The NWS-substitute forecasting extension
(:mod:`repro.pace.forecast`) exists to predict exactly this effect.

Every launch appends a :class:`BusyInterval` per node; the metrics layer
integrates these into utilisation (eq. 12).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import TaskError
from repro.pace.evaluation import EvaluationEngine
from repro.pace.resource import ResourceModel
from repro.sim.engine import Engine
from repro.sim.events import EventHandle, Priority
from repro.tasks.task import Task

__all__ = ["BusyInterval", "ExecutionEngine", "ExecutionMode"]


class ExecutionMode:
    """Execution modes supported by the engine."""

    TEST = "test"          # predicted duration, exactly (the paper's mode)
    SIMULATED = "simulated"  # predicted duration × log-normal noise


@dataclass(frozen=True)
class BusyInterval:
    """One node's occupation by one task: ``[start, end)`` on ``node_id``."""

    node_id: int
    start: float
    end: float
    task_id: int

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise TaskError(
                f"busy interval end {self.end} before start {self.start}"
            )

    @property
    def duration(self) -> float:
        """Length of the interval in seconds."""
        return self.end - self.start


class ExecutionEngine:
    """Runs tasks on a resource's nodes in virtual time.

    Parameters
    ----------
    sim:
        The discrete-event engine supplying the virtual clock.
    resource:
        The local resource whose nodes tasks run on.
    evaluator:
        PACE evaluation engine used for (true) execution durations.
    mode:
        :data:`ExecutionMode.TEST` (default, the paper's setting) or
        :data:`ExecutionMode.SIMULATED`.
    runtime_noise:
        Log-normal σ of actual-vs-predicted runtime in simulated mode.
    rng:
        Random generator for simulated mode.
    """

    def __init__(
        self,
        sim: Engine,
        resource: ResourceModel,
        evaluator: EvaluationEngine,
        *,
        mode: str = ExecutionMode.TEST,
        runtime_noise: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        load_profile: Optional[Callable[[float], float]] = None,
    ) -> None:
        if mode not in (ExecutionMode.TEST, ExecutionMode.SIMULATED):
            raise TaskError(f"unknown execution mode {mode!r}")
        if mode == ExecutionMode.SIMULATED and runtime_noise > 0 and rng is None:
            raise TaskError("rng is required for simulated mode with noise")
        if runtime_noise < 0:
            raise TaskError(f"runtime_noise must be >= 0, got {runtime_noise}")
        self._sim = sim
        self._resource = resource
        self._evaluator = evaluator
        self._mode = mode
        self._runtime_noise = float(runtime_noise)
        self._rng = rng
        self._load_profile = load_profile
        # node id -> virtual time it becomes free (0 = free now)
        self._node_free_at: Dict[int, float] = {n.node_id: 0.0 for n in resource.nodes}
        self._busy_intervals: List[BusyInterval] = []
        self._running: Dict[int, Task] = {}
        self._completed: List[Task] = []
        self._completion_listeners: List[Callable[[Task], None]] = []
        # task id -> its pending complete-task event (checkpoint support).
        self._completion_handles: Dict[int, EventHandle] = {}

    # ------------------------------------------------------------------ state

    @property
    def sim(self) -> Engine:
        """The discrete-event engine supplying the virtual clock."""
        return self._sim

    @property
    def resource(self) -> ResourceModel:
        """The resource tasks execute on."""
        return self._resource

    @property
    def mode(self) -> str:
        """The execution mode."""
        return self._mode

    @property
    def busy_intervals(self) -> List[BusyInterval]:
        """All booked node occupations so far (copy)."""
        return list(self._busy_intervals)

    @property
    def running_tasks(self) -> List[Task]:
        """Tasks currently executing."""
        return list(self._running.values())

    @property
    def completed_tasks(self) -> List[Task]:
        """Tasks that have completed, in completion order."""
        return list(self._completed)

    def node_free_at(self, node_id: int) -> float:
        """Virtual time node *node_id* finishes its current booking."""
        try:
            return self._node_free_at[node_id]
        except KeyError:
            raise TaskError(
                f"resource {self._resource.name!r} has no node {node_id}"
            ) from None

    def free_nodes(self, at_time: Optional[float] = None) -> List[int]:
        """Ids of nodes free at *at_time* (default: now)."""
        t = self._sim.now if at_time is None else at_time
        return [nid for nid, free in self._node_free_at.items() if free <= t]

    def earliest_all_free(self, node_ids: Sequence[int]) -> float:
        """Earliest time all of *node_ids* are simultaneously free."""
        if not node_ids:
            raise TaskError("node_ids must be non-empty")
        return max(self.node_free_at(nid) for nid in node_ids)

    def on_completion(self, listener: Callable[[Task], None]) -> None:
        """Register a callback fired when any task completes."""
        self._completion_listeners.append(listener)

    # ----------------------------------------------------------------- launch

    def launch(self, task: Task, node_ids: Tuple[int, ...]) -> float:
        """Start *task* now on *node_ids*; returns the completion time.

        All allocated nodes must be free at the current instant — the
        scheduler only dispatches when its schedule says the allocation is
        available ("the allocated nodes all begin to execute the task in
        unison", §2.1).
        """
        now = self._sim.now
        for nid in node_ids:
            if self.node_free_at(nid) > now:
                raise TaskError(
                    f"cannot launch task {task.task_id}: node {nid} busy until "
                    f"{self._node_free_at[nid]:.3f} (now {now:.3f})"
                )
        duration = self._duration(task, node_ids)
        completion = now + duration
        task.mark_running(now, tuple(node_ids), self._resource.name)
        self._running[task.task_id] = task
        for nid in node_ids:
            self._node_free_at[nid] = completion
            self._busy_intervals.append(
                BusyInterval(nid, now, completion, task.task_id)
            )
        self._completion_handles[task.task_id] = self._sim.schedule(
            completion,
            lambda: self._complete(task),
            priority=Priority.COMPLETION,
            label=f"complete-task-{task.task_id}",
        )
        return completion

    def _duration(self, task: Task, node_ids: Tuple[int, ...]) -> float:
        nodes = self._resource.subset(node_ids)
        slowest = max(nodes, key=lambda n: n.platform.speed_factor).platform
        true = self._evaluator.true_time(task.application, len(nodes), slowest)
        if self._load_profile is not None:
            load = float(self._load_profile(self._sim.now))
            if load < 0:
                raise TaskError(f"load profile returned {load} at t={self._sim.now}")
            true *= 1.0 + load
        if self._mode == ExecutionMode.TEST or self._runtime_noise == 0.0:
            return true
        assert self._rng is not None  # guarded in __init__
        return true * float(np.exp(self._rng.normal(0.0, self._runtime_noise)))

    def _complete(self, task: Task) -> None:
        task.mark_completed(self._sim.now)
        del self._running[task.task_id]
        self._completion_handles.pop(task.task_id, None)
        self._completed.append(task)
        for listener in self._completion_listeners:
            listener(task)

    # ----------------------------------------------------------------- cancel

    def cancel(self, task_id: int) -> Task:
        """Kill a *running* task now; its nodes free at the current instant.

        The pending completion event is cancelled, the task transitions
        ``RUNNING -> CANCELLED``, and each allocated node's booking is
        truncated to the kill time so the capacity is reusable
        immediately.  Completion listeners do **not** fire — the caller
        (workflow failure propagation, operator teardown) owns the
        follow-up accounting.
        """
        try:
            task = self._running.pop(task_id)
        except KeyError:
            raise TaskError(f"task {task_id} is not running") from None
        handle = self._completion_handles.pop(task_id, None)
        if handle is not None:
            handle.cancel()
        now = self._sim.now
        task.mark_cancelled()
        assert task.allocated_nodes is not None
        allocated = set(task.allocated_nodes)
        for nid in allocated:
            self._node_free_at[nid] = min(self._node_free_at[nid], now)
        self._busy_intervals = [
            b
            if b.task_id != task_id
            else BusyInterval(b.node_id, b.start, min(b.end, max(b.start, now)), task_id)
            for b in self._busy_intervals
        ]
        return task

    # ------------------------------------------------------------- checkpoint

    def snapshot_state(self) -> dict:
        """Bookings, running/completed sets, and pending completion events.

        Tasks are referenced by id — the owning scheduler serialises the
        task objects once and hands the table back on restore, preserving
        the identity sharing between queue, executor, and agent maps.
        """
        return {
            "node_free_at": {
                str(nid): t for nid, t in sorted(self._node_free_at.items())
            },
            "busy_intervals": [
                [b.node_id, b.start, b.end, b.task_id] for b in self._busy_intervals
            ],
            "running": sorted(self._running),
            "completed": [t.task_id for t in self._completed],
            "completion_events": {
                str(tid): handle.descriptor()
                for tid, handle in sorted(self._completion_handles.items())
            },
        }

    def restore_state(self, state: dict, tasks: Dict[int, Task]) -> None:
        """Rebuild bookings and re-create pending completion events."""
        self._node_free_at = {
            int(nid): float(t) for nid, t in state["node_free_at"].items()
        }
        self._busy_intervals = [
            BusyInterval(int(n), float(s), float(e), int(tid))
            for n, s, e, tid in state["busy_intervals"]
        ]
        self._running = {int(tid): tasks[int(tid)] for tid in state["running"]}
        self._completed = [tasks[int(tid)] for tid in state["completed"]]
        for handle in self._completion_handles.values():
            handle.cancel()
        self._completion_handles = {}
        for tid, descriptor in state["completion_events"].items():
            task = tasks[int(tid)]
            self._completion_handles[int(tid)] = self._sim.restore_event(
                descriptor, lambda t=task: self._complete(t)
            )
