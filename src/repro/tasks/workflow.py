"""Running task graphs through the grid: the workflow coordinator.

The grid itself stays a pure independent-task system — agents route one
request at a time, schedulers optimise one queue.  The
:class:`WorkflowCoordinator` sits beside the :class:`~repro.agents.portal.
UserPortal` and turns a static :class:`~repro.tasks.graph.TaskGraph` into
a stream of requests, each carrying a
:class:`~repro.tasks.task.WorkflowBinding` so the layers below can gate
dispatch on data arrival (see docs/workflows.md).

Two release modes:

``staged`` (the default)
    A node is submitted only once every parent has completed, and its
    binding's inputs name the *actual* resource each parent ran on — the
    receiving cluster stages remote outputs in through the transport
    (``size / bandwidth`` seconds per edge) and the scheduler holds the
    task behind a ``dag.ready`` gate until the last transfer lands.
    Works across clusters; this is the mode Experiment 7 measures.

``eager``
    The whole graph is submitted up-front with empty (``""``) input
    sources: every parent/child dependency becomes an in-scheduler
    precedence constraint, the GA optimises across the *entire* graph at
    once, and no data moves.  Only sound when every node lands on one
    cluster, so it requires a ``local_only`` target and raises
    :class:`~repro.errors.ValidationError` otherwise.

Failure propagation: a node that fails (routing rejection, crashed
cluster) permanently starves its descendants, so the coordinator cancels
them — unreleased nodes are simply never submitted; released ones are
cancelled in the scheduler (``RUNNING -> CANCELLED`` included) and their
portal requests resolved with synthetic failures so runs terminate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.errors import TaskError, ValidationError
from repro.obs.records import DagRelease
from repro.tasks.graph import TaskGraph, b_levels
from repro.tasks.task import Environment, TaskState, WorkflowBinding

__all__ = ["WorkflowRun", "WorkflowCoordinator"]

#: Minimum deadline slack stamped on a node released after its own
#: deadline already passed (requests must have deadline > submit time;
#: the grid's best-effort mode still executes such hopeless tasks).
_LATE_RELEASE_SLACK = 1e-6


@dataclass
class WorkflowRun:
    """One workflow instance's run-time state."""

    workflow_id: int
    graph: TaskGraph
    target: object  # anything portal.submit accepts (agent / server)
    deadline: float
    mode: str
    environment: Environment
    #: b-level per node (zeros in the precedence-naive baseline).
    priorities: Dict[str, float]
    #: per-node absolute deadline (all equal to ``deadline`` when naive).
    node_deadlines: Dict[str, float]
    #: node -> portal request id, for released nodes.
    released: Dict[str, int] = field(default_factory=dict)
    #: node -> resource name it completed on (successes only).
    sources: Dict[str, str] = field(default_factory=dict)
    #: nodes that failed, or were cancelled by an ancestor's failure.
    failed: Set[str] = field(default_factory=set)

    @property
    def resolved(self) -> bool:
        """Every node either completed successfully or failed/cancelled."""
        done = len(self.sources) + len(self.failed)
        return done >= len(self.graph.node_names)

    @property
    def succeeded(self) -> bool:
        """All nodes completed successfully."""
        return len(self.sources) == len(self.graph.node_names)

    def completion_time(self, results: Mapping[int, object]) -> Optional[float]:
        """Latest sink completion, or ``None`` while unresolved/failed."""
        if not self.succeeded:
            return None
        times: List[float] = []
        for node in self.graph.sinks():
            result = results.get(self.released[node])
            if result is None:
                return None
            times.append(float(result.completion_time))
        return max(times)


class WorkflowCoordinator:
    """Releases task-graph nodes through a portal as their parents finish.

    Parameters
    ----------
    portal:
        The :class:`~repro.agents.portal.UserPortal` requests go through;
        the coordinator registers itself as a result listener.
    applications:
        ``spec name -> ApplicationModel`` for the graph nodes' bindings.
    tracer:
        Optional trace sink for ``dag.release`` records.
    """

    def __init__(self, portal, applications: Mapping[str, object], *, tracer=None) -> None:
        self._portal = portal
        self._applications = dict(applications)
        self._tracer = tracer
        self._next_workflow_id = 0
        self._runs: Dict[int, WorkflowRun] = {}
        # portal request id -> (workflow id, node)
        self._request_index: Dict[int, Tuple[int, str]] = {}
        portal.add_result_listener(self._on_result)

    # ------------------------------------------------------------------ state

    @property
    def runs(self) -> Dict[int, WorkflowRun]:
        """All workflow runs by id (live view)."""
        return self._runs

    def run(self, workflow_id: int) -> WorkflowRun:
        """The run for *workflow_id*."""
        try:
            return self._runs[workflow_id]
        except KeyError:
            raise TaskError(f"unknown workflow {workflow_id}") from None

    @property
    def all_resolved(self) -> bool:
        """Whether every started workflow has resolved every node."""
        return all(run.resolved for run in self._runs.values())

    # ------------------------------------------------------------------ start

    def start_workflow(
        self,
        graph: TaskGraph,
        target,
        deadline: float,
        *,
        mode: str = "staged",
        environment: Environment = Environment.TEST,
        durations: Optional[Mapping[str, float]] = None,
    ) -> int:
        """Begin running *graph* against *target*; returns the workflow id.

        *deadline* is the absolute deadline of the whole graph.  With
        *durations* (estimated seconds per node) the coordinator stamps
        precedence-aware metadata: each binding's priority is the node's
        b-level and its request deadline is ``deadline - (b_level -
        t_node)`` — the share of the critical path that must remain when
        the node finishes.  Without durations every node gets priority
        ``0.0`` and the full graph deadline (the precedence-naive
        baseline).
        """
        if mode not in ("staged", "eager"):
            raise ValidationError(f"unknown workflow mode {mode!r}")
        for node in graph.node_names:
            app = graph.application(node)
            if app not in self._applications:
                raise ValidationError(
                    f"node {node!r} binds unknown application {app!r}"
                )
        if mode == "eager":
            config = getattr(target, "_discovery_config", None)
            if config is not None and not config.local_only:
                raise ValidationError(
                    "eager workflows require a single-cluster (local_only) "
                    "target: precedence constraints do not cross schedulers"
                )
        if durations is not None:
            levels = b_levels(graph, durations)
            priorities = {n: levels[n] for n in graph.node_names}
            node_deadlines = {
                n: deadline - (levels[n] - float(durations[n]))
                for n in graph.node_names
            }
        else:
            priorities = {n: 0.0 for n in graph.node_names}
            node_deadlines = {n: deadline for n in graph.node_names}
        workflow_id = self._next_workflow_id
        self._next_workflow_id += 1
        run = WorkflowRun(
            workflow_id=workflow_id,
            graph=graph,
            target=target,
            deadline=float(deadline),
            mode=mode,
            environment=environment,
            priorities=priorities,
            node_deadlines=node_deadlines,
        )
        self._runs[workflow_id] = run
        if mode == "eager":
            # Whole graph up-front, dependencies as "" (co-located) inputs.
            for node in graph.topological_order():
                self._release(run, node)
        else:
            for node in graph.roots():
                self._release(run, node)
        return workflow_id

    # ---------------------------------------------------------------- release

    def _release(self, run: WorkflowRun, node: str) -> None:
        """Submit one node, its binding carrying resolved input sources."""
        if run.mode == "eager":
            inputs = tuple(
                (parent, "", size) for parent, size in run.graph.parents(node)
            )
        else:
            inputs = tuple(
                (parent, run.sources.get(parent, ""), size)
                for parent, size in run.graph.parents(node)
            )
        binding = WorkflowBinding(
            workflow_id=run.workflow_id,
            node=node,
            priority=run.priorities[node],
            inputs=inputs,
        )
        now = self._portal._sim.now
        deadline = max(
            run.node_deadlines[node], now + _LATE_RELEASE_SLACK
        )
        request_id = self._portal.submit(
            run.target,
            self._applications[run.graph.application(node)],
            run.environment,
            deadline,
            workflow=binding,
        )
        run.released[node] = request_id
        self._request_index[request_id] = (run.workflow_id, node)
        if self._tracer is not None:
            self._tracer.emit(
                DagRelease(
                    t=self._portal._sim.now,
                    workflow=run.workflow_id,
                    node=node,
                    request_id=request_id,
                )
            )

    def _on_result(self, result) -> None:
        key = self._request_index.get(result.request_id)
        if key is None:
            return  # an independent task's result
        workflow_id, node = key
        run = self._runs[workflow_id]
        if node in run.sources or node in run.failed:
            return  # duplicate/late result for an already-resolved node
        if not result.success:
            run.failed.add(node)
            self._propagate_failure(run, node)
            return
        run.sources[node] = result.resource_name or ""
        if run.mode == "eager":
            return  # everything already submitted
        for child, _size in run.graph.children(node):
            if child in run.released or child in run.failed:
                continue
            if all(p in run.sources for p, _ in run.graph.parents(child)):
                self._release(run, child)

    # ---------------------------------------------------------------- failure

    def _propagate_failure(self, run: WorkflowRun, node: str) -> None:
        """Cancel every descendant of the failed *node*.

        Unreleased descendants are marked failed and never submitted.
        Released ones (eager mode submits everything up-front) are
        cancelled in the target's scheduler — covering the
        ``RUNNING -> CANCELLED`` transition — and their portal requests
        resolved with synthetic failure results so the run terminates.
        """
        scheduler = getattr(run.target, "scheduler", None)
        for descendant in run.graph.topological_order():
            if descendant in run.sources or descendant in run.failed:
                continue
            parents = run.graph.parents(descendant)
            if not parents:
                continue
            if not any(p in run.failed for p, _ in parents):
                continue
            run.failed.add(descendant)
            request_id = run.released.get(descendant)
            if request_id is None:
                continue  # staged mode: never submitted, nothing to kill
            if scheduler is not None:
                task_id = scheduler.workflow_task_id(
                    run.workflow_id, descendant
                )
                task = (
                    scheduler.task(task_id) if task_id is not None else None
                )
                if task is not None and task.state in (
                    TaskState.QUEUED,
                    TaskState.RUNNING,
                ):
                    scheduler.cancel_task(task_id)
            if self._portal.result(request_id) is None:
                self._portal._record_result(
                    self._portal._failure_result(request_id), synthetic=True
                )

    # ------------------------------------------------------------- checkpoint

    def snapshot_state(self) -> dict:
        """JSON-ready coordinator state (checkpoint support).

        Targets are recorded by name; :meth:`restore_state` resolves them
        against the rebuilt grid's agent directory.
        """
        return {
            "next_workflow_id": self._next_workflow_id,
            "runs": [
                {
                    "workflow_id": run.workflow_id,
                    "graph": run.graph.to_dict(),
                    "target": getattr(run.target, "name", ""),
                    "deadline": run.deadline,
                    "mode": run.mode,
                    "environment": run.environment.value,
                    "priorities": [
                        [n, run.priorities[n]] for n in run.graph.node_names
                    ],
                    "node_deadlines": [
                        [n, run.node_deadlines[n]] for n in run.graph.node_names
                    ],
                    "released": sorted(run.released.items()),
                    "sources": sorted(run.sources.items()),
                    "failed": sorted(run.failed),
                }
                for _, run in sorted(self._runs.items())
            ],
        }

    def restore_state(self, state: dict, *, targets: Mapping[str, object]) -> None:
        """Rebuild runs from a :meth:`snapshot_state` dict.

        *targets* maps target names to their rebuilt objects (e.g.
        ``system.agents``).
        """
        self._next_workflow_id = int(state["next_workflow_id"])
        self._runs = {}
        self._request_index = {}
        for raw in state["runs"]:
            workflow_id = int(raw["workflow_id"])
            run = WorkflowRun(
                workflow_id=workflow_id,
                graph=TaskGraph.from_dict(raw["graph"]),
                target=targets[raw["target"]],
                deadline=float(raw["deadline"]),
                mode=raw["mode"],
                environment=Environment(raw["environment"]),
                priorities={n: float(p) for n, p in raw["priorities"]},
                node_deadlines={n: float(d) for n, d in raw["node_deadlines"]},
                released={n: int(r) for n, r in raw["released"]},
                sources={n: s for n, s in raw["sources"]},
                failed=set(raw["failed"]),
            )
            self._runs[workflow_id] = run
            for node, request_id in run.released.items():
                self._request_index[request_id] = (workflow_id, node)
