"""Task model, task-management queue, and virtual-time execution (§2.2)."""

from repro.tasks.execution import BusyInterval, ExecutionEngine, ExecutionMode
from repro.tasks.queue import TaskQueue
from repro.tasks.task import Environment, Task, TaskRequest, TaskState

__all__ = [
    "BusyInterval",
    "ExecutionEngine",
    "ExecutionMode",
    "TaskQueue",
    "Environment",
    "Task",
    "TaskRequest",
    "TaskState",
]
