"""Task model, task-management queue, and virtual-time execution (§2.2)."""

from repro.tasks.execution import BusyInterval, ExecutionEngine, ExecutionMode
from repro.tasks.graph import (
    WORKFLOW_SHAPES,
    TaskGraph,
    b_levels,
    fork_join,
    map_reduce,
    montage,
)
from repro.tasks.queue import TaskQueue
from repro.tasks.task import (
    Environment,
    Task,
    TaskRequest,
    TaskState,
    WorkflowBinding,
)
from repro.tasks.workflow import WorkflowCoordinator, WorkflowRun

__all__ = [
    "BusyInterval",
    "ExecutionEngine",
    "ExecutionMode",
    "TaskQueue",
    "Environment",
    "Task",
    "TaskRequest",
    "TaskState",
    "WorkflowBinding",
    "TaskGraph",
    "b_levels",
    "fork_join",
    "map_reduce",
    "montage",
    "WORKFLOW_SHAPES",
    "WorkflowCoordinator",
    "WorkflowRun",
]
