"""The task-management queue (§2.2).

"Requests are passed to the task management module where they queue for
scheduling and execution.  Each task is given a unique identification number
and awaits the attention of the GA scheduler.  Task management also
interfaces with the operations on the task queue, including adding,
deleting or inserting tasks.  The task queue is regarded by the GA
scheduling as the optimisation set of tasks T."

The queue preserves arrival order (FIFO scheduling iterates it directly),
assigns monotonically increasing ids, and notifies listeners on change so
the GA can repair its population incrementally.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional

from repro.errors import TaskError
from repro.tasks.task import Task, TaskRequest

__all__ = ["TaskQueue"]


class TaskQueue:
    """An ordered queue of tasks awaiting scheduling — the set T of eq. (3)."""

    def __init__(self) -> None:
        self._tasks: List[Task] = []
        self._by_id: Dict[int, Task] = {}
        self._next_id = 0
        self._listeners: List[Callable[[str, Task], None]] = []

    # ---------------------------------------------------------------- listing

    @property
    def tasks(self) -> List[Task]:
        """The queued tasks in arrival order (copy; mutation-safe)."""
        return list(self._tasks)

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(list(self._tasks))

    def __contains__(self, task_id: int) -> bool:
        return task_id in self._by_id

    @property
    def is_empty(self) -> bool:
        """Whether no tasks are queued."""
        return not self._tasks

    # ---------------------------------------------------------------- changes

    def subscribe(self, listener: Callable[[str, Task], None]) -> None:
        """Register a change listener called as ``listener(op, task)``.

        ``op`` is ``"add"`` or ``"remove"``.  The GA scheduler subscribes to
        repair its population when the optimisation set changes.
        """
        self._listeners.append(listener)

    def _notify(self, op: str, task: Task) -> None:
        for listener in self._listeners:
            listener(op, task)

    def submit(self, request: TaskRequest) -> Task:
        """Accept a request: allocate an id, enqueue, return the new task."""
        task = Task(self._next_id, request)
        self._next_id += 1
        task.mark_queued()
        self._tasks.append(task)
        self._by_id[task.task_id] = task
        self._notify("add", task)
        return task

    def insert(self, request: TaskRequest, position: int) -> Task:
        """Insert a request at *position* in arrival order (§2.2 'inserting')."""
        if not (0 <= position <= len(self._tasks)):
            raise TaskError(
                f"insert position {position} out of range 0..{len(self._tasks)}"
            )
        task = Task(self._next_id, request)
        self._next_id += 1
        task.mark_queued()
        self._tasks.insert(position, task)
        self._by_id[task.task_id] = task
        self._notify("add", task)
        return task

    def get(self, task_id: int) -> Task:
        """Look up a queued task by id."""
        try:
            return self._by_id[task_id]
        except KeyError:
            raise TaskError(f"no queued task with id {task_id}") from None

    def remove(self, task_id: int) -> Task:
        """Remove a task from the queue (it keeps its lifecycle state).

        "Once a task begins execution, it is removed from the task set T"
        (§2.2) — the execution engine calls this on dispatch; cancellation
        uses it too.
        """
        task = self.get(task_id)
        self._tasks.remove(task)
        del self._by_id[task_id]
        self._notify("remove", task)
        return task

    def cancel(self, task_id: int) -> Task:
        """Cancel and remove a queued task."""
        task = self.get(task_id)
        task.mark_cancelled()
        self._tasks.remove(task)
        del self._by_id[task_id]
        self._notify("remove", task)
        return task

    def peek_ids(self) -> List[int]:
        """Task ids in arrival order."""
        return [t.task_id for t in self._tasks]

    # ------------------------------------------------------------- checkpoint

    def snapshot_state(self) -> dict:
        """Queue order and the id counter (tasks referenced by id)."""
        return {"order": self.peek_ids(), "next_id": self._next_id}

    def restore_state(self, state: dict, tasks: Dict[int, "Task"]) -> None:
        """Rebuild the queue from the shared task table, without notifying.

        Listeners (the GA) restore their own state separately; firing
        ``add`` notifications here would double-apply the queue contents.
        """
        self._tasks = [tasks[int(tid)] for tid in state["order"]]
        self._by_id = {t.task_id: t for t in self._tasks}
        self._next_id = int(state["next_id"])
