"""Command-line interface: ``python -m repro <command>``.

Commands map one-to-one onto the paper's evaluation artefacts:

* ``table1`` — the seven applications' predicted execution times;
* ``table2`` — the experiment design matrix;
* ``table3`` — run experiments 1–3 and print Table 3 (+ trend checks);
* ``figures`` — run the experiments and print/plot Figures 8–10;
* ``workload`` — inspect the seeded §4.1 request workload;
* ``predict`` — one-off PACE prediction for an application/platform.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.experiments.config import table2_experiments
from repro.experiments.tables import (
    check_paper_trends,
    run_table3,
    table1_rows,
)
from repro.experiments.workload import generate_workload, workload_summary
from repro.metrics.ascii_plot import ascii_line_chart
from repro.metrics.reporting import figure_series, render_figure_series, render_table3
from repro.pace.evaluation import EvaluationEngine
from repro.pace.hardware import DEFAULT_CATALOGUE
from repro.pace.workloads import paper_application_specs
from repro.utils.tables import render_table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Agent-based grid load balancing (Cao et al., IPPS 2003) "
        "— reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print Table 1 (application predictions)")
    sub.add_parser("table2", help="print Table 2 (experiment design)")

    def add_jobs(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument(
            "--jobs", type=int, default=1, metavar="N",
            help="worker processes for the experiment fabric "
            "(1 = sequential; results are seed-identical either way)",
        )

    table3 = sub.add_parser("table3", help="run experiments 1-3, print Table 3")
    table3.add_argument("--requests", type=int, default=600)
    table3.add_argument("--seed", type=int, default=2003)
    table3.add_argument("--json", metavar="PATH",
                        help="also write full results as JSON")
    table3.add_argument("--csv", metavar="PATH",
                        help="also write Table 3 as CSV")
    add_jobs(table3)

    sweep = sub.add_parser(
        "sweep", help="seed-robustness sweep of the paper's conclusions"
    )
    sweep.add_argument("--requests", type=int, default=600)
    sweep.add_argument("--seeds", type=int, nargs="+",
                       default=[2003, 2004, 2005])
    add_jobs(sweep)

    figures = sub.add_parser("figures", help="run experiments, print Figures 8-10")
    figures.add_argument("--requests", type=int, default=600)
    figures.add_argument("--seed", type=int, default=2003)
    figures.add_argument("--charts", action="store_true", help="draw ASCII curves")
    add_jobs(figures)

    exp4 = sub.add_parser(
        "experiment4",
        help="degradation study: case-study workload under loss/churn/jitter",
    )
    exp4.add_argument("--requests", type=int, default=600)
    exp4.add_argument("--seed", type=int, default=2003)
    exp4.add_argument("--loss", type=float, nargs="+",
                      default=[0.0, 0.05, 0.1, 0.2], metavar="P",
                      help="per-message drop probabilities to sweep")
    exp4.add_argument("--churn", type=float, nargs="+", default=[0.0, 0.25],
                      metavar="R",
                      help="fractions of (non-head) agents crashed once")
    exp4.add_argument("--jitter", type=float, default=0.0, metavar="SECONDS",
                      help="max uniform extra latency per message")
    exp4.add_argument("--no-retry", action="store_true",
                      help="run only the fire-and-forget ablation "
                      "(default: resilient protocol plus the ablation)")
    exp4.add_argument("--fault-plan", metavar="PATH",
                      help="JSON FaultPlanSpec replacing the --loss sweep "
                      "(link faults, partitions, ...)")
    exp4.add_argument("--json", metavar="PATH",
                      help="also write the degradation grid as JSON")
    exp4.add_argument("--check", action="store_true",
                      help="exit non-zero unless the robustness invariants "
                      "hold (full completion at zero faults; retries under "
                      "loss; resilient >= ablation everywhere)")

    exp5 = sub.add_parser(
        "experiment5",
        help="availability study: coordinator churn x grey failures, "
        "self-healing hierarchy vs static ablation",
    )
    exp5.add_argument("--requests", type=int, default=600)
    exp5.add_argument("--seed", type=int, default=2003)
    exp5.add_argument("--churn", type=float, nargs="+", default=[0.0, 0.5],
                      metavar="R",
                      help="fractions of coordinators crashed permanently")
    exp5.add_argument("--stragglers", type=int, nargs="+", default=[0, 2],
                      metavar="N",
                      help="numbers of grey (slow, not dead) leaf agents")
    exp5.add_argument("--json", metavar="PATH",
                      help="also write the availability grid as JSON")
    exp5.add_argument("--check", action="store_true",
                      help="exit non-zero unless the healing invariants hold "
                      "(healing strictly beats static on the deadline SLO in "
                      "every churn cell; zero confirmed deaths without a "
                      "crash; every orphan repaired)")

    exp6 = sub.add_parser(
        "experiment6",
        help="global-policy tournament: eq10 vs auction vs reservation "
        "across clean/loss/bursty/churn cells",
    )
    exp6.add_argument("--requests", type=int, default=120)
    exp6.add_argument("--seed", type=int, default=2003)
    exp6.add_argument("--bursty-agents", type=int, default=60, metavar="N",
                      help="grid size of the generated MMPP bursty cell")
    exp6.add_argument("--policies", nargs="+",
                      default=["eq10", "auction", "reservation"],
                      choices=("eq10", "auction", "reservation"),
                      metavar="KIND", help="which global policies to enter")
    exp6.add_argument("--cells", nargs="+",
                      default=["clean", "loss", "bursty", "churn"],
                      choices=("clean", "loss", "bursty", "churn"),
                      metavar="CELL", help="which standing cells to run")
    exp6.add_argument("--json", metavar="PATH",
                      help="also write the tournament grid as JSON")
    exp6.add_argument("--check", action="store_true",
                      help="exit non-zero unless the policy invariants hold "
                      "(eq10 clean cell byte-identical to the seed path; "
                      "every auction settles or times out; no double-booked "
                      "reservation windows; reservations released on "
                      "confirmed death)")

    exp7 = sub.add_parser(
        "experiment7",
        help="DAG workloads: precedence-aware vs precedence-naive "
        "scheduling across graph shapes and arrival processes",
    )
    exp7.add_argument("--workflows", type=int, default=8, metavar="N",
                      help="workflow instances per cell")
    exp7.add_argument("--seed", type=int, default=2003)
    exp7.add_argument("--cells", nargs="+", default=None, metavar="CELL",
                      help="which standing cells to run (default: all; see "
                      "repro.experiments.experiment7.CELLS)")
    exp7.add_argument("--json", metavar="PATH",
                      help="also write the comparison grid as JSON")
    exp7.add_argument("--check", action="store_true",
                      help="exit non-zero unless the workflow invariants "
                      "hold (no task dispatched before its inputs arrived; "
                      "every workflow resolves; aware never loses to naive "
                      "on the deadline SLO and beats it overall)")

    perf = sub.add_parser(
        "perf", help="run the performance benchmark suite, write BENCH_PERF.json"
    )
    perf.add_argument("--output", metavar="PATH", default="BENCH_PERF.json")
    perf.add_argument("--baseline", metavar="PATH", default=None,
                      help="compare against a committed BENCH_PERF.json "
                      "and exit non-zero on >25%% regression")
    perf.add_argument("--jobs", type=int, default=4, metavar="N",
                      help="worker processes for the parallel-speedup benchmark")
    perf.add_argument("--only", action="append", metavar="SUBSTRING",
                      help="run only benchmarks whose name contains this "
                      "substring (repeatable); the written output then holds "
                      "just that subset unless --update is given")
    perf.add_argument("--update", action="store_true",
                      help="rewrite the output file in place: merge fresh "
                      "results over the existing document (benchmarks not "
                      "re-run are carried over, derived ratios recomputed, "
                      "meta refreshed with the current git SHA and machine)")

    trace = sub.add_parser(
        "trace",
        help="run one experiment with structured tracing on and inspect "
        "the resulting record stream",
    )
    trace.add_argument("--requests", type=int, default=12)
    trace.add_argument("--seed", type=int, default=2003)
    trace.add_argument("--experiment", type=int, choices=(1, 2, 3), default=3,
                       help="which Table 2 configuration to trace "
                       "(ignored when --loss/--churn select the degraded runner)")
    trace.add_argument("--loss", type=float, default=0.0, metavar="P",
                       help="per-message drop probability (switches to the "
                       "resilient experiment-4 runner)")
    trace.add_argument("--churn", type=float, default=0.0, metavar="R",
                       help="fraction of non-head agents crashed once "
                       "(switches to the resilient experiment-4 runner)")
    trace.add_argument("--out", metavar="PATH",
                       help="write the canonical JSONL trace to PATH")
    trace.add_argument("--request", type=int, default=None, metavar="ID",
                       help="print the span tree for one request id")
    trace.add_argument("--check", action="store_true",
                       help="run the trace invariant checker; exit non-zero "
                       "on any violation")

    checkpoint = sub.add_parser(
        "checkpoint",
        help="run an experiment for N events, then write a resumable snapshot",
    )
    checkpoint.add_argument("--requests", type=int, default=60)
    checkpoint.add_argument("--seed", type=int, default=2003)
    checkpoint.add_argument("--experiment", type=int, choices=(1, 2, 3), default=3,
                            help="which Table 2 configuration to run "
                            "(ignored when --loss/--churn select the "
                            "degraded runner)")
    checkpoint.add_argument("--loss", type=float, default=0.0, metavar="P",
                            help="per-message drop probability (switches to "
                            "the resilient experiment-4 runner)")
    checkpoint.add_argument("--churn", type=float, default=0.0, metavar="R",
                            help="fraction of non-head agents crashed once "
                            "(switches to the resilient experiment-4 runner)")
    checkpoint.add_argument("--at-step", type=int, default=1000, metavar="N",
                            help="number of simulation events to run before "
                            "snapshotting")
    checkpoint.add_argument("--out", metavar="PATH", required=True,
                            help="snapshot file to write")

    resume = sub.add_parser(
        "resume",
        help="resume a snapshot (experiment, degraded, or soak) to completion",
    )
    resume.add_argument("snapshot", metavar="PATH", help="snapshot file to resume")
    resume.add_argument("--checkpoint-every", type=int, default=None, metavar="N",
                        help="keep re-snapshotting every N events while "
                        "resuming (experiment/degraded kinds)")
    resume.add_argument("--checkpoint-path", metavar="PATH", default=None,
                        help="where the periodic re-snapshots go")

    soak = sub.add_parser(
        "soak",
        help="long-horizon soak run: continuous arrivals, windowed metrics",
    )
    soak.add_argument("--requests", type=int, default=6000)
    soak.add_argument("--seed", type=int, default=2003)
    soak.add_argument("--window", type=float, default=2000.0, metavar="SECONDS",
                      help="width of each metrics window in simulated time")
    soak.add_argument("--checkpoint", metavar="PATH", default=None,
                      help="rewrite a resumable snapshot at every window "
                      "boundary")

    scenario = sub.add_parser(
        "scenario",
        help="generate a parametric scale scenario (grid + workload); "
        "optionally run it",
    )
    scenario.add_argument("--agents", type=int, default=500, metavar="N",
                          help="grid size in agents/clusters (1-5000)")
    scenario.add_argument("--branching", type=int, default=3, metavar="K",
                          help="hierarchy fan-out (complete K-ary tree)")
    scenario.add_argument("--nproc", type=int, default=16, metavar="N",
                          help="processing nodes per cluster")
    scenario.add_argument("--arrival", default="poisson",
                          choices=("uniform", "poisson", "mmpp", "diurnal",
                                   "pareto"),
                          help="arrival process for the request stream")
    scenario.add_argument("--rate", type=float, default=1.0, metavar="R",
                          help="mean arrival rate in requests per virtual "
                          "second")
    scenario.add_argument("--requests", type=int, default=600)
    scenario.add_argument("--seed", type=int, default=2003)
    scenario.add_argument("--deadline-scale", type=float, default=1.0,
                          metavar="F",
                          help="multiplier on every drawn deadline offset")
    scenario.add_argument("--policy", default="fifo", choices=("fifo", "ga"),
                          help="scheduling policy when running the scenario")
    scenario.add_argument("--engine", default="partitioned",
                          choices=("partitioned", "single-heap"),
                          help="event engine to run the scenario on")
    scenario.add_argument("--chaos", default="none",
                          choices=("none", "loss", "coordinator-churn",
                                   "stragglers", "grey-combo"),
                          help="chaos tier folded into the scenario: faults "
                          "+ churn + the robustness stack (ACK/retry and "
                          "self-healing membership)")
    scenario.add_argument("--run", action="store_true",
                          help="run the generated scenario to completion "
                          "(default: only print its shape and fingerprint)")
    scenario.add_argument("--check", action="store_true",
                          help="run with tracing on and the trace invariant "
                          "checker; exit non-zero on any violation "
                          "(implies --run)")

    workload = sub.add_parser("workload", help="inspect the seeded workload")
    workload.add_argument("--requests", type=int, default=600)
    workload.add_argument("--seed", type=int, default=2003)
    workload.add_argument("--head", type=int, default=10, help="show first N items")

    predict = sub.add_parser("predict", help="one-off PACE prediction")
    predict.add_argument("application", choices=sorted(paper_application_specs()))
    predict.add_argument("--platform", default="SGIOrigin2000",
                         choices=DEFAULT_CATALOGUE.names())
    predict.add_argument("--max-nproc", type=int, default=16)
    return parser


def _cmd_table1() -> None:
    headers = ["application", "deadlines"] + [str(k) for k in range(1, 17)]
    rows = [
        [name, f"[{b[0]:.0f},{b[1]:.0f}]"] + [f"{t:.0f}" for t in times]
        for name, b, times in table1_rows()
    ]
    print(render_table(headers, rows,
                       title="Table 1: PACE predictions on SGIOrigin2000 (s)"))


def _cmd_table2() -> None:
    rows = [
        ["FIFO Algorithm", "x", "", ""],
        ["GA Algorithm", "", "x", "x"],
        ["Agent-based Service Discovery", "", "", "x"],
    ]
    print(render_table(["", "1", "2", "3"], rows, title="Table 2: experiment design"))
    for cfg in table2_experiments():
        print(f"  {cfg.name}: policy={cfg.policy.value}, agents={cfg.agents_enabled}")


def _run(requests: int, seed: int, jobs: int = 1):
    print(f"Running experiments 1-3 ({requests} requests, seed {seed}, "
          f"jobs {jobs})...", file=sys.stderr)
    return run_table3(master_seed=seed, request_count=requests, jobs=jobs)


def _cmd_table3(
    requests: int,
    seed: int,
    json_path: Optional[str] = None,
    csv_path: Optional[str] = None,
    jobs: int = 1,
) -> int:
    results = _run(requests, seed, jobs)
    print(render_table3([r.metrics for r in results], title="Table 3"))
    print()
    failures = 0
    for check in check_paper_trends(results):
        status = "PASS" if check.holds else "FAIL"
        failures += not check.holds
        print(f"  {status}  {check.name}: {check.detail}")
    if json_path:
        from repro.experiments.export import results_to_json

        with open(json_path, "w", encoding="utf-8") as handle:
            handle.write(results_to_json(results))
        print(f"wrote {json_path}", file=sys.stderr)
    if csv_path:
        from repro.experiments.export import table3_to_csv

        with open(csv_path, "w", encoding="utf-8") as handle:
            handle.write(table3_to_csv(results))
        print(f"wrote {csv_path}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_sweep(requests: int, seeds: List[int], jobs: int = 1) -> int:
    from repro.experiments.sweep import run_seed_sweep

    print(f"Sweeping seeds {seeds} ({requests} requests each, jobs {jobs})...",
          file=sys.stderr)
    summary = run_seed_sweep(seeds, request_count=requests, jobs=jobs)
    rows = [
        [name, f"{fraction:.0%}"]
        for name, fraction in sorted(summary.trend_support.items())
    ]
    print(render_table(["trend", "seeds supporting"], rows,
                       title=f"Trend support across {len(seeds)} seeds"))
    print()
    metric_rows = []
    for i in range(3):
        cells = [f"experiment {i + 1}"]
        for metric in ("epsilon", "upsilon", "beta"):
            mean, std = summary.total(i, metric)
            cells.append(f"{mean:.0f} ± {std:.0f}")
        metric_rows.append(cells)
    print(render_table(["", "ε (s)", "υ (%)", "β (%)"], metric_rows,
                       title="Grid totals, mean ± std over seeds"))
    return 0 if all(f == 1.0 for f in summary.trend_support.values()) else 1


def _cmd_figures(requests: int, seed: int, charts: bool, jobs: int = 1) -> None:
    results = _run(requests, seed, jobs)
    metrics = [r.metrics for r in results]
    for metric, title in (
        ("epsilon", "Figure 8: advance time ε (s)"),
        ("upsilon", "Figure 9: resource utilisation υ (%)"),
        ("beta", "Figure 10: load balancing level β (%)"),
    ):
        print(render_figure_series(metrics, metric, title=title))
        print()
        if charts:
            print(ascii_line_chart(
                figure_series(metrics, metric),
                highlight=["S1", "S2", "S11", "S12"],
                x_labels=[f"exp {i + 1}" for i in range(len(results))],
                title=title + " — curves",
            ))
            print()


def _cmd_experiment4(args) -> int:
    from dataclasses import asdict
    import json as json_module

    from repro.experiments.experiment4 import run_experiment4
    from repro.metrics.reporting import render_experiment4
    from repro.net.faults import FaultPlanSpec

    fault_spec = None
    if args.fault_plan:
        with open(args.fault_plan, encoding="utf-8") as handle:
            fault_spec = FaultPlanSpec.from_json(handle.read())
    common = dict(
        request_count=args.requests,
        master_seed=args.seed,
        loss_rates=tuple(args.loss),
        churn_rates=tuple(args.churn),
        jitter=args.jitter,
        fault_spec=fault_spec,
    )
    print(f"Running experiment 4 ({args.requests} requests, seed {args.seed}, "
          f"loss {args.loss}, churn {args.churn})...", file=sys.stderr)
    ablation = run_experiment4(resilient=False, **common)
    result = None
    if not args.no_retry:
        result = run_experiment4(resilient=True, **common)
        print(render_experiment4(result, ablation))
    else:
        print(render_experiment4(ablation))
    if args.json:
        payload = {
            "request_count": args.requests,
            "master_seed": args.seed,
            "ablation": [asdict(p) for p in ablation.points],
            "resilient": [asdict(p) for p in result.points] if result else None,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json_module.dump(payload, handle, indent=2)
        print(f"wrote {args.json}", file=sys.stderr)
    if not args.check:
        return 0
    failures = []
    checked = result if result is not None else ablation
    for p in checked.points:
        if p.loss_rate == 0.0 and p.churn_rate == 0.0 and p.completion_rate < 1.0:
            failures.append(
                f"zero-fault point completed only {p.succeeded}/{p.submitted}"
            )
    if result is not None:
        lossy = [p for p in result.points if p.loss_rate > 0]
        if lossy and not any(p.counters.retries > 0 for p in lossy):
            failures.append("no retries observed under message loss")
        for p in result.points:
            a = ablation.point(p.loss_rate, p.churn_rate)
            if p.succeeded < a.succeeded:
                failures.append(
                    f"resilient completed {p.succeeded} < ablation {a.succeeded} "
                    f"at loss={p.loss_rate}, churn={p.churn_rate}"
                )
        worst, worst_abl = result.worst_point, ablation.worst_point
        if worst.fault_dropped > 0 and worst.succeeded <= worst_abl.succeeded:
            failures.append(
                "resilient protocol not strictly better at the worst point "
                f"({worst.succeeded} vs {worst_abl.succeeded})"
            )
    for failure in failures:
        print(f"  FAIL  {failure}")
    if not failures:
        print("  PASS  all robustness invariants hold")
    return 1 if failures else 0


def _cmd_experiment5(args) -> int:
    from dataclasses import asdict
    import json as json_module

    from repro.experiments.experiment5 import run_experiment5
    from repro.metrics.reporting import render_experiment5

    print(f"Running experiment 5 ({args.requests} requests, seed {args.seed}, "
          f"churn {args.churn}, stragglers {args.stragglers})...",
          file=sys.stderr)
    result = run_experiment5(
        request_count=args.requests,
        master_seed=args.seed,
        churn_rates=tuple(args.churn),
        straggler_counts=tuple(args.stragglers),
    )
    print(render_experiment5(result))
    if args.json:
        payload = {
            "request_count": result.request_count,
            "master_seed": result.master_seed,
            "points": [asdict(p) for p in result.points],
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json_module.dump(payload, handle, indent=2)
        print(f"wrote {args.json}", file=sys.stderr)
    if not args.check:
        return 0
    failures = []
    for p in result.points:
        if p.crashes == 0 and p.membership.confirms > 0:
            failures.append(
                f"{p.membership.confirms} confirmed deaths with zero crashes "
                f"(churn={p.churn_rate}, grey={p.straggler_count}, "
                f"healing={p.healing}) — false positives"
            )
        if p.healing and p.membership.orphaned > (
            p.membership.adoptions_completed + p.membership.promotions
        ):
            failures.append(
                f"unrepaired orphans at churn={p.churn_rate}, "
                f"grey={p.straggler_count}: {p.membership.orphaned} orphaned, "
                f"{p.membership.adoptions_completed} adopted, "
                f"{p.membership.promotions} promoted"
            )
    churn_cells = sorted(
        {
            (p.churn_rate, p.straggler_count)
            for p in result.points
            if p.churn_rate > 0
        }
    )
    for churn_rate, straggler_count in churn_cells:
        advantage = result.healing_advantage(churn_rate, straggler_count)
        if advantage <= 0:
            failures.append(
                f"healing does not beat the static hierarchy at "
                f"churn={churn_rate}, grey={straggler_count} "
                f"(deadline-SLO delta {advantage:+.1%})"
            )
    for failure in failures:
        print(f"  FAIL  {failure}")
    if not failures:
        print("  PASS  all healing invariants hold")
    return 1 if failures else 0


def _cmd_experiment6(args) -> int:
    from dataclasses import asdict
    import json as json_module

    from repro.experiments.experiment6 import (
        run_experiment6,
        run_policy_invariants,
    )
    from repro.metrics.reporting import render_experiment6

    print(f"Running experiment 6 ({args.requests} requests, seed {args.seed}, "
          f"policies {args.policies}, cells {args.cells})...", file=sys.stderr)
    result = run_experiment6(
        request_count=args.requests,
        master_seed=args.seed,
        bursty_agents=args.bursty_agents,
        policies=tuple(args.policies),
        cells=tuple(args.cells),
        verify_parity=args.check and "clean" in args.cells,
    )
    print(render_experiment6(result))
    if args.json:
        payload = {
            "request_count": result.request_count,
            "master_seed": result.master_seed,
            "bursty_agents": result.bursty_agents,
            "points": [asdict(p) for p in result.points],
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json_module.dump(payload, handle, indent=2)
        print(f"wrote {args.json}", file=sys.stderr)
    if not args.check:
        return 0
    failures = []
    if result.parity:
        for mismatch in result.parity:
            failures.append(f"eq10 clean cell is not the seed path: {mismatch}")
    for p in result.points:
        if p.cell == "clean" and p.completion_rate < 1.0:
            failures.append(
                f"clean cell incomplete under {p.policy}: "
                f"{p.succeeded}/{p.submitted}"
            )
    for probe in run_policy_invariants(
        request_count=args.requests, master_seed=args.seed
    ):
        for violation in probe.violations:
            failures.append(
                f"{probe.policy}/{probe.cell} trace violates "
                f"{violation.rule} at t={violation.t:.3f}: {violation.message}"
            )
        fired = {"auction": "auction.settle", "reservation": "resv.book"}
        kind = fired[probe.policy]
        if not probe.record_counts.get(kind):
            failures.append(
                f"{probe.policy}/{probe.cell} run never produced a "
                f"{kind} record — the protocol was not exercised"
            )
    for failure in failures:
        print(f"  FAIL  {failure}")
    if not failures:
        print("  PASS  all policy invariants hold")
    return 1 if failures else 0


def _cmd_experiment7(args) -> int:
    from dataclasses import asdict
    import json as json_module

    from repro.experiments.experiment7 import CELLS, run_experiment7
    from repro.metrics.reporting import render_experiment7

    cells = tuple(args.cells) if args.cells else CELLS
    print(f"Running experiment 7 ({args.workflows} workflows/cell, "
          f"seed {args.seed}, cells {list(cells)})...", file=sys.stderr)
    result = run_experiment7(
        workflow_count=args.workflows,
        master_seed=args.seed,
        cells=cells,
        check=args.check,
    )
    print(render_experiment7(result))
    if args.json:
        payload = {
            "workflow_count": result.workflow_count,
            "master_seed": result.master_seed,
            "points": [
                {k: v for k, v in asdict(p).items() if k != "violations"}
                for p in result.points
            ],
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json_module.dump(payload, handle, indent=2)
        print(f"wrote {args.json}", file=sys.stderr)
    if not args.check:
        return 0
    failures = []
    for p in result.points:
        for violation in p.violations:
            failures.append(
                f"{p.cell}/{p.mode} trace violates {violation.rule} "
                f"at t={violation.t:.3f}: {violation.message}"
            )
        if not p.dag_records.get("dag.ready"):
            failures.append(
                f"{p.cell}/{p.mode} run produced no dag.ready records — "
                "the precedence gates were not exercised"
            )
        if p.workflows_succeeded < p.workflows:
            failures.append(
                f"{p.cell}/{p.mode}: only {p.workflows_succeeded}/"
                f"{p.workflows} workflows completed"
            )
    for regression in result.slo_regressions():
        failures.append(f"aware lost the deadline SLO in {regression}")
    total_aware = sum(p.deadline_met for p in result.points if p.mode == "aware")
    total_naive = sum(p.deadline_met for p in result.points if p.mode == "naive")
    if total_aware <= total_naive:
        failures.append(
            f"aware does not beat naive overall: {total_aware} vs "
            f"{total_naive} deadlines met"
        )
    for failure in failures:
        print(f"  FAIL  {failure}")
    if not failures:
        print("  PASS  all workflow invariants hold")
    return 1 if failures else 0


def _cmd_trace(args) -> int:
    from repro.obs import (
        MemorySink,
        MetricsRegistry,
        Tracer,
        build_request_spans,
        canonical_lines,
        check_trace,
        render_span_tree,
    )

    metrics = MetricsRegistry()
    tracer = Tracer(MemorySink(), metrics=metrics)
    if args.loss or args.churn:
        from repro.experiments.experiment4 import (
            degradation_config,
            experiment4_base_config,
            run_degraded,
        )

        config = degradation_config(
            experiment4_base_config(
                master_seed=args.seed, request_count=args.requests
            ),
            loss=args.loss,
            churn_rate=args.churn,
            resilient=True,
        )
        print(f"Tracing {config.name} ({args.requests} requests, "
              f"seed {args.seed})...", file=sys.stderr)
        result = run_degraded(config, tracer=tracer).result
    else:
        from repro.experiments.runner import run_experiment

        config = table2_experiments(
            master_seed=args.seed, request_count=args.requests
        )[args.experiment - 1]
        print(f"Tracing {config.name} ({args.requests} requests, "
              f"seed {args.seed})...", file=sys.stderr)
        result = run_experiment(config, tracer=tracer)

    records = tracer.records
    counters = metrics.snapshot()["counters"]
    rows = [
        [name.removeprefix("records."), str(count)]
        for name, count in counters.items()
        if name.startswith("records.")
    ]
    print(render_table(["record kind", "count"], rows,
                       title=f"{config.name}: {len(records)} trace records"))
    print(f"rng digest: {result.rng_digest}")

    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            for line in canonical_lines(records):
                handle.write(line + "\n")
        print(f"wrote {args.out}", file=sys.stderr)

    if args.request is not None:
        spans = build_request_spans(records)
        span = spans.get(args.request)
        if span is None:
            print(f"no trace records for request {args.request}")
            return 1
        print()
        for line in render_span_tree(span):
            print(line)

    if args.check:
        violations = check_trace(records)
        print()
        if violations:
            for violation in violations:
                print(f"  FAIL  {violation}")
            return 1
        print("  PASS  all trace invariants hold "
              f"({len(records)} records checked)")
    return 0


def _checkpoint_config(args):
    """The experiment configuration a ``checkpoint`` invocation describes."""
    if args.loss or args.churn:
        from repro.experiments.experiment4 import (
            degradation_config,
            experiment4_base_config,
        )

        return degradation_config(
            experiment4_base_config(
                master_seed=args.seed, request_count=args.requests
            ),
            loss=args.loss,
            churn_rate=args.churn,
            resilient=True,
        )
    return table2_experiments(
        master_seed=args.seed, request_count=args.requests
    )[args.experiment - 1]


def _cmd_checkpoint(args) -> int:
    config = _checkpoint_config(args)
    degraded = bool(args.loss or args.churn)
    print(f"Running {config.name} for {args.at_step} events "
          f"(seed {args.seed})...", file=sys.stderr)
    if degraded:
        from repro.experiments.experiment4 import checkpoint_degraded

        digest = checkpoint_degraded(config, at_step=args.at_step, path=args.out)
    else:
        from repro.experiments.runner import checkpoint_experiment

        digest = checkpoint_experiment(config, at_step=args.at_step, path=args.out)
    print(f"wrote {args.out}")
    print(f"sha256: {digest}")
    return 0


def _cmd_resume(args) -> int:
    from repro.checkpoint import read_snapshot
    from repro.metrics.reporting import render_table3

    payload = read_snapshot(args.snapshot)
    kind = payload.get("kind")
    print(f"Resuming {kind} snapshot {args.snapshot} "
          f"(step {payload.get('steps')})...", file=sys.stderr)
    if kind == "experiment":
        from repro.experiments.runner import resume_experiment

        result = resume_experiment(
            args.snapshot,
            checkpoint_every=args.checkpoint_every,
            checkpoint_path=args.checkpoint_path,
        )
    elif kind == "degraded":
        from repro.experiments.experiment4 import resume_degraded

        result = resume_degraded(
            args.snapshot,
            checkpoint_every=args.checkpoint_every,
            checkpoint_path=args.checkpoint_path,
        ).result
    elif kind == "soak":
        from repro.experiments.soak import resume_soak

        soak = resume_soak(args.snapshot)
        _print_soak(soak)
        return 0
    else:
        print(f"unknown snapshot kind {kind!r}", file=sys.stderr)
        return 1
    print(render_table3([result.metrics], title=f"{result.config.name} (resumed)"))
    print(f"records: {len(result.records)}, rejected: {result.rejected_count}")
    print(f"rng digest: {result.rng_digest}")
    return 0


def _print_soak(result) -> None:
    rows = [
        [str(w.index), f"{w.start:.0f}", f"{w.end:.0f}", str(w.completed),
         str(w.failed), str(w.deadline_met), f"{w.mean_response:.1f}",
         f"{w.throughput * 1000:.2f}"]
        for w in result.windows
    ]
    print(render_table(
        ["win", "start", "end", "done", "failed", "on-time", "mean resp (s)",
         "thru (/1000s)"],
        rows,
        title=f"{result.config.name}: {result.total_completed} completed, "
        f"{result.total_failed} failed over {result.horizon:.0f}s",
    ))
    print(f"steps: {result.steps}, rng digest: {result.rng_digest}")


def _cmd_soak(args) -> int:
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.soak import run_soak
    from repro.scheduling.scheduler import SchedulingPolicy

    config = ExperimentConfig(
        name=f"soak-{args.requests}",
        policy=SchedulingPolicy.GA,
        agents_enabled=True,
        request_count=args.requests,
        master_seed=args.seed,
    )
    print(f"Soaking {args.requests} requests (seed {args.seed}, "
          f"window {args.window:.0f}s)...", file=sys.stderr)
    result = run_soak(
        config, window_seconds=args.window, checkpoint_path=args.checkpoint
    )
    _print_soak(result)
    if args.checkpoint:
        print(f"checkpoints rewritten at {args.checkpoint}", file=sys.stderr)
    return 0


def _cmd_scenario(args) -> int:
    from repro.experiments.scenarios import (
        ScenarioSpec,
        generate_scenario,
        scenario_fingerprint,
    )
    from repro.scheduling.scheduler import SchedulingPolicy

    spec = ScenarioSpec(
        name=f"a{args.agents}-{args.arrival}",
        agent_count=args.agents,
        branching=args.branching,
        nproc=args.nproc,
        request_count=args.requests,
        rate=args.rate,
        arrival=args.arrival,
        deadline_scale=args.deadline_scale,
        master_seed=args.seed,
        chaos=args.chaos,
    )
    scenario = generate_scenario(spec)
    summary = scenario.summary()
    rows = [
        [key, f"{value:.2f}" if isinstance(value, float) else str(value)]
        for key, value in summary.items()
    ]
    print(render_table(["property", "value"], rows,
                       title=f"Scenario {spec.name} (seed {spec.master_seed})"))
    print(f"fingerprint: {scenario_fingerprint(scenario)}")
    if not (args.run or args.check):
        return 0

    config = spec.config(
        policy=(SchedulingPolicy.GA if args.policy == "ga"
                else SchedulingPolicy.FIFO),
        engine=args.engine,
    )
    tracer = None
    if args.check:
        from repro.obs import MemorySink, Tracer

        tracer = Tracer(MemorySink())
    print(f"Running {config.name} ({len(scenario.workload)} requests, "
          f"{args.agents} agents, {args.engine} engine)...", file=sys.stderr)
    if spec.chaos != "none":
        # Chaos runs lose messages and crash agents: use the degraded
        # (horizon-tolerant) runner rather than the strict loop.
        from repro.experiments.experiment4 import run_degraded

        run = run_degraded(
            config,
            scenario.topology,
            workload=list(scenario.workload),
            tracer=tracer,
        )
        result = run.result
        print(f"submitted: {run.submitted}, succeeded: {run.succeeded}, "
              f"deadline met: {run.deadline_met}, failed: {run.failed}, "
              f"unresolved: {run.unresolved}")
        print(f"crashes: {run.crashes}, fault-dropped: {run.fault_dropped}")
        if run.membership is not None:
            m = run.membership
            print(f"membership: suspects={m.suspects} confirms={m.confirms} "
                  f"orphaned={m.orphaned} adopted={m.adoptions_completed} "
                  f"promotions={m.promotions} "
                  f"mean repair={m.mean_repair_seconds:.2f}s")
    else:
        from repro.experiments.runner import run_experiment

        result = run_experiment(
            config,
            scenario.topology,
            workload=list(scenario.workload),
            tracer=tracer,
        )
    print(f"records: {len(result.records)}, rejected: {result.rejected_count}, "
          f"messages: {result.messages_sent}")
    print(f"rng digest: {result.rng_digest}")
    if args.check:
        from repro.obs import check_trace

        violations = check_trace(tracer.records)
        if violations:
            for violation in violations:
                print(f"  FAIL  {violation}")
            return 1
        print("  PASS  all trace invariants hold "
              f"({len(tracer.records)} records checked)")
    return 0


def _cmd_workload(requests: int, seed: int, head: int) -> None:
    from repro.experiments.casestudy import case_study_topology

    topo = case_study_topology()
    items = generate_workload(
        topo.agent_names,
        paper_application_specs(),
        count=requests,
        master_seed=seed,
    )
    rows = [
        [f"{it.submit_time:.0f}", it.agent_name, it.application,
         f"{it.deadline - it.submit_time:.1f}"]
        for it in items[:head]
    ]
    print(render_table(["t (s)", "agent", "application", "deadline offset (s)"],
                       rows, title=f"Workload head ({head} of {len(items)})"))
    summary = workload_summary(items)
    print()
    print("per agent:", dict(sorted(summary["per_agent"].items())))
    print("per application:", dict(sorted(summary["per_application"].items())))


def _cmd_predict(application: str, platform_name: str, max_nproc: int) -> None:
    specs = paper_application_specs()
    platform = DEFAULT_CATALOGUE.get(platform_name)
    engine = EvaluationEngine()
    model = specs[application].model
    rows = [
        [k, f"{engine.evaluate_count(model, k, platform):.1f}"]
        for k in range(1, max_nproc + 1)
    ]
    print(render_table(
        ["nproc", "seconds"], rows,
        title=f"{application} on {platform.name}",
    ))
    best_k, best_t = engine.best_count(model, platform, max_nproc)
    print(f"optimal allocation: {best_k} processors ({best_t:.1f}s)")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "table1":
        _cmd_table1()
    elif args.command == "table2":
        _cmd_table2()
    elif args.command == "table3":
        return _cmd_table3(args.requests, args.seed, args.json, args.csv, args.jobs)
    elif args.command == "sweep":
        return _cmd_sweep(args.requests, args.seeds, args.jobs)
    elif args.command == "figures":
        _cmd_figures(args.requests, args.seed, args.charts, args.jobs)
    elif args.command == "experiment4":
        return _cmd_experiment4(args)
    elif args.command == "experiment5":
        return _cmd_experiment5(args)
    elif args.command == "experiment6":
        return _cmd_experiment6(args)
    elif args.command == "experiment7":
        return _cmd_experiment7(args)
    elif args.command == "perf":
        from repro.perf import run_perf_cli

        return run_perf_cli(args.output, baseline=args.baseline, jobs=args.jobs,
                            only=args.only, update=args.update)
    elif args.command == "trace":
        return _cmd_trace(args)
    elif args.command == "checkpoint":
        return _cmd_checkpoint(args)
    elif args.command == "resume":
        return _cmd_resume(args)
    elif args.command == "soak":
        return _cmd_soak(args)
    elif args.command == "scenario":
        return _cmd_scenario(args)
    elif args.command == "workload":
        _cmd_workload(args.requests, args.seed, args.head)
    elif args.command == "predict":
        _cmd_predict(args.application, args.platform, args.max_nproc)
    return 0


if __name__ == "__main__":  # ``python -m repro.cli`` (also: ``python -m repro``)
    import sys as _sys

    _sys.exit(main(_sys.argv[1:]))
