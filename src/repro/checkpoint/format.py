"""The on-disk snapshot format: versioned, checksummed JSONL.

A snapshot file is two lines of JSON:

* **line 1** — the header ``{"format": "repro-checkpoint", "version": 1,
  "sha256": "<hex>"}`` where the digest covers the exact bytes of line 2;
* **line 2** — the payload, serialised canonically (sorted keys, no
  whitespace) so identical state always produces identical bytes.

The header-first layout lets a reader reject a wrong or corrupt file
before parsing a potentially large payload, and the canonical payload
encoding makes snapshot files themselves diffable and digest-stable.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict

from repro.errors import CheckpointError

__all__ = ["FORMAT_NAME", "FORMAT_VERSION", "write_snapshot", "read_snapshot"]

FORMAT_NAME = "repro-checkpoint"
FORMAT_VERSION = 1


def _canonical(payload: Dict[str, Any]) -> str:
    try:
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise CheckpointError(f"snapshot payload is not JSON-serialisable: {exc}")


def write_snapshot(path: str, payload: Dict[str, Any]) -> str:
    """Write *payload* to *path* atomically; returns the payload's sha256.

    The file is written to ``<path>.tmp`` and renamed into place, so a
    crash mid-checkpoint never leaves a truncated snapshot where a
    resumable one used to be.
    """
    body = _canonical(payload)
    digest = hashlib.sha256(body.encode("utf-8")).hexdigest()
    header = json.dumps(
        {"format": FORMAT_NAME, "version": FORMAT_VERSION, "sha256": digest},
        sort_keys=True,
        separators=(",", ":"),
    )
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(header + "\n" + body + "\n")
    os.replace(tmp, path)
    return digest


def read_snapshot(path: str) -> Dict[str, Any]:
    """Read, verify, and parse a snapshot written by :func:`write_snapshot`.

    Raises
    ------
    CheckpointError
        If the file is missing, malformed, a different format/version, or
        fails its checksum.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
    except OSError as exc:
        raise CheckpointError(f"cannot read snapshot {path!r}: {exc}")
    if len(lines) < 2:
        raise CheckpointError(f"snapshot {path!r} is truncated ({len(lines)} lines)")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"snapshot {path!r} has a malformed header: {exc}")
    if not isinstance(header, dict) or header.get("format") != FORMAT_NAME:
        raise CheckpointError(f"{path!r} is not a {FORMAT_NAME} snapshot")
    version = header.get("version")
    if version != FORMAT_VERSION:
        raise CheckpointError(
            f"snapshot {path!r} has format version {version!r}; "
            f"this build reads version {FORMAT_VERSION}"
        )
    body = lines[1]
    digest = hashlib.sha256(body.encode("utf-8")).hexdigest()
    if digest != header.get("sha256"):
        raise CheckpointError(
            f"snapshot {path!r} failed its checksum "
            f"(header {header.get('sha256')!r}, actual {digest!r})"
        )
    try:
        payload = json.loads(body)
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"snapshot {path!r} has a malformed payload: {exc}")
    if not isinstance(payload, dict):
        raise CheckpointError(f"snapshot {path!r} payload is not an object")
    return payload
