"""Whole-system snapshot/restore orchestration.

:func:`snapshot_system` gathers every component's ``snapshot_state()`` into
one JSON-ready payload section; :func:`restore_system` rewinds a **freshly
built, not-yet-started** :class:`~repro.experiments.runner.GridSystem` to
that state.  The experiment drivers add their own progress (pending arrival
events, churn timers, the step counter) around this section — see
:mod:`repro.experiments.runner`.

Restore order matters: the engine is rewound first (clearing the heap and
re-establishing the clock and sequence counter), after which every
component re-creates its pending events with their *original*
``(time, priority, sequence)`` identities, reproducing the heap exactly.

The module also provides codecs for the run *inputs* — the experiment
configuration, topology, and workload — so a snapshot file is
self-contained: resuming needs nothing but the file.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from typing import Any, Dict, List

from repro.errors import CheckpointError

__all__ = [
    "snapshot_system",
    "restore_system",
    "applications_of",
    "encode_config",
    "decode_config",
    "encode_topology",
    "decode_topology",
    "topology_fingerprint",
    "encode_workload_item",
    "decode_workload_item",
    "workload_fingerprint",
]


def applications_of(system) -> Dict[str, Any]:
    """Name → :class:`~repro.pace.application.ApplicationModel` for *system*.

    Decoders resolve application references through this mapping so
    restored requests share model identity with the schedulers.
    """
    return {name: spec.model for name, spec in system.specs.items()}


# ---------------------------------------------------------------- the system


def snapshot_system(system) -> Dict[str, Any]:
    """Every component's state, JSON-ready.

    Raises
    ------
    CheckpointError
        If the system was built without an RNG registry (nothing to pin
        stream positions to) or a component refuses (e.g. a monitor with
        load tracking enabled).
    """
    from repro.net.message import peek_message_counter

    if system.rngs is None:
        raise CheckpointError(
            "cannot checkpoint a system built without an RNG registry"
        )
    return {
        "engine": system.sim.snapshot_state(),
        "rngs": system.rngs.snapshot_state(),
        "message_counter": peek_message_counter(),
        "transport": system.transport.snapshot_state(),
        "evaluator": system.evaluator.snapshot_state(),
        "schedulers": {
            name: scheduler.snapshot_state()
            for name, scheduler in sorted(system.schedulers.items())
        },
        "agents": {
            name: agent.snapshot_state()
            for name, agent in sorted(system.agents.items())
        },
        "portal": system.portal.snapshot_state(),
    }


def restore_system(system, state: Dict[str, Any]) -> None:
    """Rewind a freshly built (un-started) *system* to *state*.

    The caller must have rebuilt the grid from the snapshot's own config
    and topology; component sets are validated against the snapshot.
    """
    from repro.net.message import set_message_counter

    if system.rngs is None:
        raise CheckpointError("cannot restore into a system without an RNG registry")
    for section in ("schedulers", "agents"):
        have = set(getattr(system, section))
        want = set(state[section])
        if have != want:
            raise CheckpointError(
                f"snapshot {section} {sorted(want)} do not match the rebuilt "
                f"grid's {sorted(have)}"
            )
    applications = applications_of(system)
    # Engine first: clears the heap and restores clock/sequence, so every
    # component's restore can re-create its events against it.
    system.sim.restore_state(state["engine"])
    system.rngs.restore_state(state["rngs"])
    set_message_counter(int(state["message_counter"]))
    for name in sorted(system.schedulers):
        system.schedulers[name].restore_state(
            state["schedulers"][name], applications=applications
        )
    for name in sorted(system.agents):
        system.agents[name].restore_state(
            state["agents"][name], applications=applications
        )
    system.portal.restore_state(state["portal"], applications=applications)
    system.transport.restore_state(state["transport"], applications=applications)
    system.evaluator.restore_state(state["evaluator"])


# ------------------------------------------------------------- configuration


def encode_config(config) -> Dict[str, Any]:
    """``ExperimentConfig`` → JSON-ready dict (policy as its enum value)."""
    data = asdict(config)
    data["policy"] = config.policy.value
    return data


def decode_config(data: Dict[str, Any]):
    """Inverse of :func:`encode_config`.

    Unknown keys (a snapshot written by a different build) raise
    :class:`CheckpointError` rather than being silently dropped.
    """
    from repro.agents.discovery import DiscoveryConfig
    from repro.agents.membership import MembershipConfig
    from repro.agents.policy import GlobalPolicyConfig
    from repro.agents.resilience import ResilienceConfig
    from repro.experiments.config import ExperimentConfig
    from repro.net.faults import ChurnSpec, FaultPlanSpec
    from repro.scheduling.cost import CostWeights
    from repro.scheduling.ga import GAConfig
    from repro.scheduling.scheduler import SchedulingPolicy

    try:
        ga_raw = dict(data["ga_config"])
        weights = CostWeights(**ga_raw.pop("weights"))
        ga_config = GAConfig(weights=weights, **ga_raw)
        faults = data["faults"]
        churn = data["churn"]
        churn_spec = None
        if churn is not None:
            churn = dict(churn)
            churn["window"] = tuple(churn["window"])
            churn_spec = ChurnSpec(**churn)
        return ExperimentConfig(
            name=str(data["name"]),
            policy=SchedulingPolicy(data["policy"]),
            agents_enabled=bool(data["agents_enabled"]),
            request_count=int(data["request_count"]),
            request_interval=float(data["request_interval"]),
            pull_interval=float(data["pull_interval"]),
            master_seed=int(data["master_seed"]),
            generations_per_event=int(data["generations_per_event"]),
            ga_config=ga_config,
            discovery=DiscoveryConfig(**data["discovery"]),
            prediction_noise=float(data["prediction_noise"]),
            runtime_noise=float(data["runtime_noise"]),
            advertisement=str(data["advertisement"]),
            monitor_poll_interval=float(data["monitor_poll_interval"]),
            freetime_mode=str(data["freetime_mode"]),
            resilience=ResilienceConfig(**data["resilience"]),
            faults=(
                None if faults is None else FaultPlanSpec.from_json(json.dumps(faults))
            ),
            churn=churn_spec,
            # Snapshots written before engine selection existed carry no
            # "engine" key; they restore onto the partitioned engine, which
            # replays byte-identically (the engines are equivalence-tested).
            engine=str(data.get("engine", "partitioned")),
            # Pre-membership snapshots carry no "membership" key; they
            # restore with the detector disabled (the seed behaviour).
            membership=MembershipConfig(**data.get("membership") or {}),
            # Pre-policy snapshots carry no "global_policy" key; they
            # restore on eq10, the seed dispatch rule.
            global_policy=GlobalPolicyConfig(**data.get("global_policy") or {}),
        )
    except (KeyError, TypeError) as exc:
        raise CheckpointError(f"snapshot config does not match this build: {exc}")


# ----------------------------------------------------------------- topology


def _topology_inputs(topology) -> Dict[str, Any]:
    # Mapping *order* is part of the topology's identity: hierarchy wiring
    # appends children in ``parent_of`` iteration order, which fixes the
    # send order of pulls/pushes and therefore which messages a seeded
    # fault plan drops.  Lists of pairs survive canonical (key-sorted)
    # JSON serialisation; plain dicts would come back re-ordered.
    return {
        "platforms": [[k, v] for k, v in topology.platforms.items()],
        "parent_of": [[k, v] for k, v in topology.parent_of.items()],
        "nproc": [[k, v] for k, v in topology.nproc.items()],
    }


def topology_fingerprint(topology) -> str:
    """sha256 over the topology's canonical JSON description."""
    body = json.dumps(
        _topology_inputs(topology), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


def encode_topology(topology) -> Dict[str, Any]:
    """``GridTopology`` → JSON-ready dict with a self-identifying fingerprint.

    Only the default hardware catalogue is supported — the catalogue holds
    fitted model curves that a snapshot cannot carry.
    """
    from repro.pace.hardware import DEFAULT_CATALOGUE

    if topology.catalogue is not DEFAULT_CATALOGUE:
        raise CheckpointError(
            "cannot checkpoint a topology with a custom hardware catalogue"
        )
    data = _topology_inputs(topology)
    data["fingerprint"] = topology_fingerprint(topology)
    return data


def decode_topology(data: Dict[str, Any]):
    """Inverse of :func:`encode_topology`; verifies the fingerprint."""
    from repro.experiments.casestudy import GridTopology

    topology = GridTopology(
        platforms={str(k): str(v) for k, v in data["platforms"]},
        parent_of={
            str(k): (None if v is None else str(v)) for k, v in data["parent_of"]
        },
        nproc={str(k): int(v) for k, v in data["nproc"]},
    )
    actual = topology_fingerprint(topology)
    if actual != data["fingerprint"]:
        raise CheckpointError(
            f"rebuilt topology fingerprint {actual} does not match the "
            f"snapshot's {data['fingerprint']}"
        )
    return topology


# ----------------------------------------------------------------- workload


def encode_workload_item(item) -> List[Any]:
    """``WorkloadItem`` → ``[submit_time, agent, application, deadline]``."""
    return [item.submit_time, item.agent_name, item.application, item.deadline]


def decode_workload_item(data: List[Any]):
    """Inverse of :func:`encode_workload_item`."""
    from repro.experiments.workload import WorkloadItem

    return WorkloadItem(
        submit_time=float(data[0]),
        agent_name=str(data[1]),
        application=str(data[2]),
        deadline=float(data[3]),
    )


def workload_fingerprint(items) -> str:
    """sha256 over the workload's canonical JSON description."""
    body = json.dumps(
        [encode_workload_item(i) for i in items],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(body.encode("utf-8")).hexdigest()
