"""JSON encoders/decoders for the domain objects a snapshot contains.

Every ``encode_*`` returns plain JSON-serialisable values (dicts, lists,
strings, numbers, ``None``); the matching ``decode_*`` rebuilds the live
object.  Application models are referenced **by name** — a snapshot never
embeds model internals.  Decoders take an ``applications`` mapping
(name → :class:`~repro.pace.application.ApplicationModel`) built from the
rebuilt grid, so restored requests share model *identity* with the
schedulers that will evaluate them.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.errors import CheckpointError
from repro.net.message import Endpoint, Message, MessageKind
from repro.net.payloads import (
    BidInfo,
    KinInfo,
    RequestEnvelope,
    ReservationGrant,
    ServiceInfo,
    TaskResult,
    TransferPayload,
)
from repro.tasks.task import Environment, Task, TaskRequest, TaskState, WorkflowBinding

__all__ = [
    "encode_endpoint",
    "decode_endpoint",
    "encode_ndarray",
    "decode_ndarray",
    "encode_task_request",
    "decode_task_request",
    "encode_envelope",
    "decode_envelope",
    "encode_task_result",
    "decode_task_result",
    "encode_service_info",
    "decode_service_info",
    "encode_kin_info",
    "decode_kin_info",
    "encode_bid_info",
    "decode_bid_info",
    "encode_reservation_grant",
    "decode_reservation_grant",
    "encode_message",
    "decode_message",
    "encode_task",
    "decode_task",
]

Applications = Dict[str, Any]


# ------------------------------------------------------------------ primitives


def encode_endpoint(endpoint: Endpoint) -> List[Any]:
    """``Endpoint`` → ``[address, port]``."""
    return [endpoint.address, endpoint.port]


def decode_endpoint(data: List[Any]) -> Endpoint:
    """``[address, port]`` → ``Endpoint``."""
    return Endpoint(str(data[0]), int(data[1]))


def encode_ndarray(array: np.ndarray) -> Dict[str, Any]:
    """Dtype, shape, and row-major values — exact for int/bool/float64."""
    return {
        "dtype": str(array.dtype),
        "shape": list(array.shape),
        "data": array.ravel(order="C").tolist(),
    }


def decode_ndarray(data: Dict[str, Any]) -> np.ndarray:
    """Inverse of :func:`encode_ndarray`."""
    return np.array(data["data"], dtype=np.dtype(data["dtype"])).reshape(
        tuple(data["shape"])
    )


def _lookup_application(name: str, applications: Applications):
    try:
        return applications[name]
    except KeyError:
        raise CheckpointError(
            f"snapshot references unknown application {name!r}; "
            f"the rebuilt grid knows {sorted(applications)}"
        ) from None


# -------------------------------------------------------------------- payloads


def encode_task_request(request: TaskRequest) -> Dict[str, Any]:
    """``TaskRequest`` with the application referenced by name.

    The ``workflow`` key appears only when the request carries a binding,
    so independent-task snapshots stay byte-identical to pre-workflow
    ones.
    """
    out = {
        "application": request.application.name,
        "environment": request.environment.value,
        "deadline": request.deadline,
        "submit_time": request.submit_time,
        "email": request.email,
        "origin": request.origin,
    }
    if request.workflow is not None:
        binding = request.workflow
        out["workflow"] = {
            "workflow_id": binding.workflow_id,
            "node": binding.node,
            "priority": binding.priority,
            "inputs": [list(triple) for triple in binding.inputs],
        }
    return out


def decode_task_request(data: Dict[str, Any], applications: Applications) -> TaskRequest:
    """Inverse of :func:`encode_task_request`."""
    raw_binding = data.get("workflow")
    binding = None
    if raw_binding is not None:
        binding = WorkflowBinding(
            workflow_id=int(raw_binding["workflow_id"]),
            node=str(raw_binding["node"]),
            priority=float(raw_binding["priority"]),
            inputs=tuple(
                (str(p), str(src), float(size))
                for p, src, size in raw_binding["inputs"]
            ),
        )
    return TaskRequest(
        application=_lookup_application(str(data["application"]), applications),
        environment=Environment(data["environment"]),
        deadline=float(data["deadline"]),
        submit_time=float(data["submit_time"]),
        email=str(data["email"]),
        origin=str(data["origin"]),
        workflow=binding,
    )


def encode_envelope(envelope: RequestEnvelope) -> Dict[str, Any]:
    """``RequestEnvelope`` → dict (trace tuple becomes a list)."""
    return {
        "request_id": envelope.request_id,
        "request": encode_task_request(envelope.request),
        "reply_to": encode_endpoint(envelope.reply_to),
        "trace": list(envelope.trace),
    }


def decode_envelope(data: Dict[str, Any], applications: Applications) -> RequestEnvelope:
    """Inverse of :func:`encode_envelope`."""
    return RequestEnvelope(
        request_id=int(data["request_id"]),
        request=decode_task_request(data["request"], applications),
        reply_to=decode_endpoint(data["reply_to"]),
        trace=tuple(str(s) for s in data["trace"]),
    )


def encode_task_result(result: TaskResult) -> Dict[str, Any]:
    """``TaskResult`` → dict (application already a name string)."""
    return {
        "request_id": result.request_id,
        "application": result.application,
        "success": result.success,
        "resource_name": result.resource_name,
        "submit_time": result.submit_time,
        "start_time": result.start_time,
        "completion_time": result.completion_time,
        "deadline": result.deadline,
        "trace": list(result.trace),
    }


def decode_task_result(data: Dict[str, Any]) -> TaskResult:
    """Inverse of :func:`encode_task_result`."""
    return TaskResult(
        request_id=int(data["request_id"]),
        application=str(data["application"]),
        success=bool(data["success"]),
        resource_name=str(data["resource_name"]),
        submit_time=float(data["submit_time"]),
        start_time=float(data["start_time"]),
        completion_time=float(data["completion_time"]),
        deadline=float(data["deadline"]),
        trace=tuple(str(s) for s in data["trace"]),
    )


def encode_service_info(info: ServiceInfo) -> Dict[str, Any]:
    """``ServiceInfo`` (Fig. 5 record) → dict."""
    return {
        "agent_endpoint": encode_endpoint(info.agent_endpoint),
        "scheduler_endpoint": encode_endpoint(info.scheduler_endpoint),
        "hardware_type": info.hardware_type,
        "nproc": info.nproc,
        "environments": [e.value for e in info.environments],
        "freetime": info.freetime,
    }


def decode_service_info(data: Dict[str, Any]) -> ServiceInfo:
    """Inverse of :func:`encode_service_info`."""
    return ServiceInfo(
        agent_endpoint=decode_endpoint(data["agent_endpoint"]),
        scheduler_endpoint=decode_endpoint(data["scheduler_endpoint"]),
        hardware_type=str(data["hardware_type"]),
        nproc=int(data["nproc"]),
        environments=tuple(Environment(e) for e in data["environments"]),
        freetime=float(data["freetime"]),
    )


# -------------------------------------------------------------------- messages


def encode_kin_info(kin: KinInfo) -> Dict[str, Any]:
    """``KinInfo`` → dict of (name, endpoint) pairs (membership layer)."""
    return {
        "parent": kin.parent,
        "grandparent": (
            None
            if kin.grandparent is None
            else [kin.grandparent[0], encode_endpoint(kin.grandparent[1])]
        ),
        "siblings": [
            [name, encode_endpoint(endpoint)] for name, endpoint in kin.siblings
        ],
    }


def decode_kin_info(data: Dict[str, Any]) -> KinInfo:
    """Inverse of :func:`encode_kin_info`."""
    grandparent = data["grandparent"]
    return KinInfo(
        parent=str(data["parent"]),
        grandparent=(
            None
            if grandparent is None
            else (str(grandparent[0]), decode_endpoint(grandparent[1]))
        ),
        siblings=tuple(
            (str(name), decode_endpoint(endpoint))
            for name, endpoint in data["siblings"]
        ),
    )


def encode_bid_info(bid: BidInfo) -> Dict[str, Any]:
    """``BidInfo`` → dict (auction policy layer)."""
    return {
        "request_id": bid.request_id,
        "eta": bid.eta,
        "supported": bid.supported,
    }


def decode_bid_info(data: Dict[str, Any]) -> BidInfo:
    """Inverse of :func:`encode_bid_info`."""
    return BidInfo(
        request_id=int(data["request_id"]),
        eta=float(data["eta"]),
        supported=bool(data["supported"]),
    )


def encode_reservation_grant(grant: ReservationGrant) -> Dict[str, Any]:
    """``ReservationGrant`` → dict (reservation policy layer)."""
    return {
        "request_id": grant.request_id,
        "start": grant.start,
        "end": grant.end,
    }


def decode_reservation_grant(data: Dict[str, Any]) -> ReservationGrant:
    """Inverse of :func:`encode_reservation_grant`."""
    return ReservationGrant(
        request_id=int(data["request_id"]),
        start=float(data["start"]),
        end=float(data["end"]),
    )


def _encode_payload(payload: Any) -> Dict[str, Any]:
    if payload is None:
        return {"type": "none", "data": None}
    if isinstance(payload, bool):
        raise CheckpointError(f"unencodable message payload: {payload!r}")
    if isinstance(payload, int):
        return {"type": "int", "data": payload}
    if isinstance(payload, str):
        return {"type": "str", "data": payload}
    if isinstance(payload, KinInfo):
        return {"type": "kin", "data": encode_kin_info(payload)}
    if isinstance(payload, RequestEnvelope):
        return {"type": "envelope", "data": encode_envelope(payload)}
    if isinstance(payload, TaskResult):
        return {"type": "result", "data": encode_task_result(payload)}
    if isinstance(payload, ServiceInfo):
        return {"type": "service_info", "data": encode_service_info(payload)}
    if isinstance(payload, BidInfo):
        return {"type": "bid", "data": encode_bid_info(payload)}
    if isinstance(payload, ReservationGrant):
        return {"type": "grant", "data": encode_reservation_grant(payload)}
    if isinstance(payload, TransferPayload):
        return {
            "type": "transfer",
            "data": {
                "workflow_id": payload.workflow_id,
                "node": payload.node,
                "parent": payload.parent,
                "source": payload.source,
                "size": payload.size,
                "task_id": payload.task_id,
            },
        }
    raise CheckpointError(
        f"unencodable message payload type {type(payload).__name__!r}"
    )


def _decode_payload(data: Dict[str, Any], applications: Applications) -> Any:
    kind = data["type"]
    if kind == "none":
        return None
    if kind == "int":
        return int(data["data"])
    if kind == "str":
        return str(data["data"])
    if kind == "kin":
        return decode_kin_info(data["data"])
    if kind == "envelope":
        return decode_envelope(data["data"], applications)
    if kind == "result":
        return decode_task_result(data["data"])
    if kind == "service_info":
        return decode_service_info(data["data"])
    if kind == "bid":
        return decode_bid_info(data["data"])
    if kind == "grant":
        return decode_reservation_grant(data["data"])
    if kind == "transfer":
        raw = data["data"]
        return TransferPayload(
            workflow_id=int(raw["workflow_id"]),
            node=str(raw["node"]),
            parent=str(raw["parent"]),
            source=str(raw["source"]),
            size=float(raw["size"]),
            task_id=int(raw["task_id"]),
        )
    raise CheckpointError(f"unknown message payload tag {kind!r}")


def encode_message(message: Message) -> Dict[str, Any]:
    """``Message`` → dict with a tagged payload union."""
    return {
        "kind": message.kind.value,
        "sender": encode_endpoint(message.sender),
        "recipient": encode_endpoint(message.recipient),
        "payload": _encode_payload(message.payload),
        "hops": message.hops,
        "message_id": message.message_id,
    }


def decode_message(data: Dict[str, Any], applications: Applications) -> Message:
    """Inverse of :func:`encode_message` (preserves the original id)."""
    return Message(
        kind=MessageKind(data["kind"]),
        sender=decode_endpoint(data["sender"]),
        recipient=decode_endpoint(data["recipient"]),
        payload=_decode_payload(data["payload"], applications),
        hops=int(data["hops"]),
        message_id=int(data["message_id"]),
    )


# ----------------------------------------------------------------------- tasks


def encode_task(task: Task) -> Dict[str, Any]:
    """``Task`` → dict covering id, request, state, and placement."""
    nodes: Optional[List[int]] = (
        None if task.allocated_nodes is None else list(task.allocated_nodes)
    )
    return {
        "task_id": task.task_id,
        "request": encode_task_request(task.request),
        "state": task.state.name,
        "allocated_nodes": nodes,
        "start_time": task.start_time,
        "completion_time": task.completion_time,
        "resource_name": task.resource_name,
    }


def decode_task(data: Dict[str, Any], applications: Applications) -> Task:
    """Inverse of :func:`encode_task`.

    Private attributes are set directly: lifecycle transitions validate
    *changes*, but a restore re-materialises a past state verbatim.
    """
    task = Task(int(data["task_id"]), decode_task_request(data["request"], applications))
    try:
        task._state = TaskState[data["state"]]
    except KeyError:
        raise CheckpointError(f"unknown task state {data['state']!r}") from None
    nodes = data["allocated_nodes"]
    task._allocated_nodes = None if nodes is None else tuple(int(n) for n in nodes)
    start = data["start_time"]
    task._start_time = None if start is None else float(start)
    completion = data["completion_time"]
    task._completion_time = None if completion is None else float(completion)
    resource = data["resource_name"]
    task._resource_name = None if resource is None else str(resource)
    return task
