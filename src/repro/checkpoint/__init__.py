"""Deterministic checkpoint/restore fabric.

A checkpoint captures every piece of mutable run state — the event heap,
RNG stream positions, scheduler queues and bookings, agent registries,
in-flight messages, portal timers, and the experiment driver's own
progress — as one versioned, checksummed snapshot file.  Restoring
rebuilds the grid from its :class:`~repro.experiments.config.ExperimentConfig`
and rewinds every component, after which the run continues **byte-identical**
to an uninterrupted one: same completion records, same metrics, same golden
trace, same final RNG digest.

See ``docs/checkpointing.md`` for the format and guarantees.
"""

from repro.checkpoint.format import (
    FORMAT_NAME,
    FORMAT_VERSION,
    read_snapshot,
    write_snapshot,
)
from repro.checkpoint.snapshot import restore_system, snapshot_system

__all__ = [
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "read_snapshot",
    "write_snapshot",
    "snapshot_system",
    "restore_system",
]
