"""Protocol payloads: service records, request envelopes, results.

These are the bodies of the ADVERTISE / REQUEST / RESULT messages.  They
live in :mod:`repro.net` (not :mod:`repro.agents`) because both the agents
*and* a stand-alone scheduler endpoint speak this protocol — the paper's
scheduler "can be received directly from a user when the system functions
independently or from an agent" (§2.2).  :mod:`repro.agents` re-exports
them under their paper-facing names.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.errors import ValidationError
from repro.net.message import Endpoint
from repro.net.xmlio import parse_service_info, service_info_to_xml
from repro.tasks.task import Environment, TaskRequest

__all__ = [
    "ServiceInfo",
    "RequestEnvelope",
    "TaskResult",
    "KinInfo",
    "BidInfo",
    "ReservationGrant",
    "TransferPayload",
]


@dataclass(frozen=True)
class ServiceInfo:
    """One resource's advertised service description (Fig. 5).

    ``freetime`` is an absolute virtual time; a value in the past simply
    means the resource is free now (consumers clamp to their own clock).
    """

    agent_endpoint: Endpoint
    scheduler_endpoint: Endpoint
    hardware_type: str
    nproc: int
    environments: Tuple[Environment, ...]
    freetime: float

    def __post_init__(self) -> None:
        if not self.hardware_type:
            raise ValidationError("hardware_type must be non-empty")
        if self.nproc < 1:
            raise ValidationError(f"nproc must be >= 1, got {self.nproc}")
        if not self.environments:
            raise ValidationError("service must list at least one environment")

    def supports(self, environment: Environment) -> bool:
        """Whether the resource provides *environment*."""
        return environment in self.environments

    def with_freetime(self, freetime: float) -> "ServiceInfo":
        """A copy carrying an updated freetime estimate."""
        return ServiceInfo(
            self.agent_endpoint,
            self.scheduler_endpoint,
            self.hardware_type,
            self.nproc,
            self.environments,
            freetime,
        )

    # -------------------------------------------------------------------- XML

    def to_xml(self) -> str:
        """Render as the Fig. 5 document."""
        return service_info_to_xml(
            {
                "agent_address": self.agent_endpoint.address,
                "agent_port": self.agent_endpoint.port,
                "local_address": self.scheduler_endpoint.address,
                "local_port": self.scheduler_endpoint.port,
                "type": self.hardware_type,
                "nproc": self.nproc,
                "environments": [e.value for e in self.environments],
                "freetime": self.freetime,
            }
        )

    @classmethod
    def from_xml(cls, document: str) -> "ServiceInfo":
        """Parse a Fig. 5 document."""
        fields = parse_service_info(document)
        return cls(
            agent_endpoint=Endpoint(fields["agent_address"], fields["agent_port"]),
            scheduler_endpoint=Endpoint(
                fields["local_address"], fields["local_port"]
            ),
            hardware_type=fields["type"],
            nproc=fields["nproc"],
            environments=tuple(Environment.parse(e) for e in fields["environments"]),
            freetime=fields["freetime"],
        )


@dataclass(frozen=True)
class RequestEnvelope:
    """A request travelling the grid, with routing bookkeeping (Fig. 6).

    ``trace`` records the stations visited — the experiments use it to
    study dispatch behaviour; ``reply_to`` is the portal endpoint results
    return to.
    """

    request_id: int
    request: TaskRequest
    reply_to: Endpoint
    trace: Tuple[str, ...] = ()

    def visited(self, station: str) -> "RequestEnvelope":
        """A copy with *station* appended to the trace."""
        return replace(self, trace=self.trace + (station,))


@dataclass(frozen=True)
class KinInfo:
    """Next-of-kin knowledge a coordinator piggybacks on child heartbeats.

    The paper's agents are "only aware of neighbouring agents", so an
    orphaned subtree would have no repair target when its coordinator dies.
    Each parent→child HEARTBEAT therefore carries the two hops of context
    self-healing needs: the sender's own parent (the child's *grandparent*)
    and the sender's full children list in its canonical order (the child's
    *siblings*, eldest first).  Both are (name, endpoint) pairs.
    """

    parent: str
    grandparent: Optional[Tuple[str, Endpoint]]
    siblings: Tuple[Tuple[str, Endpoint], ...]

    def eldest(self) -> Optional[Tuple[str, Endpoint]]:
        """The first sibling in the parent's children order, if any."""
        return self.siblings[0] if self.siblings else None


@dataclass(frozen=True)
class BidInfo:
    """A sealed completion-time bid answering an auction CFP.

    ``eta`` is the bidder's eq.-(10) completion estimate at bidding time;
    ``supported`` is ``False`` when the bidder cannot run the request at
    all (it still answers, so the auctioneer's pending set drains without
    waiting out the bid timeout).
    """

    request_id: int
    eta: float
    supported: bool


@dataclass(frozen=True)
class ReservationGrant:
    """A booked freetime window confirming an advance reservation.

    ``start``/``end`` bound the slot the granting agent holds for
    ``request_id`` until the booker's forwarded REQUEST consumes it, a
    RELEASE relinquishes it, or the window expires.
    """

    request_id: int
    start: float
    end: float


@dataclass(frozen=True)
class TransferPayload:
    """One workflow input staging in: a parent's output moving to a cluster.

    The consuming agent sends this to **itself** through the transport
    with the serialisation delay (``size / bandwidth``) as extra latency,
    so data movement rides the same delivery, fault, and checkpoint
    machinery as every protocol message.  On arrival the input is marked
    present for the gated local task ``task_id``.
    """

    workflow_id: int
    node: str      # the consuming (child) node's name
    parent: str    # the producing node's name
    source: str    # resource name the output is pulled from
    size: float    # data units moved
    task_id: int   # the local task id awaiting this input


@dataclass(frozen=True)
class TaskResult:
    """Execution outcome posted back to the submitter."""

    request_id: int
    application: str
    success: bool
    resource_name: str = ""
    submit_time: float = 0.0
    start_time: float = 0.0
    completion_time: float = 0.0
    deadline: float = 0.0
    trace: Tuple[str, ...] = ()

    @property
    def advance_time(self) -> float:
        """δ − η; positive when the deadline was met (eq. 11 term)."""
        return self.deadline - self.completion_time

    @property
    def met_deadline(self) -> bool:
        """Whether the task finished by its deadline."""
        return self.success and self.completion_time <= self.deadline
