"""Deterministic fault injection for the message transport (Experiment 4).

The paper's agent hierarchy (§3) assumes a benign LAN: agents stay up and
every message is delivered.  This module injects the failures a deployed
grid would face — message loss, latency jitter, timed network partitions,
and agent churn — while keeping every run exactly replayable:

* A :class:`FaultPlan` owns its **own** seeded RNG stream (created from the
  experiment's :class:`~repro.utils.rng.RngRegistry` under the
  ``"fault-injection"`` name).  The scheduler/GA streams are never touched,
  so a faulty run perturbs *what the grid sees*, not *how it decides*.
* The plan draws from that stream **only when a draw can change the
  outcome**: with every probability at exactly zero and no jitter, a plan
  consumes no randomness and the transport behaves byte-identically to a
  run with no plan installed at all (property-tested).
* Partition windows are purely clock-driven — no randomness — so a given
  plan drops exactly the same crossings on every replay.

:class:`ChurnSchedule` is the agent-level counterpart: a precomputed list
of crash/restart times that the simulation engine executes by calling
``Agent.deactivate()`` / ``Agent.reactivate()``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.net.message import Endpoint, Message

__all__ = [
    "LinkFault",
    "PartitionWindow",
    "StragglerFault",
    "FaultPlanSpec",
    "FaultVerdict",
    "FaultPlan",
    "ChurnSpec",
    "ChurnEvent",
    "ChurnSchedule",
]

#: Name of the portal in fault-plan specs (endpoints are resolved by name).
PORTAL_NAME = "portal"


def _check_probability(value: float, name: str) -> float:
    if not 0.0 <= value <= 1.0:
        raise ValidationError(f"{name} must be in [0, 1], got {value}")
    return float(value)


@dataclass(frozen=True)
class LinkFault:
    """A per-link drop probability overriding the plan-wide default.

    ``src``/``dst`` are *names* (agent names, or ``"portal"``); the live
    plan resolves them to endpoints when installed on a built grid.  The
    override is directional: ``LinkFault("S1", "S2", 1.0)`` black-holes
    S1→S2 sends while S2→S1 still follows the plan default.
    """

    src: str
    dst: str
    drop_probability: float

    def __post_init__(self) -> None:
        if not self.src or not self.dst:
            raise ValidationError("link fault endpoints must be non-empty names")
        _check_probability(self.drop_probability, "link drop_probability")


@dataclass(frozen=True)
class PartitionWindow:
    """A timed partition: messages crossing the two groups are dropped.

    During ``[start, end)`` any message with its sender in one group and
    its recipient in the other is dropped — both directions, no randomness.
    Messages within a group (or touching neither group) are unaffected.
    """

    start: float
    end: float
    group_a: Tuple[str, ...]
    group_b: Tuple[str, ...]

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValidationError(
                f"partition window end {self.end} must be after start {self.start}"
            )
        if not self.group_a or not self.group_b:
            raise ValidationError("partition groups must be non-empty")
        if set(self.group_a) & set(self.group_b):
            raise ValidationError("partition groups must be disjoint")


@dataclass(frozen=True)
class StragglerFault:
    """A grey failure: one node that is *slow*, not dead.

    ``node`` is an agent name.  Two multiplicative degradations apply:

    * **response delay** — every message the node sends arrives
      ``uniform(0.5, 1.5) × response_delay`` seconds late (drawn per send
      from the fault RNG stream).  Heartbeats straggle with everything
      else, which is exactly what forces the failure detector to
      distinguish slow from dead.
    * **service factor** — tasks *executing* on the node's resource run
      ``service_factor ×`` slower than their PACE prediction (applied via
      the execution engine's background-load hook), so schedules built
      from clean predictions quietly miss deadlines.
    """

    node: str
    response_delay: float = 0.0
    service_factor: float = 1.0

    def __post_init__(self) -> None:
        if not self.node:
            raise ValidationError("straggler node must be a non-empty name")
        if self.response_delay < 0:
            raise ValidationError(
                f"response_delay must be >= 0, got {self.response_delay}"
            )
        if self.service_factor < 1.0:
            raise ValidationError(
                f"service_factor must be >= 1, got {self.service_factor}"
            )

    @property
    def is_noop(self) -> bool:
        """Whether this straggler cannot affect anything."""
        return self.response_delay == 0.0 and self.service_factor == 1.0


@dataclass(frozen=True)
class FaultPlanSpec:
    """A picklable, seed-free description of the faults to inject.

    The spec travels inside :class:`~repro.experiments.config.ExperimentConfig`
    (it must pickle across the process-parallel fabric); the live
    :class:`FaultPlan` is materialised per run with that run's own RNG
    stream, so a spec is reusable across seeds.
    """

    drop_probability: float = 0.0
    latency_jitter: float = 0.0
    link_faults: Tuple[LinkFault, ...] = ()
    partitions: Tuple[PartitionWindow, ...] = ()
    stragglers: Tuple[StragglerFault, ...] = ()

    def __post_init__(self) -> None:
        _check_probability(self.drop_probability, "drop_probability")
        if self.latency_jitter < 0:
            raise ValidationError(
                f"latency_jitter must be >= 0, got {self.latency_jitter}"
            )
        # Tolerate lists (e.g. parsed from JSON) by normalising to tuples.
        object.__setattr__(self, "link_faults", tuple(self.link_faults))
        object.__setattr__(self, "partitions", tuple(self.partitions))
        object.__setattr__(self, "stragglers", tuple(self.stragglers))
        nodes = [s.node for s in self.stragglers]
        if len(nodes) != len(set(nodes)):
            raise ValidationError("straggler nodes must be distinct")

    @property
    def is_noop(self) -> bool:
        """Whether this plan can never affect a message."""
        return (
            self.drop_probability == 0.0
            and self.latency_jitter == 0.0
            and all(f.drop_probability == 0.0 for f in self.link_faults)
            and not self.partitions
            and all(s.is_noop for s in self.stragglers)
        )

    def service_factor_for(self, node: str) -> float:
        """Execution-slowdown factor for *node* (1.0 when not a straggler).

        Consulted at grid-build time: the runner installs a constant
        background-load profile on the node's local scheduler so its tasks
        run ``factor ×`` slower than predicted.
        """
        for straggler in self.stragglers:
            if straggler.node == node:
                return straggler.service_factor
        return 1.0

    # --------------------------------------------------------------- JSON I/O

    def to_json(self, *, indent: int = 2) -> str:
        """Serialise for ``repro.cli experiment4 --fault-plan``."""
        return json.dumps(asdict(self), indent=indent)

    @classmethod
    def from_json(cls, document: str) -> "FaultPlanSpec":
        """Parse a ``--fault-plan`` JSON document.

        Expected shape (all keys optional)::

            {"drop_probability": 0.1,
             "latency_jitter": 0.5,
             "link_faults": [{"src": "S1", "dst": "S2", "drop_probability": 1.0}],
             "partitions": [{"start": 100, "end": 200,
                             "group_a": ["S1"], "group_b": ["S2", "S3"]}],
             "stragglers": [{"node": "S7", "response_delay": 3.0,
                             "service_factor": 2.0}]}
        """
        try:
            raw = json.loads(document)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"invalid fault-plan JSON: {exc}") from exc
        if not isinstance(raw, dict):
            raise ValidationError("fault-plan JSON must be an object")
        known = {
            "drop_probability",
            "latency_jitter",
            "link_faults",
            "partitions",
            "stragglers",
        }
        unknown = set(raw) - known
        if unknown:
            raise ValidationError(f"unknown fault-plan keys: {sorted(unknown)}")
        links = tuple(
            LinkFault(
                src=str(e["src"]),
                dst=str(e["dst"]),
                drop_probability=float(e["drop_probability"]),
            )
            for e in raw.get("link_faults", ())
        )
        partitions = tuple(
            PartitionWindow(
                start=float(e["start"]),
                end=float(e["end"]),
                group_a=tuple(str(n) for n in e["group_a"]),
                group_b=tuple(str(n) for n in e["group_b"]),
            )
            for e in raw.get("partitions", ())
        )
        stragglers = tuple(
            StragglerFault(
                node=str(e["node"]),
                response_delay=float(e.get("response_delay", 0.0)),
                service_factor=float(e.get("service_factor", 1.0)),
            )
            for e in raw.get("stragglers", ())
        )
        return cls(
            drop_probability=float(raw.get("drop_probability", 0.0)),
            latency_jitter=float(raw.get("latency_jitter", 0.0)),
            link_faults=links,
            partitions=partitions,
            stragglers=stragglers,
        )


@dataclass(frozen=True)
class FaultVerdict:
    """What the plan decided for one send."""

    drop: bool
    extra_latency: float = 0.0
    reason: str = ""


# The shared "nothing happens" verdict — the overwhelmingly common case.
_DELIVER = FaultVerdict(drop=False)


class FaultPlan:
    """A live fault injector bound to one run's endpoints and RNG stream.

    Parameters
    ----------
    spec:
        The fault description.
    rng:
        The plan's private random stream.  Drawn from **only** when a draw
        can change the outcome (an effective drop probability > 0, or a
        positive jitter), so a zero plan is bit-for-bit inert.
    endpoints:
        Name → endpoint resolution for link faults and partitions (agent
        names plus ``"portal"``).  Names used by the spec but missing here
        raise at construction, not mid-run.
    """

    def __init__(
        self,
        spec: FaultPlanSpec,
        rng: Optional[np.random.Generator] = None,
        endpoints: Optional[Mapping[str, Endpoint]] = None,
    ) -> None:
        needs_rng = (
            spec.drop_probability > 0.0
            or spec.latency_jitter > 0.0
            or any(f.drop_probability > 0.0 for f in spec.link_faults)
            or any(s.response_delay > 0.0 for s in spec.stragglers)
        )
        if needs_rng and rng is None:
            # Partition-only plans are purely clock-driven and need none.
            raise ValidationError("stochastic fault plans require an rng")
        self._spec = spec
        self._rng = rng
        names = dict(endpoints or {})
        self._link_drop: Dict[Tuple[Endpoint, Endpoint], float] = {}
        for fault in spec.link_faults:
            self._link_drop[
                (self._resolve(names, fault.src), self._resolve(names, fault.dst))
            ] = fault.drop_probability
        self._partitions: List[
            Tuple[float, float, FrozenSet[Endpoint], FrozenSet[Endpoint]]
        ] = [
            (
                window.start,
                window.end,
                frozenset(self._resolve(names, n) for n in window.group_a),
                frozenset(self._resolve(names, n) for n in window.group_b),
            )
            for window in spec.partitions
        ]
        self._straggler_delay: Dict[Endpoint, float] = {
            self._resolve(names, s.node): s.response_delay
            for s in spec.stragglers
            if s.response_delay > 0.0
        }
        self.dropped_by_chance = 0
        self.dropped_by_partition = 0
        self.jittered = 0
        self.straggled = 0

    @staticmethod
    def _resolve(names: Mapping[str, Endpoint], name: str) -> Endpoint:
        try:
            return names[name]
        except KeyError:
            raise ValidationError(
                f"fault plan names unknown participant {name!r} "
                f"(known: {sorted(names)})"
            ) from None

    @property
    def spec(self) -> FaultPlanSpec:
        """The spec this plan was built from."""
        return self._spec

    @property
    def dropped_count(self) -> int:
        """Total messages this plan dropped (chance + partition)."""
        return self.dropped_by_chance + self.dropped_by_partition

    def reset_counters(self) -> None:
        """Zero the attribution counters (the rng stream is untouched)."""
        self.dropped_by_chance = 0
        self.dropped_by_partition = 0
        self.jittered = 0
        self.straggled = 0

    def on_send(self, message: Message, now: float) -> FaultVerdict:
        """Decide one send's fate; called by the transport for every message.

        Partition checks run first and consume no randomness; a chance
        drop and jitter draw happen only when their parameters are
        positive, preserving byte-identity for zero plans.
        """
        sender, recipient = message.sender, message.recipient
        for start, end, group_a, group_b in self._partitions:
            if start <= now < end and (
                (sender in group_a and recipient in group_b)
                or (sender in group_b and recipient in group_a)
            ):
                self.dropped_by_partition += 1
                return FaultVerdict(drop=True, reason="partition")
        probability = self._link_drop.get(
            (sender, recipient), self._spec.drop_probability
        )
        if probability > 0.0:
            assert self._rng is not None
            if self._rng.random() < probability:
                self.dropped_by_chance += 1
                return FaultVerdict(drop=True, reason="loss")
        extra = 0.0
        reasons: List[str] = []
        delay = self._straggler_delay.get(sender, 0.0)
        if delay > 0.0:
            assert self._rng is not None
            extra += float(self._rng.uniform(0.5, 1.5)) * delay
            self.straggled += 1
            reasons.append("straggler")
        if self._spec.latency_jitter > 0.0:
            assert self._rng is not None
            extra += float(self._rng.uniform(0.0, self._spec.latency_jitter))
            self.jittered += 1
            reasons.append("jitter")
        if extra > 0.0:
            return FaultVerdict(drop=False, extra_latency=extra, reason="+".join(reasons))
        return _DELIVER


# ---------------------------------------------------------------------- churn


@dataclass(frozen=True)
class ChurnSpec:
    """A picklable description of agent churn for one run.

    ``rate`` is the fraction of eligible agents that crash exactly once
    during the request phase (0 = no churn, 1 = every eligible agent).
    Crash instants are drawn uniformly inside ``window`` (fractions of the
    request-phase horizon); each crashed agent restarts ``downtime``
    seconds later.  The hierarchy head is excluded by default — losing the
    escalation root turns every measurement into a study of the head, not
    of churn.
    """

    rate: float = 0.0
    downtime: float = 60.0
    window: Tuple[float, float] = (0.1, 0.6)
    exclude_head: bool = True
    #: Which agents may be chosen: ``"any"`` (default, the pre-targeting
    #: behaviour), ``"coordinators"`` (agents with children — the
    #: self-healing stressor), or ``"leaves"`` (agents without children).
    target: str = "any"

    def __post_init__(self) -> None:
        _check_probability(self.rate, "churn rate")
        if self.downtime <= 0:
            raise ValidationError(f"downtime must be > 0, got {self.downtime}")
        lo, hi = self.window
        if not (0.0 <= lo < hi <= 1.0):
            raise ValidationError(f"window must satisfy 0 <= lo < hi <= 1, got {self.window}")
        if self.target not in ("any", "coordinators", "leaves"):
            raise ValidationError(
                f"target must be 'any', 'coordinators' or 'leaves', got {self.target!r}"
            )


@dataclass(frozen=True)
class ChurnEvent:
    """One lifecycle transition the sim engine will execute."""

    time: float
    agent: str
    action: str  # "crash" | "restart"

    def __post_init__(self) -> None:
        if self.action not in ("crash", "restart"):
            raise ValidationError(f"unknown churn action {self.action!r}")
        if self.time < 0:
            raise ValidationError(f"churn event time must be >= 0, got {self.time}")


class ChurnSchedule:
    """A deterministic, pre-drawn sequence of crash/restart events.

    The schedule is generated *before* the run from its own RNG stream
    (``"churn"``), so churn-event times never interleave with — and can
    never perturb — the scheduler or workload streams.
    """

    def __init__(self, events: Sequence[ChurnEvent]) -> None:
        self._events = sorted(events, key=lambda e: (e.time, e.agent, e.action))

    @property
    def events(self) -> List[ChurnEvent]:
        """All events in firing order (copy)."""
        return list(self._events)

    @property
    def crash_count(self) -> int:
        """Number of crash events."""
        return sum(1 for e in self._events if e.action == "crash")

    @property
    def restart_count(self) -> int:
        """Number of restart events."""
        return sum(1 for e in self._events if e.action == "restart")

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    @classmethod
    def generate(
        cls,
        agent_names: Sequence[str],
        spec: ChurnSpec,
        horizon: float,
        rng: np.random.Generator,
        *,
        head: Optional[str] = None,
        coordinators: Optional[Sequence[str]] = None,
    ) -> "ChurnSchedule":
        """Draw a schedule for *agent_names* over ``[0, horizon]``.

        ``round(rate × eligible)`` distinct agents are chosen (eligible =
        all names minus the head when ``exclude_head``); each receives one
        crash uniformly inside the spec's window and one restart
        ``downtime`` seconds later.  Same ``(names, spec, horizon, stream)``
        → same schedule, independent of everything else in the run.

        When the spec targets ``"coordinators"`` or ``"leaves"``, the
        caller must pass *coordinators* (the names of agents with
        children) and eligibility is further restricted to that role.
        """
        if horizon <= 0:
            raise ValidationError(f"horizon must be > 0, got {horizon}")
        eligible = [n for n in agent_names if not (spec.exclude_head and n == head)]
        if spec.target != "any":
            if coordinators is None:
                raise ValidationError(
                    f"churn target {spec.target!r} requires the coordinator set"
                )
            roles = set(coordinators)
            if spec.target == "coordinators":
                eligible = [n for n in eligible if n in roles]
            else:
                eligible = [n for n in eligible if n not in roles]
        count = int(round(spec.rate * len(eligible)))
        if count == 0:
            return cls([])
        chosen_idx = rng.choice(len(eligible), size=count, replace=False)
        lo, hi = spec.window
        events: List[ChurnEvent] = []
        for idx in sorted(int(i) for i in chosen_idx):
            name = eligible[idx]
            crash_at = float(rng.uniform(lo * horizon, hi * horizon))
            events.append(ChurnEvent(crash_at, name, "crash"))
            events.append(ChurnEvent(crash_at + spec.downtime, name, "restart"))
        return cls(events)
