"""XML serialisation matching the paper's templates (Figs. 5–6).

The original agents exchange XML documents; Fig. 5 shows the service-
information template and Fig. 6 the request template.  These functions
produce and parse documents with exactly those element names, so the
formats round-trip; timestamps use the paper's ``ctime`` style via
:mod:`repro.utils.timefmt`.

The functions speak plain dictionaries — the agent layer maps its
dataclasses onto them — keeping this module dependency-free below
:mod:`repro.agents`.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Any, Dict, List, Sequence

from repro.errors import SerializationError
from repro.utils.timefmt import format_timestamp, parse_timestamp

__all__ = [
    "service_info_to_xml",
    "parse_service_info",
    "request_to_xml",
    "parse_request",
]


def _text(parent: ET.Element, tag: str, value: str) -> ET.Element:
    el = ET.SubElement(parent, tag)
    el.text = value
    return el


def _require(root: ET.Element, path: str) -> str:
    el = root.find(path)
    if el is None or el.text is None:
        raise SerializationError(f"missing element {path!r}")
    return el.text.strip()


def service_info_to_xml(info: Dict[str, Any]) -> str:
    """Render a service-information record as the Fig. 5 document.

    Expected keys: ``agent_address``, ``agent_port``, ``local_address``,
    ``local_port``, ``type``, ``nproc``, ``environments`` (sequence of
    names) and ``freetime`` (virtual seconds).
    """
    try:
        root = ET.Element("agentgrid", {"type": "service"})
        agent = ET.SubElement(root, "agent")
        _text(agent, "address", str(info["agent_address"]))
        _text(agent, "port", str(int(info["agent_port"])))
        local = ET.SubElement(root, "local")
        _text(local, "address", str(info["local_address"]))
        _text(local, "port", str(int(info["local_port"])))
        _text(local, "type", str(info["type"]))
        _text(local, "nproc", str(int(info["nproc"])))
        for env in info["environments"]:
            _text(local, "environment", str(env))
        _text(local, "freetime", format_timestamp(float(info["freetime"])))
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"bad service info record: {exc}") from exc
    return ET.tostring(root, encoding="unicode")


def parse_service_info(document: str) -> Dict[str, Any]:
    """Parse a Fig. 5 document back into a service-information dict."""
    root = _parse_root(document, "service")
    environments: List[str] = [
        el.text.strip()
        for el in root.findall("local/environment")
        if el.text is not None
    ]
    if not environments:
        raise SerializationError("service info lists no environments")
    return {
        "agent_address": _require(root, "agent/address"),
        "agent_port": int(_require(root, "agent/port")),
        "local_address": _require(root, "local/address"),
        "local_port": int(_require(root, "local/port")),
        "type": _require(root, "local/type"),
        "nproc": int(_require(root, "local/nproc")),
        "environments": environments,
        "freetime": parse_timestamp(_require(root, "local/freetime")),
    }


def request_to_xml(request: Dict[str, Any]) -> str:
    """Render an execution request as the Fig. 6 document.

    Expected keys: ``name``, ``binary_file``, ``input_file``,
    ``model_name``, ``environment``, ``deadline`` (virtual seconds) and
    ``email``.
    """
    try:
        root = ET.Element("agentgrid", {"type": "request"})
        app = ET.SubElement(root, "application")
        _text(app, "name", str(request["name"]))
        binary = ET.SubElement(app, "binary")
        _text(binary, "file", str(request["binary_file"]))
        _text(binary, "inputfile", str(request["input_file"]))
        perf = ET.SubElement(app, "performance")
        _text(perf, "datatype", "pacemodel")
        _text(perf, "modelname", str(request["model_name"]))
        req = ET.SubElement(root, "requirement")
        _text(req, "environment", str(request["environment"]))
        _text(req, "deadline", format_timestamp(float(request["deadline"])))
        _text(root, "email", str(request["email"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"bad request record: {exc}") from exc
    return ET.tostring(root, encoding="unicode")


def parse_request(document: str) -> Dict[str, Any]:
    """Parse a Fig. 6 document back into a request dict."""
    root = _parse_root(document, "request")
    datatype = _require(root, "application/performance/datatype")
    if datatype != "pacemodel":
        raise SerializationError(f"unsupported performance datatype {datatype!r}")
    return {
        "name": _require(root, "application/name"),
        "binary_file": _require(root, "application/binary/file"),
        "input_file": _require(root, "application/binary/inputfile"),
        "model_name": _require(root, "application/performance/modelname"),
        "environment": _require(root, "requirement/environment"),
        "deadline": parse_timestamp(_require(root, "requirement/deadline")),
        "email": _require(root, "email"),
    }


def _parse_root(document: str, expected_type: str) -> ET.Element:
    try:
        root = ET.fromstring(document)
    except ET.ParseError as exc:
        raise SerializationError(f"malformed XML: {exc}") from exc
    if root.tag != "agentgrid":
        raise SerializationError(f"unexpected root element {root.tag!r}")
    if root.get("type") != expected_type:
        raise SerializationError(
            f"expected agentgrid type={expected_type!r}, got {root.get('type')!r}"
        )
    return root
