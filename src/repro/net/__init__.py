"""Communication substrate: typed messages, XML templates, in-memory transport."""

from repro.net.faults import (
    ChurnEvent,
    ChurnSchedule,
    ChurnSpec,
    FaultPlan,
    FaultPlanSpec,
    LinkFault,
    PartitionWindow,
)
from repro.net.message import Endpoint, Message, MessageKind
from repro.net.payloads import RequestEnvelope, ServiceInfo, TaskResult
from repro.net.transport import Transport
from repro.net.xmlio import (
    parse_request,
    parse_service_info,
    request_to_xml,
    service_info_to_xml,
)

__all__ = [
    "ChurnEvent",
    "ChurnSchedule",
    "ChurnSpec",
    "FaultPlan",
    "FaultPlanSpec",
    "LinkFault",
    "PartitionWindow",
    "Endpoint",
    "Message",
    "MessageKind",
    "RequestEnvelope",
    "ServiceInfo",
    "TaskResult",
    "Transport",
    "parse_request",
    "parse_service_info",
    "request_to_xml",
    "service_info_to_xml",
]
