"""Typed messages exchanged between agents, portals, and schedulers.

The original system spoke XML over TCP between Java agents; the message
*types* here mirror the protocol the paper describes: execution requests
travel down the discovery path (Fig. 6), results return to the user, and
service advertisements flow between neighbouring agents (Fig. 5) either
unsolicited (push) or in reply to a pull.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import TransportError

__all__ = [
    "Endpoint",
    "MessageKind",
    "Message",
    "next_message_id",
    "peek_message_counter",
    "set_message_counter",
]

# Process-wide message-id source.  A plain int (not itertools.count) so a
# checkpoint can capture and restore it: post-resume sends must mint the
# same ids as the uninterrupted run, or the transport's in-flight table —
# keyed and snapshot-ordered by message id — diverges between a resumed
# and an uninterrupted run.
_next_message_id = 0


def next_message_id() -> int:
    """Mint the next globally unique message id."""
    global _next_message_id
    value = _next_message_id
    _next_message_id += 1
    return value


def peek_message_counter() -> int:
    """The id the next message will be assigned (checkpoint support)."""
    return _next_message_id


def set_message_counter(value: int) -> None:
    """Reset the id source so the next message gets *value* (restore support)."""
    global _next_message_id
    if value < 0:
        raise TransportError(f"message counter must be >= 0, got {value}")
    _next_message_id = int(value)


@dataclass(frozen=True, order=True, slots=True)
class Endpoint:
    """A network identity: the (address, port) tuple of Figs. 5–6."""

    address: str
    port: int

    def __post_init__(self) -> None:
        if not self.address:
            raise TransportError("endpoint address must be non-empty")
        if not (0 < self.port < 65536):
            raise TransportError(f"endpoint port out of range: {self.port}")

    def __str__(self) -> str:
        return f"{self.address}:{self.port}"


class MessageKind(enum.Enum):
    """Protocol message types."""

    REQUEST = "request"      # an execution request (Fig. 6) seeking a resource
    RESULT = "result"        # execution outcome returned to the submitter
    ADVERTISE = "advertise"  # service information (Fig. 5), pushed or pulled
    PULL = "pull"            # ask a neighbour for its current service info
    ACK = "ack"              # receipt of a REQUEST (resilience layer only)
    HEARTBEAT = "heartbeat"  # liveness beacon between linked agents (membership)
    ADOPT = "adopt"          # orphaned agent asks a new parent to take it in
    ADOPTED = "adopted"      # adopter's confirmation closing the re-parenting
    CFP = "cfp"              # call-for-proposals opening an auction (policy layer)
    BID = "bid"              # sealed completion-time bid answering a CFP
    RESERVE = "reserve"      # ask a neighbour to book a future freetime window
    CONFIRM = "confirm"      # reservation granted (carries the booked window)
    REJECT = "reject"        # reservation declined (no feasible window)
    RELEASE = "release"      # booker relinquishes a previously granted window
    TRANSFER = "transfer"    # staged-in workflow input arriving at a cluster


@dataclass(frozen=True, slots=True)
class Message:
    """One transported message.

    ``payload`` is kind-specific: a request record, a task summary, or a
    service-information record.  ``hops`` counts discovery forwards so a
    request cannot circulate indefinitely.

    Slotted: a scaled grid keeps tens of thousands of messages in flight,
    and per-instance dicts dominated their footprint (see the
    ``engine_event_alloc`` micro-benchmark).
    """

    kind: MessageKind
    sender: Endpoint
    recipient: Endpoint
    payload: Any
    hops: int = 0
    message_id: int = field(default_factory=next_message_id)

    def forwarded(self, sender: Endpoint, recipient: Endpoint) -> "Message":
        """A copy routed onward with the hop count incremented."""
        return Message(
            kind=self.kind,
            sender=sender,
            recipient=recipient,
            payload=self.payload,
            hops=self.hops + 1,
        )
