"""In-memory message transport over the simulation engine.

Replaces the original system's TCP sockets (see DESIGN.md §2): endpoints
register a handler under their (address, port) identity; ``send`` delivers
the message through the discrete-event engine after a configurable latency
(default 0, matching the paper's LAN-scale deployment where network delay
is negligible against 1-second request intervals).

Delivery is asynchronous even at zero latency — the handler runs in its own
event — so agent logic never re-enters itself, exactly like a real
single-threaded message loop.
"""

from __future__ import annotations

from collections import deque
from functools import partial
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import TransportError
from repro.net.faults import FaultPlan
from repro.net.message import Endpoint, Message, MessageKind
from repro.obs.records import MessageDelivered, MessageDropped, MessageSent
from repro.obs.trace import Tracer
from repro.sim.engine import Engine
from repro.sim.events import DEFAULT_LANE, EventHandle, Priority
from repro.utils.validation import check_non_negative

__all__ = ["Transport", "DEFAULT_DROP_RING_SIZE"]

Handler = Callable[[Message], None]

#: How many recently dropped messages are retained for debugging.  Drops
#: are *counted* without bound; only the message objects are ring-buffered
#: (a long churny run used to accumulate every dropped Message forever).
DEFAULT_DROP_RING_SIZE = 32

# One interned delivery label per message kind.  Labels used to embed the
# message id (``deliver-request-123``), minting a fresh string per send —
# measurable churn at scaled-grid message volumes (see ``bench_alloc``).
# The id adds nothing: delivery events already close over their Message,
# and the labels are observational only (``sim.event`` records are
# non-canonical, so the format is free to change).
_DELIVER_LABELS: Dict[MessageKind, str] = {
    kind: f"deliver-{kind.value}" for kind in MessageKind
}


class Transport:
    """Routes messages between registered endpoints via the sim engine.

    Parameters
    ----------
    sim:
        The discrete-event engine.
    latency:
        Seconds between send and delivery (applied to every message).
    fault_plan:
        Optional :class:`~repro.net.faults.FaultPlan` consulted on every
        send; ``None`` (default) is the faultless seed behaviour.
    drop_ring_size:
        How many recently dropped messages to retain for inspection.
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`; when set, every send,
        delivery, and drop (with fault attribution) is recorded.
    """

    def __init__(
        self,
        sim: Engine,
        *,
        latency: float = 0.0,
        fault_plan: Optional[FaultPlan] = None,
        drop_ring_size: int = DEFAULT_DROP_RING_SIZE,
        tracer: Optional[Tracer] = None,
    ) -> None:
        check_non_negative(latency, "latency")
        if drop_ring_size < 1:
            raise TransportError(f"drop_ring_size must be >= 1, got {drop_ring_size}")
        self._sim = sim
        self._latency = float(latency)
        self._fault_plan = fault_plan
        self._handlers: Dict[Endpoint, Handler] = {}
        self._sent = 0
        self._delivered = 0
        self._dropped_count = 0
        self._fault_dropped_count = 0
        self._drop_ring: Deque[Message] = deque(maxlen=drop_ring_size)
        # Messages accepted by send() whose delivery event has not yet
        # fired, keyed by message id.  Checkpoints serialise these so a
        # restored run re-delivers exactly what was on the wire.
        self._in_flight: Dict[int, Tuple[Message, EventHandle]] = {}
        # Endpoint -> event-lane routing for delivery events.  Intra-cluster
        # messages land in the cluster's own lane; anything else (including
        # endpoints never assigned a lane) goes to the cross-cluster lane.
        # Purely a partitioning hint — delivery order is lane-independent.
        self._endpoint_lanes: Dict[Endpoint, str] = {}
        self._taps: List[Callable[[Message], None]] = []
        self._tracer = tracer

    # ------------------------------------------------------------------ state

    @property
    def latency(self) -> float:
        """Per-message delivery latency in seconds."""
        return self._latency

    @property
    def sent(self) -> int:
        """Messages accepted for delivery."""
        return self._sent

    @property
    def delivered(self) -> int:
        """Messages handed to handlers."""
        return self._delivered

    @property
    def dropped_count(self) -> int:
        """Total messages dropped because their endpoint was unregistered."""
        return self._dropped_count

    @property
    def fault_dropped_count(self) -> int:
        """Total messages dropped by the installed fault plan."""
        return self._fault_dropped_count

    @property
    def dropped_recent(self) -> List[Message]:
        """The last few dropped messages, oldest first (bounded copy)."""
        return list(self._drop_ring)

    @property
    def fault_plan(self) -> Optional[FaultPlan]:
        """The installed fault plan, if any."""
        return self._fault_plan

    def set_fault_plan(self, plan: Optional[FaultPlan]) -> None:
        """Install (or clear) the fault plan consulted on every send."""
        self._fault_plan = plan

    def endpoints(self) -> List[Endpoint]:
        """Registered endpoints, sorted."""
        return sorted(self._handlers)

    # -------------------------------------------------------------- lifecycle

    def register(self, endpoint: Endpoint, handler: Handler) -> None:
        """Bind *handler* to *endpoint*; rebinding an endpoint is an error."""
        if endpoint in self._handlers:
            raise TransportError(f"endpoint {endpoint} already registered")
        self._handlers[endpoint] = handler

    def unregister(self, endpoint: Endpoint) -> None:
        """Remove an endpoint; in-flight messages to it will be dropped."""
        if endpoint not in self._handlers:
            raise TransportError(f"endpoint {endpoint} not registered")
        del self._handlers[endpoint]

    def is_registered(self, endpoint: Endpoint) -> bool:
        """Whether *endpoint* currently has a handler."""
        return endpoint in self._handlers

    def tap(self, observer: Callable[[Message], None]) -> None:
        """Observe every delivered message (tracing/tests)."""
        self._taps.append(observer)

    def assign_lane(self, endpoint: Endpoint, lane: str) -> None:
        """Route future deliveries involving *endpoint* through *lane*.

        A message whose sender and recipient share a lane is delivered in
        that lane; every other message — inter-cluster traffic, or traffic
        touching an unassigned endpoint — is delivered in the cross-cluster
        lane.  Lane assignment never changes delivery order (the engine
        merges lanes under the global ``(time, priority, sequence)`` key);
        it only keeps intra-cluster traffic out of the shared heap.
        """
        self._endpoint_lanes[endpoint] = lane

    def _delivery_lane(self, message: Message) -> str:
        lanes = self._endpoint_lanes
        recipient_lane = lanes.get(message.recipient, DEFAULT_LANE)
        if recipient_lane != DEFAULT_LANE and (
            lanes.get(message.sender, DEFAULT_LANE) == recipient_lane
        ):
            return recipient_lane
        return DEFAULT_LANE

    # ------------------------------------------------------------------- send

    def send(self, message: Message, *, extra_latency: float = 0.0) -> None:
        """Queue *message* for delivery after the transport latency.

        Parameters
        ----------
        message:
            The message to deliver.
        extra_latency:
            Additional seconds on top of the base transport latency for
            this one message — the serialisation delay of a bulk payload
            (workflow data staging charges ``size / bandwidth`` here).
            Fault-plan jitter stacks on top.

        Raises
        ------
        TransportError
            If the recipient endpoint is not registered at send time.
        """
        check_non_negative(extra_latency, "extra_latency")
        if message.recipient not in self._handlers:
            raise TransportError(
                f"no endpoint registered at {message.recipient} "
                f"(message {message.kind.value} from {message.sender})"
            )
        self._sent += 1
        if self._tracer is not None:
            self._tracer.emit(
                MessageSent(
                    t=self._sim.now,
                    msg=message.kind.value,
                    sender=str(message.sender),
                    recipient=str(message.recipient),
                    hops=message.hops,
                )
            )
        if self._fault_plan is not None:
            verdict = self._fault_plan.on_send(message, self._sim.now)
            if verdict.drop:
                # Silent loss: the sender believes the send succeeded —
                # exactly the failure mode ack timeouts exist to detect.
                self._fault_dropped_count += 1
                self._drop_ring.append(message)
                if self._tracer is not None:
                    self._tracer.emit(self._drop_record(message, verdict.reason))
                return
            extra_latency += verdict.extra_latency
        handle = self._sim.schedule_in(
            self._latency + extra_latency,
            partial(self._deliver, message),
            priority=Priority.DEFAULT,
            label=_DELIVER_LABELS[message.kind],
            lane=self._delivery_lane(message),
        )
        self._in_flight[message.message_id] = (message, handle)

    def _deliver(self, message: Message) -> None:
        self._in_flight.pop(message.message_id, None)
        handler = self._handlers.get(message.recipient)
        if handler is None:
            self._dropped_count += 1
            self._drop_ring.append(message)
            if self._tracer is not None:
                self._tracer.emit(self._drop_record(message, "unregistered"))
            return
        self._delivered += 1
        if self._tracer is not None:
            self._tracer.emit(
                MessageDelivered(
                    t=self._sim.now,
                    msg=message.kind.value,
                    sender=str(message.sender),
                    recipient=str(message.recipient),
                    hops=message.hops,
                )
            )
        for tap in self._taps:
            tap(message)
        handler(message)

    def _drop_record(self, message: Message, reason: str) -> MessageDropped:
        return MessageDropped(
            t=self._sim.now,
            msg=message.kind.value,
            sender=str(message.sender),
            recipient=str(message.recipient),
            hops=message.hops,
            reason=reason,
        )

    # ------------------------------------------------------------- checkpoint

    def snapshot_state(self) -> dict:
        """Counters, the drop ring, in-flight messages, and fault attribution.

        Endpoint registrations are *not* serialised — they are re-created by
        rebuilding the grid (and adjusted by each agent's own restore for
        crashed agents).  The fault plan's RNG position is covered by the
        run's :class:`~repro.utils.rng.RngRegistry` snapshot.
        """
        from repro.checkpoint.codec import encode_message

        state = {
            "sent": self._sent,
            "delivered": self._delivered,
            "dropped_count": self._dropped_count,
            "fault_dropped_count": self._fault_dropped_count,
            "drop_ring": [encode_message(m) for m in self._drop_ring],
            "in_flight": [
                {
                    "message": encode_message(message),
                    "event": handle.descriptor(),
                }
                for _, (message, handle) in sorted(self._in_flight.items())
                if not handle.cancelled
            ],
        }
        if self._fault_plan is not None:
            state["fault_plan"] = {
                "dropped_by_chance": self._fault_plan.dropped_by_chance,
                "dropped_by_partition": self._fault_plan.dropped_by_partition,
                "jittered": self._fault_plan.jittered,
            }
        return state

    def restore_state(self, state: dict, *, applications) -> None:
        """Rewind counters and re-create every in-flight delivery event.

        *applications* maps application names to the rebuilt grid's
        :class:`~repro.pace.application.ApplicationModel` instances, so
        in-flight REQUEST payloads share model identity with the
        schedulers that will evaluate them.
        """
        from repro.checkpoint.codec import decode_message

        self._sent = int(state["sent"])
        self._delivered = int(state["delivered"])
        self._dropped_count = int(state["dropped_count"])
        self._fault_dropped_count = int(state["fault_dropped_count"])
        self._drop_ring.clear()
        for raw in state["drop_ring"]:
            self._drop_ring.append(decode_message(raw, applications))
        for _, (_, handle) in list(self._in_flight.items()):
            handle.cancel()
        self._in_flight.clear()
        for entry in state["in_flight"]:
            message = decode_message(entry["message"], applications)
            handle = self._sim.restore_event(
                entry["event"], lambda m=message: self._deliver(m)
            )
            self._in_flight[message.message_id] = (message, handle)
        plan_state = state.get("fault_plan")
        if plan_state is not None and self._fault_plan is not None:
            self._fault_plan.dropped_by_chance = int(plan_state["dropped_by_chance"])
            self._fault_plan.dropped_by_partition = int(
                plan_state["dropped_by_partition"]
            )
            self._fault_plan.jittered = int(plan_state["jittered"])

    # ------------------------------------------------------------------ reset

    def reset_counters(self) -> None:
        """Zero every stateful counter and the drop ring.

        Covers the sent/delivered/dropped tallies, the bounded ring of
        recent drops, and — because its counters are part of the same
        observable surface — the installed fault plan's attribution
        counters.  Endpoint registrations and the fault plan itself are
        configuration, not state, and survive the reset.
        """
        self._sent = 0
        self._delivered = 0
        self._dropped_count = 0
        self._fault_dropped_count = 0
        self._drop_ring.clear()
        if self._fault_plan is not None:
            self._fault_plan.reset_counters()
