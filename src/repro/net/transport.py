"""In-memory message transport over the simulation engine.

Replaces the original system's TCP sockets (see DESIGN.md §2): endpoints
register a handler under their (address, port) identity; ``send`` delivers
the message through the discrete-event engine after a configurable latency
(default 0, matching the paper's LAN-scale deployment where network delay
is negligible against 1-second request intervals).

Delivery is asynchronous even at zero latency — the handler runs in its own
event — so agent logic never re-enters itself, exactly like a real
single-threaded message loop.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import TransportError
from repro.net.message import Endpoint, Message
from repro.sim.engine import Engine
from repro.sim.events import Priority
from repro.utils.validation import check_non_negative

__all__ = ["Transport"]

Handler = Callable[[Message], None]


class Transport:
    """Routes messages between registered endpoints via the sim engine.

    Parameters
    ----------
    sim:
        The discrete-event engine.
    latency:
        Seconds between send and delivery (applied to every message).
    """

    def __init__(self, sim: Engine, *, latency: float = 0.0) -> None:
        check_non_negative(latency, "latency")
        self._sim = sim
        self._latency = float(latency)
        self._handlers: Dict[Endpoint, Handler] = {}
        self._sent = 0
        self._delivered = 0
        self._dropped: List[Message] = []
        self._taps: List[Callable[[Message], None]] = []

    # ------------------------------------------------------------------ state

    @property
    def latency(self) -> float:
        """Per-message delivery latency in seconds."""
        return self._latency

    @property
    def sent(self) -> int:
        """Messages accepted for delivery."""
        return self._sent

    @property
    def delivered(self) -> int:
        """Messages handed to handlers."""
        return self._delivered

    @property
    def dropped(self) -> List[Message]:
        """Messages whose endpoint unregistered before delivery (copy)."""
        return list(self._dropped)

    def endpoints(self) -> List[Endpoint]:
        """Registered endpoints, sorted."""
        return sorted(self._handlers)

    # -------------------------------------------------------------- lifecycle

    def register(self, endpoint: Endpoint, handler: Handler) -> None:
        """Bind *handler* to *endpoint*; rebinding an endpoint is an error."""
        if endpoint in self._handlers:
            raise TransportError(f"endpoint {endpoint} already registered")
        self._handlers[endpoint] = handler

    def unregister(self, endpoint: Endpoint) -> None:
        """Remove an endpoint; in-flight messages to it will be dropped."""
        if endpoint not in self._handlers:
            raise TransportError(f"endpoint {endpoint} not registered")
        del self._handlers[endpoint]

    def is_registered(self, endpoint: Endpoint) -> bool:
        """Whether *endpoint* currently has a handler."""
        return endpoint in self._handlers

    def tap(self, observer: Callable[[Message], None]) -> None:
        """Observe every delivered message (tracing/tests)."""
        self._taps.append(observer)

    # ------------------------------------------------------------------- send

    def send(self, message: Message) -> None:
        """Queue *message* for delivery after the transport latency.

        Raises
        ------
        TransportError
            If the recipient endpoint is not registered at send time.
        """
        if message.recipient not in self._handlers:
            raise TransportError(
                f"no endpoint registered at {message.recipient} "
                f"(message {message.kind.value} from {message.sender})"
            )
        self._sent += 1
        self._sim.schedule_in(
            self._latency,
            lambda: self._deliver(message),
            priority=Priority.DEFAULT,
            label=f"deliver-{message.kind.value}-{message.message_id}",
        )

    def _deliver(self, message: Message) -> None:
        handler = self._handlers.get(message.recipient)
        if handler is None:
            self._dropped.append(message)
            return
        self._delivered += 1
        for tap in self._taps:
            tap(message)
        handler(message)
