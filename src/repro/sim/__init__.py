"""Discrete-event simulation substrate (virtual-time test mode, §4.1)."""

from repro.sim.engine import Engine
from repro.sim.events import Event, EventHandle, Priority
from repro.sim.process import PeriodicProcess, delayed

__all__ = ["Engine", "Event", "EventHandle", "Priority", "PeriodicProcess", "delayed"]
