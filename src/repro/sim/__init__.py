"""Discrete-event simulation substrate (virtual-time test mode, §4.1)."""

from repro.sim.engine import Engine, EngineLane
from repro.sim.events import DEFAULT_LANE, Event, EventHandle, Priority
from repro.sim.process import PeriodicProcess, delayed
from repro.sim.reference import SingleHeapEngine

__all__ = [
    "DEFAULT_LANE",
    "Engine",
    "EngineLane",
    "Event",
    "EventHandle",
    "Priority",
    "PeriodicProcess",
    "SingleHeapEngine",
    "delayed",
]
