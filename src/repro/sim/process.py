"""Process helpers layered on the engine: periodic and one-shot activities.

Agents pull service information every 10 seconds and the resource monitor
polls hosts every 5 minutes (§2.2, §4.1); :class:`PeriodicProcess` models
exactly that pattern — a fixed-interval callback with start/stop control.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import SimulationError
from repro.sim.engine import Engine
from repro.sim.events import EventHandle, Priority
from repro.utils.validation import check_positive

__all__ = ["PeriodicProcess", "delayed"]


class PeriodicProcess:
    """A callback fired at a fixed virtual-time interval.

    Parameters
    ----------
    engine:
        The simulation engine to schedule on.
    interval:
        Seconds between firings.
    callback:
        Zero-argument callable invoked each period.
    priority:
        Event priority band (see :class:`~repro.sim.events.Priority`).
    fire_immediately:
        If true, the first firing happens at ``start()`` time rather than
        one interval later.
    label:
        Debug label attached to scheduled events.
    """

    def __init__(
        self,
        engine: Engine,
        interval: float,
        callback: Callable[[], None],
        *,
        priority: int = Priority.DEFAULT,
        fire_immediately: bool = False,
        label: str = "periodic",
    ) -> None:
        check_positive(interval, "interval")
        self._engine = engine
        self._interval = float(interval)
        self._callback = callback
        self._priority = priority
        self._fire_immediately = fire_immediately
        self._label = label
        self._handle: Optional[EventHandle] = None
        self._running = False
        self._fired = 0

    @property
    def running(self) -> bool:
        """Whether the process is currently scheduled."""
        return self._running

    @property
    def fired(self) -> int:
        """Number of times the callback has fired."""
        return self._fired

    @property
    def interval(self) -> float:
        """The firing interval in virtual seconds."""
        return self._interval

    def start(self) -> None:
        """Begin periodic firing; idempotent if already running."""
        if self._running:
            return
        self._running = True
        delay = 0.0 if self._fire_immediately else self._interval
        self._handle = self._engine.schedule_in(
            delay, self._fire, priority=self._priority, label=self._label
        )

    def stop(self) -> None:
        """Stop firing; pending occurrence is cancelled.  Idempotent."""
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        if not self._running:
            return
        self._fired += 1
        self._callback()
        # Re-arm only if the callback did not stop the process.
        if self._running:
            self._handle = self._engine.schedule_in(
                self._interval, self._fire, priority=self._priority, label=self._label
            )

    # ------------------------------------------------------------- checkpoint

    def snapshot_state(self) -> dict:
        """Running flag, firing count, and the pending occurrence, if any."""
        pending = None
        if self._handle is not None and not self._handle.cancelled:
            pending = self._handle.descriptor()
        return {"running": self._running, "fired": self._fired, "pending": pending}

    def restore_state(self, state: dict) -> None:
        """Re-arm from a snapshot without firing.

        The pending occurrence is re-created with its original event
        identity (see :meth:`Engine.restore_event`); a stopped process stays
        stopped with no event scheduled.
        """
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None
        self._running = bool(state["running"])
        self._fired = int(state["fired"])
        pending = state.get("pending")
        if pending is not None:
            self._handle = self._engine.restore_event(pending, self._fire)


def delayed(
    engine: Engine,
    delay: float,
    callback: Callable[[], None],
    *,
    priority: int = Priority.DEFAULT,
    label: str = "delayed",
) -> EventHandle:
    """Schedule a one-shot callback after *delay* seconds; returns its handle."""
    if delay < 0:
        raise SimulationError(f"delay must be >= 0, got {delay}")
    return engine.schedule_in(delay, callback, priority=priority, label=label)
