"""The single-heap reference engine — the pre-partitioning implementation.

This is the seed engine preserved verbatim in behaviour: one global binary
heap of :class:`~repro.sim.events.Event` objects ordered by
``Event.__lt__`` over ``(time, priority, sequence)``, with lazy-deleted
cancellations and no compaction.  It exists for two reasons:

* **Correctness oracle.**  The lane-partitioned :class:`~repro.sim.engine.
  Engine` must fire events in exactly this engine's order; the equivalence
  property suite runs paper-scale experiments on both and requires
  byte-identical completion records, metrics JSON, canonical traces, and
  RNG digests (the same reference-oracle pattern the GA kernels use).
* **Perf baseline.**  The ``engine_events_per_s`` benchmark measures the
  partitioned engine against this one at 1000-agent scale, so the speedup
  claimed in BENCH_PERF.json is versus the real seed implementation, not a
  strawman.

It accepts the partitioned engine's full surface — ``lane=`` keywords and
``lane_view`` — so ``build_grid`` can swap engines via
``ExperimentConfig.engine`` with no call-site branching; lanes are recorded
on events (descriptors round-trip through checkpoints) but play no part in
ordering, which is the whole point.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Callable, Dict, Iterator, List, Optional

from repro.errors import SimulationError
from repro.obs.records import EventFired
from repro.sim.events import DEFAULT_LANE, Event, EventHandle, Priority

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.obs.trace import Tracer

__all__ = ["SingleHeapEngine"]


class _ReferenceLane:
    """Purely delegating lane facade for the reference engine.

    The partitioned :class:`~repro.sim.engine.EngineLane` replicates its
    engine's scheduling internals as a single-frame fast path, so it cannot
    front this engine; components only duck-type the view surface, so this
    plain delegator is interchangeable at every call site.
    """

    __slots__ = ("_engine", "_lane")

    def __init__(self, engine: "SingleHeapEngine", lane: str) -> None:
        self._engine = engine
        self._lane = lane

    @property
    def now(self) -> float:
        """The current virtual time in seconds."""
        return self._engine.now

    @property
    def lane(self) -> str:
        """The lane name this view schedules into (inert here)."""
        return self._lane

    @property
    def engine(self) -> "SingleHeapEngine":
        """The underlying engine (for run control and checkpointing)."""
        return self._engine

    @property
    def tracer(self) -> Optional["Tracer"]:
        """The tracer event dispatch is reported to, if any."""
        return self._engine.tracer

    def schedule(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = Priority.DEFAULT,
        label: str = "",
    ) -> EventHandle:
        """Schedule *callback* at absolute virtual *time* in this lane."""
        return self._engine.schedule(
            time, callback, priority=priority, label=label, lane=self._lane
        )

    def schedule_in(
        self,
        delay: float,
        callback: Callable[[], None],
        priority: int = Priority.DEFAULT,
        label: str = "",
    ) -> EventHandle:
        """Schedule *callback* after *delay* virtual seconds in this lane."""
        return self._engine.schedule_in(
            delay, callback, priority=priority, label=label, lane=self._lane
        )

    def restore_event(
        self, descriptor: dict, callback: Callable[[], None]
    ) -> EventHandle:
        """Restore a checkpointed event, defaulting lane-less descriptors here."""
        return self._engine.restore_event(
            descriptor, callback, default_lane=self._lane
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_ReferenceLane(lane={self._lane!r}, engine={self._engine!r})"


class SingleHeapEngine:
    """The original global-heap discrete-event engine (reference oracle).

    Examples
    --------
    >>> eng = SingleHeapEngine()
    >>> fired = []
    >>> _ = eng.schedule(5.0, lambda: fired.append(eng.now))
    >>> _ = eng.schedule(1.0, lambda: fired.append(eng.now))
    >>> eng.run()
    2
    >>> fired
    [1.0, 5.0]
    """

    def __init__(
        self, start_time: float = 0.0, *, tracer: Optional["Tracer"] = None
    ) -> None:
        self._start_time = float(start_time)
        self._now = float(start_time)
        self._heap: List[Event] = []
        self._views: Dict[str, _ReferenceLane] = {}
        self._sequence = 0
        self._running = False
        self._fired = 0
        self._pending = 0
        self._tracer = tracer

    # ------------------------------------------------------------------ state

    @property
    def now(self) -> float:
        """The current virtual time in seconds."""
        return self._now

    @property
    def tracer(self) -> Optional["Tracer"]:
        """The tracer event dispatch is reported to, if any."""
        return self._tracer

    @property
    def pending(self) -> int:
        """Number of events still queued, excluding cancelled ones — O(1)."""
        return self._pending

    @property
    def fired_count(self) -> int:
        """Total number of events that have fired."""
        return self._fired

    @property
    def heap_size(self) -> int:
        """Entries in the global heap, including lazy-deleted garbage."""
        return len(self._heap)

    @property
    def lane_count(self) -> int:
        """Distinct lanes among queued events (informational only here)."""
        return len({e.lane for e in self._heap if not e.cancelled})

    def __len__(self) -> int:
        return self.pending

    # -------------------------------------------------------------- scheduling

    def schedule(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        priority: int = Priority.DEFAULT,
        label: str = "",
        lane: str = DEFAULT_LANE,
    ) -> EventHandle:
        """Schedule *callback* at absolute virtual *time* (*lane* is recorded
        on the event for descriptor parity but never affects ordering)."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time} before current time t={self._now}"
            )
        event = Event(
            float(time),
            priority,
            self._sequence,
            callback,
            label,
            lane=lane,
            on_cancel=self._on_event_cancelled,
        )
        self._sequence += 1
        heapq.heappush(self._heap, event)
        self._pending += 1
        return EventHandle(event)

    def schedule_in(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        priority: int = Priority.DEFAULT,
        label: str = "",
        lane: str = DEFAULT_LANE,
    ) -> EventHandle:
        """Schedule *callback* after a relative *delay* in virtual seconds."""
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        return self.schedule(
            self._now + delay, callback, priority=priority, label=label, lane=lane
        )

    def restore_event(
        self,
        descriptor: dict,
        callback: Callable[[], None],
        *,
        default_lane: str = DEFAULT_LANE,
    ) -> EventHandle:
        """Re-create a checkpointed event with its **original** identity."""
        time = float(descriptor["time"])
        sequence = int(descriptor["sequence"])
        if time < self._now:
            raise SimulationError(
                f"cannot restore event at t={time} before current time t={self._now}"
            )
        if sequence >= self._sequence:
            raise SimulationError(
                f"restored event sequence {sequence} not below engine "
                f"sequence counter {self._sequence}"
            )
        event = Event(
            time,
            int(descriptor["priority"]),
            sequence,
            callback,
            str(descriptor.get("label", "")),
            lane=str(descriptor.get("lane", default_lane)),
            on_cancel=self._on_event_cancelled,
        )
        heapq.heappush(self._heap, event)
        self._pending += 1
        return EventHandle(event)

    def lane_view(self, lane: str) -> _ReferenceLane:
        """Lane facade for API parity; lanes are inert in this engine."""
        view = self._views.get(lane)
        if view is None:
            view = self._views[lane] = _ReferenceLane(self, lane)
        return view

    # ------------------------------------------------------------- checkpoint

    def snapshot_state(self) -> dict:
        """Clock and counter state (events are snapshot by their owners)."""
        return {
            "now": self._now,
            "start_time": self._start_time,
            "sequence": self._sequence,
            "fired": self._fired,
        }

    def restore_state(self, state: dict) -> None:
        """Rewind to a snapshot; pending events must be restored afterwards."""
        self._guard_reentrancy()
        self._heap.clear()
        self._pending = 0
        self._start_time = float(state["start_time"])
        self._now = float(state["now"])
        self._sequence = int(state["sequence"])
        self._fired = int(state["fired"])

    # ------------------------------------------------------------------- run

    def step(self) -> bool:
        """Fire the single next non-cancelled event."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue  # already uncounted by the cancellation hook
            event.fired = True
            self._pending -= 1
            self._now = event.time
            self._fired += 1
            if self._tracer is not None:
                self._tracer.emit(
                    EventFired(
                        t=event.time,
                        label=event.label,
                        priority=int(event.priority),
                        seq=event.sequence,
                    )
                )
            event.callback()
            return True
        return False

    def run_until(self, end_time: float) -> None:
        """Fire every event with ``time <= end_time``; advance the clock to it."""
        if end_time < self._now:
            raise SimulationError(
                f"cannot run to t={end_time}, already at t={self._now}"
            )
        self._guard_reentrancy()
        self._running = True
        try:
            while self._heap:
                head = self._peek()
                if head is None or head.time > end_time:
                    break
                self.step()
            self._now = float(end_time)
        finally:
            self._running = False

    def run(self, max_events: Optional[int] = None) -> int:
        """Fire events until the queue drains (or *max_events* fire)."""
        self._guard_reentrancy()
        self._running = True
        fired = 0
        try:
            while self.step():
                fired += 1
                if max_events is not None and fired >= max_events:
                    break
        finally:
            self._running = False
        return fired

    def reset(self) -> None:
        """Return the engine to its just-constructed state."""
        self._guard_reentrancy()
        self._heap.clear()
        self._now = self._start_time
        self._sequence = 0
        self._fired = 0
        self._pending = 0

    # --------------------------------------------------------------- helpers

    def _on_event_cancelled(self) -> None:
        """Event.cancel hook: keep the live pending count exact."""
        self._pending -= 1

    def _peek(self) -> Optional[Event]:
        """Return the next non-cancelled event without popping it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0] if self._heap else None

    def next_event_time(self) -> Optional[float]:
        """Virtual time of the next pending event, or ``None`` if empty."""
        head = self._peek()
        return head.time if head is not None else None

    def _guard_reentrancy(self) -> None:
        if self._running:
            raise SimulationError("engine is already running (reentrant run call)")

    def iter_labels(self) -> Iterator[str]:
        """Labels of pending events, in heap (not firing) order — debug aid."""
        return (e.label for e in self._heap if not e.cancelled)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SingleHeapEngine(now={self._now:.3f}, "
            f"pending={self.pending}, fired={self._fired})"
        )
