"""The lane-partitioned discrete-event simulation engine.

The paper's experiments ran a live system in *test mode*: tasks were never
executed; predicted times were booked against the clock as if real.  This
engine reproduces that mode in virtual time — requests arrive at virtual
seconds, schedulers book predicted execution intervals, agents pull service
information on periodic timers — and makes every run deterministic and far
faster than real time.

Design notes
------------
* Events are totally ordered by ``(time, priority, sequence)``; the
  monotonically increasing sequence number breaks ties by insertion order,
  so replays are exact.
* Instead of one global heap, events are partitioned into **lanes** — one
  sub-heap per cluster (agent), plus the default lane ``""`` which doubles
  as the cross-cluster lane for inter-agent message deliveries.  Each lane
  heap holds plain ``(time, priority, sequence, event)`` tuples, which
  compare in C; a small **lane-head index** heap of
  ``(time, priority, sequence, lane)`` entries merges the lane heads.  The
  index advances conservatively: an entry is only trusted after it is
  checked against its lane's live head, so the engine always fires the
  globally smallest key.  Firing order is therefore *identical* to a single
  global heap regardless of how events are assigned to lanes — lanes are a
  performance partitioning, never a semantic one (property-tested for
  byte-identity against :class:`repro.sim.reference.SingleHeapEngine`).
* The index tolerates stale entries (a lane's head moved since the entry
  was pushed).  Liveness invariant: whenever a lane's head key changes —
  on a head-lowering schedule, after a fire, or when a cancelled head is
  swept — the new head key is (re-)pushed.  Stale entries are discarded or
  replaced on pop; each consumes the pop that found it, so the index never
  grows beyond one entry per schedule/fire and stays a few live entries
  per non-empty lane in practice.
* Cancelled events are lazy-deleted but **compacted**: a live garbage
  counter (maintained by the ``Event.on_cancel`` hook and the pop-time
  sweeps) triggers an in-place rebuild of all lane heaps once cancelled
  entries both exceed :data:`COMPACT_MIN` and outnumber live pending
  events, so schedule/cancel loops cannot grow the heaps without bound.
* Scheduling an event in the past raises :class:`SimulationError` (a
  virtual clock can only move forward).
* ``run_until`` / ``run`` drain the lanes; callbacks may schedule further
  events, including at the current instant.
"""

from __future__ import annotations

import heapq
from heapq import heappop, heappush, heapreplace
from typing import TYPE_CHECKING, Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import SimulationError
from repro.obs.records import EventFired
from repro.sim.events import DEFAULT_LANE, Event, Priority

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.obs.trace import Tracer

__all__ = ["Engine", "EngineLane", "COMPACT_MIN"]

#: Minimum number of cancelled-but-queued events before compaction is even
#: considered; below this the lazy-delete garbage is cheaper than a rebuild.
COMPACT_MIN = 64

# A lane heap entry: (time, priority, sequence, event).  Sequence is unique
# across the engine, so entry keys never tie and the event object is never
# compared.
_LaneEntry = Tuple[float, int, int, Event]

# Bare allocator for the lane-view fast paths, which fill Event slots inline
# instead of paying the ``Event.__init__`` call frame.
_new_event = object.__new__


class Engine:
    """A deterministic, lane-partitioned discrete-event simulation engine.

    The public API is lane-agnostic — ``schedule`` defaults to the
    cross-cluster lane and behaves exactly like a single global heap.
    Components that belong to one cluster schedule through a
    :meth:`lane_view`, which pre-binds their lane name.

    Examples
    --------
    >>> eng = Engine()
    >>> fired = []
    >>> _ = eng.schedule(5.0, lambda: fired.append(eng.now))
    >>> _ = eng.schedule(1.0, lambda: fired.append(eng.now))
    >>> eng.run()
    2
    >>> fired
    [1.0, 5.0]
    """

    def __init__(
        self, start_time: float = 0.0, *, tracer: Optional["Tracer"] = None
    ) -> None:
        self._start_time = float(start_time)
        self._now = float(start_time)
        # lane name -> heap of (time, priority, sequence, event) tuples.
        self._lanes: Dict[str, List[_LaneEntry]] = {}
        # Merge heap of (time, priority, sequence, lane) lane-head entries;
        # may contain stale entries, resolved lazily against the lane heads.
        self._index: List[Tuple[float, int, int, str]] = []
        self._views: Dict[str, "EngineLane"] = {}
        self._sequence = 0
        self._running = False
        self._fired = 0
        # Live count of non-cancelled queued events.  Maintained on
        # schedule/fire/cancel (the Event.on_cancel hook) so ``pending`` —
        # called inside hot run loops via ``__len__`` — is O(1) instead of
        # an O(n) heap scan.
        self._pending = 0
        # Cancelled events still sitting in lane heaps.  Incremented by the
        # cancel hook, decremented by the pop-time sweeps, zeroed by
        # compaction — drives the bounded-garbage guarantee.
        self._garbage = 0
        self._tracer = tracer
        # One bound method shared by every event instead of a fresh bound
        # method per ``schedule`` call (an allocation on the hottest path).
        self._cancel_hook = self._on_event_cancelled
        # Lane whose event callback is currently executing inside the fused
        # ``run`` loop, or ``None``.  While set, head-lowering pushes into
        # that lane skip the index publish: the run loop republishes the
        # lane's final head once, after the callback returns, which turns a
        # same-instant dispatch cascade's index churn (publish + stale
        # discard per fire) into a single root refresh.
        self._firing_lane: Optional[str] = None

    # ------------------------------------------------------------------ state

    @property
    def now(self) -> float:
        """The current virtual time in seconds."""
        return self._now

    @property
    def tracer(self) -> Optional["Tracer"]:
        """The tracer event dispatch is reported to, if any."""
        return self._tracer

    @property
    def pending(self) -> int:
        """Number of events still queued, excluding cancelled ones — O(1)."""
        return self._pending

    @property
    def fired_count(self) -> int:
        """Total number of events that have fired."""
        return self._fired

    @property
    def heap_size(self) -> int:
        """Total entries across all lane heaps, *including* cancelled garbage.

        The compaction regression test asserts this stays bounded under
        schedule/cancel loops; ``heap_size - pending`` is the current
        lazy-delete garbage.
        """
        return sum(len(heap) for heap in self._lanes.values())

    @property
    def lane_count(self) -> int:
        """Number of lanes that currently hold at least one queued entry."""
        return sum(1 for heap in self._lanes.values() if heap)

    def __len__(self) -> int:
        return self.pending

    # -------------------------------------------------------------- scheduling

    def schedule(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        priority: int = Priority.DEFAULT,
        label: str = "",
        lane: str = DEFAULT_LANE,
    ) -> Event:
        """Schedule *callback* at absolute virtual *time* in *lane*.

        Raises
        ------
        SimulationError
            If *time* precedes the current virtual time.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time} before current time t={self._now}"
            )
        sequence = self._sequence
        self._sequence = sequence + 1
        time = float(time)
        event = Event(
            time, priority, sequence, callback, label, lane, self._cancel_hook
        )
        # _push, inlined: schedule is the engine's hottest entry point.
        lanes = self._lanes
        heap = lanes.get(lane)
        if heap is None:
            heap = lanes[lane] = []
        heappush(heap, (time, priority, sequence, event))
        if heap[0][3] is event and lane is not self._firing_lane:
            # The event became its lane's head: publish the new head key so
            # the merge index sees it before any older (larger) entry.  The
            # lane currently firing (identity check — a mismatch merely
            # publishes a discardable duplicate) is exempt: the run loop
            # republishes its head after the callback returns.
            heappush(self._index, (time, priority, sequence, lane))
        self._pending += 1
        return event

    def schedule_in(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        priority: int = Priority.DEFAULT,
        label: str = "",
        lane: str = DEFAULT_LANE,
    ) -> Event:
        """Schedule *callback* after a relative *delay* in virtual seconds."""
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        # schedule(), inlined: one frame instead of two on a path hot
        # enough to show in every grid benchmark (``delay >= 0`` already
        # implies the absolute time is not in the past).
        time = self._now + delay
        sequence = self._sequence
        self._sequence = sequence + 1
        event = Event(
            time, priority, sequence, callback, label, lane, self._cancel_hook
        )
        lanes = self._lanes
        heap = lanes.get(lane)
        if heap is None:
            heap = lanes[lane] = []
        heappush(heap, (time, priority, sequence, event))
        if heap[0][3] is event and lane is not self._firing_lane:
            heappush(self._index, (time, priority, sequence, lane))
        self._pending += 1
        return event

    def restore_event(
        self,
        descriptor: dict,
        callback: Callable[[], None],
        *,
        default_lane: str = DEFAULT_LANE,
    ) -> Event:
        """Re-create a checkpointed event with its **original** identity.

        Unlike :meth:`schedule`, the sequence number comes from the
        *descriptor* (captured by :meth:`EventHandle.descriptor` at snapshot
        time) rather than the engine counter, so the restored heap fires in
        exactly the order the interrupted run would have.  Must only be
        called after :meth:`restore_state` has set the clock and sequence
        counter; the descriptor's sequence must predate the restored counter.

        Descriptors written before lanes existed carry no ``lane`` key and
        restore into *default_lane* (a :class:`EngineLane` passes its own
        lane); firing order is lane-independent, so either way the resumed
        run replays identically.
        """
        time = float(descriptor["time"])
        sequence = int(descriptor["sequence"])
        if time < self._now:
            raise SimulationError(
                f"cannot restore event at t={time} before current time t={self._now}"
            )
        if sequence >= self._sequence:
            raise SimulationError(
                f"restored event sequence {sequence} not below engine "
                f"sequence counter {self._sequence}"
            )
        event = Event(
            time,
            int(descriptor["priority"]),
            sequence,
            callback,
            str(descriptor.get("label", "")),
            str(descriptor.get("lane", default_lane)),
            self._cancel_hook,
        )
        self._push(event)
        self._pending += 1
        return event

    def lane_view(self, lane: str) -> "EngineLane":
        """A scheduling facade with *lane* pre-bound (cached per lane name).

        Cluster-local components hold a lane view instead of the engine, so
        their timers, completions, and retries land in their own sub-heap
        without any call-site changes — the view exposes the same ``now`` /
        ``schedule`` / ``schedule_in`` / ``restore_event`` surface.
        """
        view = self._views.get(lane)
        if view is None:
            view = self._views[lane] = EngineLane(self, lane)
        return view

    # ------------------------------------------------------------- checkpoint

    def snapshot_state(self) -> dict:
        """Clock and counter state (events are snapshot by their owners).

        Every pending event is owned by exactly one component (transport
        in-flight registry, executor completion handles, periodic processes,
        …) which serialises its descriptor and re-creates it on restore;
        the engine itself only carries the clock, the sequence counter, and
        the fired total.  Lane contents are likewise rebuilt from the
        owners' descriptors, which carry each event's lane.
        """
        return {
            "now": self._now,
            "start_time": self._start_time,
            "sequence": self._sequence,
            "fired": self._fired,
        }

    def restore_state(self, state: dict) -> None:
        """Rewind to a snapshot; pending events must be restored afterwards.

        Discards any queued events (a freshly built system has only
        construction-time events, all superseded by the snapshot's
        descriptors) and resets the clock/counters so subsequent
        :meth:`restore_event` calls rebuild the lanes exactly.
        """
        self._guard_reentrancy()
        # Clear lane lists in place — lane views hold direct references to
        # them (and to the index list), so the bound objects must survive.
        for heap in self._lanes.values():
            heap.clear()
        self._index.clear()
        self._pending = 0
        self._garbage = 0
        self._start_time = float(state["start_time"])
        self._now = float(state["now"])
        self._sequence = int(state["sequence"])
        self._fired = int(state["fired"])

    # ------------------------------------------------------------------- run

    def step(self) -> bool:
        """Fire the single next non-cancelled event (globally smallest key).

        Returns ``True`` if an event fired, ``False`` if all lanes drained.
        """
        head = self._settle()
        if head is None:
            return False
        lanes = self._lanes
        index = self._index
        lane = index[0][3]
        heap = lanes[lane]
        heapq.heappop(heap)
        if heap:
            nxt = heap[0]
            refreshed = (nxt[0], nxt[1], nxt[2], lane)
            # Same root-replacement shortcut as the fused ``run`` loop: the
            # consumed entry is the root, so an in-place write is valid
            # whenever the lane's new head key is <= both children.
            n = len(index)
            if (n < 2 or refreshed <= index[1]) and (
                n < 3 or refreshed <= index[2]
            ):
                index[0] = refreshed
            else:
                heapq.heapreplace(index, refreshed)
        else:
            heapq.heappop(index)
        event = head[3]
        event.fired = True
        self._pending -= 1
        self._now = head[0]
        self._fired += 1
        if self._tracer is not None:
            self._tracer.emit(
                EventFired(
                    t=head[0],
                    label=event.label,
                    priority=int(head[1]),
                    seq=head[2],
                )
            )
        event.callback()
        return True

    def run_until(self, end_time: float) -> None:
        """Fire every event with ``time <= end_time``; advance the clock to it.

        The clock finishes at exactly *end_time* even if the last event fired
        earlier, mirroring a real system observed at a fixed horizon.
        """
        if end_time < self._now:
            raise SimulationError(
                f"cannot run to t={end_time}, already at t={self._now}"
            )
        self._guard_reentrancy()
        self._running = True
        try:
            while True:
                head = self._settle()
                if head is None or head[0] > end_time:
                    break
                self.step()
            self._now = float(end_time)
        finally:
            self._running = False

    def run(self, max_events: Optional[int] = None) -> int:
        """Fire events until the lanes drain (or *max_events* fire).

        Returns the number of events fired by this call.

        This is the fused hot loop: it replicates :meth:`step`'s
        settle → pop → fire cycle inline with everything in locals, which
        is worth ~2x over calling ``step()`` per event (``step`` stays for
        drivers that need per-event control, e.g. checkpoint loops).  The
        ``lanes`` dict and ``index`` list aliases stay valid across
        callbacks — compaction mutates both containers in place, and
        ``reset``/``restore_state`` are reentrancy-guarded.
        """
        self._guard_reentrancy()
        self._running = True
        fired = 0
        limit = -1 if max_events is None else max_events
        lanes = self._lanes
        index = self._index
        tracer = self._tracer
        # Cascade carry: set when the publish step proved the firing lane's
        # next head is already the global minimum.  While set, the index
        # root still holds the consumed (stale) entry — it is rewritten
        # once, when the cascade breaks (or in the outer ``finally`` if the
        # run exits mid-cascade) — and ``entry``/``lane_name`` persist from
        # the iteration that started the cascade.
        carry_head = carry_heap = None
        entry = lane_name = None
        try:
            while fired != limit:
                if carry_head is not None:
                    head = carry_head
                    heap = carry_heap
                    carry_head = None
                else:
                    # -- settle: resolve the index top to a live lane head
                    # (mirrors _settle, including its discard-vs-refresh
                    # staleness policy — see that docstring)
                    head = None
                    while index:
                        entry = index[0]
                        heap = lanes.get(entry[3])
                        swept = 0
                        if self._garbage and heap and heap[0][3].cancelled:
                            while heap and heap[0][3].cancelled:
                                heappop(heap)
                                swept += 1
                            self._garbage -= swept
                        if not heap:
                            heappop(index)
                            continue
                        h0 = heap[0]
                        if h0[2] == entry[2]:  # sequences unique: same event
                            head = h0
                            break
                        if swept:
                            heapreplace(
                                index, (h0[0], h0[1], h0[2], entry[3])
                            )
                        else:
                            heappop(index)
                    if head is None:
                        break
                    # -- defer the index refresh until the callback has
                    # run, so a same-instant dispatch cascade into this
                    # lane (suppressed by ``_firing_lane`` in the schedule
                    # fast paths) costs one index publish total instead of
                    # a publish plus a stale discard per scheduled event.
                    lane_name = entry[3]
                heappop(heap)
                event = head[3]
                event.fired = True
                self._pending -= 1
                self._now = head[0]
                fired += 1
                if tracer is not None:
                    tracer.emit(
                        EventFired(
                            t=head[0],
                            label=event.label,
                            priority=int(head[1]),
                            seq=head[2],
                        )
                    )
                # Left set between iterations on purpose: nothing runs
                # outside callbacks inside this loop, the next iteration
                # overwrites it, and the outer ``finally`` clears it.
                self._firing_lane = lane_name
                try:
                    event.callback()
                finally:
                    # Publish the lane's post-callback head.  The ``heap``
                    # alias is still the lane's list: compaction rebuilds
                    # lane lists in place, never rebinding them.
                    if index and index[0] is entry:
                        if heap:
                            nxt = heap[0]
                            # Index children are the minima of their
                            # subtrees, so ``key <= both children`` proves
                            # the lane's next head is the global minimum
                            # (the root is this lane's consumed entry) —
                            # fire it next *without touching the index*;
                            # the stale root is rewritten when the cascade
                            # breaks.  The 3-tuple key sorts before a
                            # 4-tuple index entry with the same
                            # (time, priority, sequence) — such an entry
                            # names this very event (sequences are unique),
                            # so treating the tie as "minimum" is exact.
                            key = (nxt[0], nxt[1], nxt[2])
                            n = len(index)
                            if (n < 2 or key <= index[1]) and (
                                n < 3 or key <= index[2]
                            ):
                                if nxt[3].cancelled:
                                    # In-place write is valid (<= both
                                    # children); the next settle sweeps it.
                                    index[0] = (
                                        nxt[0], nxt[1], nxt[2], lane_name
                                    )
                                else:
                                    carry_head = nxt
                                    carry_heap = heap
                            else:
                                heapreplace(
                                    index,
                                    (nxt[0], nxt[1], nxt[2], lane_name),
                                )
                        else:
                            heappop(index)
                    elif heap:
                        # The callback displaced the consumed root entry (a
                        # smaller cross-lane key, a compaction rebuild, or a
                        # settle from inside the callback); push a fresh
                        # entry for this lane's head — at worst a duplicate,
                        # discarded harmlessly later.
                        nxt = heap[0]
                        heappush(index, (nxt[0], nxt[1], nxt[2], lane_name))
        finally:
            if carry_head is not None:
                # Exited mid-cascade (event limit, or a callback raised):
                # the index root still holds the consumed entry.  Restore
                # it to the lane's live head — the in-place write was
                # proven <= both children when the carry was set, and
                # nothing has run since.
                nxt = carry_head
                refreshed = (nxt[0], nxt[1], nxt[2], lane_name)
                if index and index[0] is entry:
                    index[0] = refreshed
                else:  # pragma: no cover - defensive; duplicate is benign
                    heappush(index, refreshed)
            self._running = False
            self._firing_lane = None
            # The fired total is batched into the loop-local and flushed
            # here (exact again the moment ``run`` returns — nothing in the
            # tree reads ``fired_count`` from inside a callback).
            self._fired += fired
        return fired

    def reset(self) -> None:
        """Return the engine to its just-constructed state.

        Pending events are discarded (their cancel hooks are not invoked —
        the whole queue is gone), the clock rewinds to the construction
        ``start_time``, and the sequence/fired/pending counters zero, so a
        reset engine replays a seeded scenario identically to a fresh one.

        Raises
        ------
        SimulationError
            If called re-entrantly from inside a running event callback.
        """
        self._guard_reentrancy()
        # In-place clears for the same reason as ``restore_state``: lane
        # views cache the list objects.
        for heap in self._lanes.values():
            heap.clear()
        self._index.clear()
        self._now = self._start_time
        self._sequence = 0
        self._fired = 0
        self._pending = 0
        self._garbage = 0

    # --------------------------------------------------------------- helpers

    def _push(self, event: Event) -> None:
        """Push *event* into its lane heap; index the lane if its head lowered."""
        lanes = self._lanes
        heap = lanes.get(event.lane)
        if heap is None:
            heap = lanes[event.lane] = []
        heapq.heappush(heap, (event.time, event.priority, event.sequence, event))
        if heap[0][3] is event:
            # The event became its lane's head: publish the new head key so
            # the merge index sees it before any older (larger) entry.
            heapq.heappush(
                self._index, (event.time, event.priority, event.sequence, event.lane)
            )

    def _settle(self) -> Optional[_LaneEntry]:
        """Resolve the index top to a live lane head; return that lane entry.

        Sweeps cancelled events off lane heads, discards index entries for
        drained lanes, and resolves stale entries.  On return,
        ``self._index[0]`` names the lane whose head is the globally
        smallest live event — or ``None`` if all lanes drained.

        Staleness policy: every head change *except a cancelled-head sweep*
        already published a live entry for the new head (a head-lowering
        ``schedule`` pushes one — suppressed only for the lane currently
        firing, whose head the run loop republishes right after the
        callback returns — and the fire paths refresh or republish the
        consumed root), so a stale entry found without a sweep is pure
        garbage and is **discarded** with one cheap pop.  Replacing it with the
        current head key instead would duplicate the live entry — and under
        same-instant burst traffic those duplicates breed at the root until
        settling dominates the run (measured 7x heap traffic).  Only the
        sweep case refreshes, because the post-sweep head is the one head
        that may have no entry anywhere.
        """
        index = self._index
        lanes = self._lanes
        while index:
            entry = index[0]
            heap = lanes.get(entry[3])
            swept = 0
            if self._garbage and heap and heap[0][3].cancelled:
                while heap and heap[0][3].cancelled:
                    heapq.heappop(heap)
                    swept += 1
                self._garbage -= swept
            if not heap:
                heapq.heappop(index)
                continue
            head = heap[0]
            if head[2] == entry[2]:  # sequences are unique: same event
                return head
            if swept:
                # The swept lane's new head may be indexed nowhere: refresh
                # this entry to it (a duplicate, if one exists, is discarded
                # harmlessly later).
                heapq.heapreplace(index, (head[0], head[1], head[2], entry[3]))
            else:
                heapq.heappop(index)
        return None

    def _on_event_cancelled(self) -> None:
        """Event.cancel hook: keep the live counters exact; maybe compact."""
        self._pending -= 1
        self._garbage += 1
        if self._garbage > COMPACT_MIN and self._garbage > self._pending:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries from every lane heap and rebuild the index.

        O(heap_size) filter + heapify per lane; triggered only when garbage
        outnumbers live events, so amortised cost per cancellation is O(1)
        and :attr:`heap_size` stays within a constant factor of
        ``max(pending, COMPACT_MIN)``.

        Lane lists are rebuilt **in place** (and drained lanes kept, empty):
        the fused run loop and the lane views hold direct references to
        them, so the list object bound to a lane name must never change.
        """
        lanes = self._lanes
        index = self._index
        index.clear()
        for lane, heap in lanes.items():
            heap[:] = [entry for entry in heap if not entry[3].cancelled]
            if heap:
                heapq.heapify(heap)
                head = heap[0]
                index.append((head[0], head[1], head[2], lane))
        heapq.heapify(index)
        self._garbage = 0

    def next_event_time(self) -> Optional[float]:
        """Virtual time of the next pending event, or ``None`` if empty."""
        head = self._settle()
        return head[0] if head is not None else None

    def _guard_reentrancy(self) -> None:
        if self._running:
            raise SimulationError("engine is already running (reentrant run call)")

    def iter_labels(self) -> Iterator[str]:
        """Labels of pending events, in heap (not firing) order — debug aid."""
        return (
            entry[3].label
            for lane in sorted(self._lanes)
            for entry in self._lanes[lane]
            if not entry[3].cancelled
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Engine(now={self._now:.3f}, pending={self.pending}, "
            f"fired={self._fired}, lanes={self.lane_count})"
        )


class EngineLane:
    """A lane-bound scheduling facade over :class:`Engine`.

    Exposes exactly the engine surface cluster-local components use —
    ``now``, ``schedule``, ``schedule_in``, ``restore_event``, ``tracer`` —
    with the lane name pre-bound, so a scheduler or monitor built against
    the flat engine API partitions its events without knowing lanes exist.
    """

    __slots__ = ("_engine", "_lane", "_heap", "_index", "_hook")

    def __init__(self, engine: Engine, lane: str) -> None:
        self._engine = engine
        self._lane = lane
        # Direct references for the fast paths below.  All three objects
        # are stable for the engine's lifetime: lane lists are rebuilt in
        # place by compaction and cleared in place by reset/restore, the
        # index list likewise, and the cancel hook is one shared bound
        # method.
        self._heap = engine._lanes.setdefault(lane, [])
        self._index = engine._index
        self._hook = engine._cancel_hook

    @property
    def now(self) -> float:
        """The current virtual time in seconds."""
        return self._engine.now

    @property
    def lane(self) -> str:
        """The lane name this view schedules into."""
        return self._lane

    @property
    def engine(self) -> Engine:
        """The underlying engine (for run control and checkpointing)."""
        return self._engine

    @property
    def tracer(self) -> Optional["Tracer"]:
        """The tracer event dispatch is reported to, if any."""
        return self._engine.tracer

    def schedule(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = Priority.DEFAULT,
        label: str = "",
    ) -> Event:
        """Schedule *callback* at absolute virtual *time* in this lane.

        Single-frame fast path like :meth:`schedule_in` — same-instant
        dispatch cascades (``schedule(view.now, ...)``) are the second
        hottest scheduling call in a running grid.  ``priority`` and
        ``label`` accept positional calls (keyword parsing is measurable
        at cascade rates).
        """
        engine = self._engine
        if time < engine._now:
            raise SimulationError(
                f"cannot schedule event at t={time} before current time "
                f"t={engine._now}"
            )
        time = float(time)
        lane = self._lane
        sequence = engine._sequence
        engine._sequence = sequence + 1
        # Allocate + fill slots directly: skips the ``Event.__init__`` frame,
        # measurable at grid scale.  Kept in lockstep with the constructor.
        event = _new_event(Event)
        event.time = time
        event.priority = priority
        event.sequence = sequence
        event.callback = callback
        event.label = label
        event.lane = lane
        event.cancelled = False
        event.fired = False
        event.on_cancel = self._hook
        heap = self._heap
        heappush(heap, (time, priority, sequence, event))
        if heap[0][3] is event and lane is not engine._firing_lane:
            heappush(self._index, (time, priority, sequence, lane))
        engine._pending += 1
        return event

    def schedule_in(
        self,
        delay: float,
        callback: Callable[[], None],
        priority: int = Priority.DEFAULT,
        label: str = "",
    ) -> Event:
        """Schedule *callback* after *delay* virtual seconds in this lane.

        This is the single hottest call in a running grid — every monitor
        poll, advertisement timer, completion booking, and message delivery
        goes through a lane view — so the engine's scheduling logic is
        replicated here in one frame rather than delegated through
        ``Engine.schedule_in`` (two frames of pure call overhead per event
        at 1000-agent scale).  Kept in lockstep with ``Engine.schedule_in``;
        the engine-equivalence property tests pin the shared semantics.
        """
        engine = self._engine
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        time = engine._now + delay
        lane = self._lane
        sequence = engine._sequence
        engine._sequence = sequence + 1
        # Slot-filling allocation, same as ``EngineLane.schedule``.
        event = _new_event(Event)
        event.time = time
        event.priority = priority
        event.sequence = sequence
        event.callback = callback
        event.label = label
        event.lane = lane
        event.cancelled = False
        event.fired = False
        event.on_cancel = self._hook
        heap = self._heap
        heappush(heap, (time, priority, sequence, event))
        if heap[0][3] is event and lane is not engine._firing_lane:
            heappush(self._index, (time, priority, sequence, lane))
        engine._pending += 1
        return event

    def restore_event(
        self, descriptor: dict, callback: Callable[[], None]
    ) -> Event:
        """Restore a checkpointed event, defaulting lane-less descriptors here."""
        return self._engine.restore_event(
            descriptor, callback, default_lane=self._lane
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EngineLane(lane={self._lane!r}, engine={self._engine!r})"
