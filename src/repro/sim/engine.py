"""The discrete-event simulation engine.

The paper's experiments ran a live system in *test mode*: tasks were never
executed; predicted times were booked against the clock as if real.  This
engine reproduces that mode in virtual time — requests arrive at virtual
seconds, schedulers book predicted execution intervals, agents pull service
information on periodic timers — and makes every run deterministic and far
faster than real time.

Design notes
------------
* A binary heap orders events by ``(time, priority, sequence)``; the
  monotonically increasing sequence number breaks ties by insertion order,
  so replays are exact.
* Scheduling an event in the past raises :class:`SimulationError` (a virtual
  clock can only move forward).
* ``run_until`` / ``run`` drain the heap; callbacks may schedule further
  events, including at the current instant.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Callable, Iterator, List, Optional

from repro.errors import SimulationError
from repro.obs.records import EventFired
from repro.sim.events import Event, EventHandle, Priority

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.obs.trace import Tracer

__all__ = ["Engine"]


class Engine:
    """A deterministic discrete-event simulation engine.

    Examples
    --------
    >>> eng = Engine()
    >>> fired = []
    >>> _ = eng.schedule(5.0, lambda: fired.append(eng.now))
    >>> _ = eng.schedule(1.0, lambda: fired.append(eng.now))
    >>> eng.run()
    2
    >>> fired
    [1.0, 5.0]
    """

    def __init__(
        self, start_time: float = 0.0, *, tracer: Optional["Tracer"] = None
    ) -> None:
        self._start_time = float(start_time)
        self._now = float(start_time)
        self._heap: List[Event] = []
        self._sequence = 0
        self._running = False
        self._fired = 0
        # Live count of non-cancelled queued events.  Maintained on
        # schedule/fire/cancel (the Event.on_cancel hook) so ``pending`` —
        # called inside hot run loops via ``__len__`` — is O(1) instead of
        # an O(n) heap scan.
        self._pending = 0
        self._tracer = tracer

    # ------------------------------------------------------------------ state

    @property
    def now(self) -> float:
        """The current virtual time in seconds."""
        return self._now

    @property
    def tracer(self) -> Optional["Tracer"]:
        """The tracer event dispatch is reported to, if any."""
        return self._tracer

    @property
    def pending(self) -> int:
        """Number of events still queued, excluding cancelled ones — O(1)."""
        return self._pending

    @property
    def fired_count(self) -> int:
        """Total number of events that have fired."""
        return self._fired

    def __len__(self) -> int:
        return self.pending

    # -------------------------------------------------------------- scheduling

    def schedule(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        priority: int = Priority.DEFAULT,
        label: str = "",
    ) -> EventHandle:
        """Schedule *callback* at absolute virtual *time*.

        Raises
        ------
        SimulationError
            If *time* precedes the current virtual time.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time} before current time t={self._now}"
            )
        event = Event(
            float(time),
            priority,
            self._sequence,
            callback,
            label,
            on_cancel=self._on_event_cancelled,
        )
        self._sequence += 1
        heapq.heappush(self._heap, event)
        self._pending += 1
        return EventHandle(event)

    def schedule_in(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        priority: int = Priority.DEFAULT,
        label: str = "",
    ) -> EventHandle:
        """Schedule *callback* after a relative *delay* in virtual seconds."""
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        return self.schedule(self._now + delay, callback, priority=priority, label=label)

    def restore_event(
        self,
        descriptor: dict,
        callback: Callable[[], None],
    ) -> EventHandle:
        """Re-create a checkpointed event with its **original** identity.

        Unlike :meth:`schedule`, the sequence number comes from the
        *descriptor* (captured by :meth:`EventHandle.descriptor` at snapshot
        time) rather than the engine counter, so the restored heap fires in
        exactly the order the interrupted run would have.  Must only be
        called after :meth:`restore_state` has set the clock and sequence
        counter; the descriptor's sequence must predate the restored counter.
        """
        time = float(descriptor["time"])
        sequence = int(descriptor["sequence"])
        if time < self._now:
            raise SimulationError(
                f"cannot restore event at t={time} before current time t={self._now}"
            )
        if sequence >= self._sequence:
            raise SimulationError(
                f"restored event sequence {sequence} not below engine "
                f"sequence counter {self._sequence}"
            )
        event = Event(
            time,
            int(descriptor["priority"]),
            sequence,
            callback,
            str(descriptor.get("label", "")),
            on_cancel=self._on_event_cancelled,
        )
        heapq.heappush(self._heap, event)
        self._pending += 1
        return EventHandle(event)

    # ------------------------------------------------------------- checkpoint

    def snapshot_state(self) -> dict:
        """Clock and counter state (events are snapshot by their owners).

        Every pending event is owned by exactly one component (transport
        in-flight registry, executor completion handles, periodic processes,
        …) which serialises its descriptor and re-creates it on restore;
        the engine itself only carries the clock, the sequence counter, and
        the fired total.
        """
        return {
            "now": self._now,
            "start_time": self._start_time,
            "sequence": self._sequence,
            "fired": self._fired,
        }

    def restore_state(self, state: dict) -> None:
        """Rewind to a snapshot; pending events must be restored afterwards.

        Discards any queued events (a freshly built system has only
        construction-time events, all superseded by the snapshot's
        descriptors) and resets the clock/counters so subsequent
        :meth:`restore_event` calls rebuild the heap exactly.
        """
        self._guard_reentrancy()
        self._heap.clear()
        self._pending = 0
        self._start_time = float(state["start_time"])
        self._now = float(state["now"])
        self._sequence = int(state["sequence"])
        self._fired = int(state["fired"])

    # ------------------------------------------------------------------- run

    def step(self) -> bool:
        """Fire the single next non-cancelled event.

        Returns ``True`` if an event fired, ``False`` if the queue was empty.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue  # already uncounted by the cancellation hook
            event.fired = True
            self._pending -= 1
            self._now = event.time
            self._fired += 1
            if self._tracer is not None:
                self._tracer.emit(
                    EventFired(
                        t=event.time,
                        label=event.label,
                        priority=int(event.priority),
                        seq=event.sequence,
                    )
                )
            event.callback()
            return True
        return False

    def run_until(self, end_time: float) -> None:
        """Fire every event with ``time <= end_time``; advance the clock to it.

        The clock finishes at exactly *end_time* even if the last event fired
        earlier, mirroring a real system observed at a fixed horizon.
        """
        if end_time < self._now:
            raise SimulationError(
                f"cannot run to t={end_time}, already at t={self._now}"
            )
        self._guard_reentrancy()
        self._running = True
        try:
            while self._heap:
                head = self._peek()
                if head is None or head.time > end_time:
                    break
                self.step()
            self._now = float(end_time)
        finally:
            self._running = False

    def run(self, max_events: Optional[int] = None) -> int:
        """Fire events until the queue drains (or *max_events* fire).

        Returns the number of events fired by this call.
        """
        self._guard_reentrancy()
        self._running = True
        fired = 0
        try:
            while self.step():
                fired += 1
                if max_events is not None and fired >= max_events:
                    break
        finally:
            self._running = False
        return fired

    def reset(self) -> None:
        """Return the engine to its just-constructed state.

        Pending events are discarded (their cancel hooks are not invoked —
        the whole queue is gone), the clock rewinds to the construction
        ``start_time``, and the sequence/fired/pending counters zero, so a
        reset engine replays a seeded scenario identically to a fresh one.

        Raises
        ------
        SimulationError
            If called re-entrantly from inside a running event callback.
        """
        self._guard_reentrancy()
        self._heap.clear()
        self._now = self._start_time
        self._sequence = 0
        self._fired = 0
        self._pending = 0

    # --------------------------------------------------------------- helpers

    def _on_event_cancelled(self) -> None:
        """Event.cancel hook: keep the live pending count exact."""
        self._pending -= 1

    def _peek(self) -> Optional[Event]:
        """Return the next non-cancelled event without popping it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0] if self._heap else None

    def next_event_time(self) -> Optional[float]:
        """Virtual time of the next pending event, or ``None`` if empty."""
        head = self._peek()
        return head.time if head is not None else None

    def _guard_reentrancy(self) -> None:
        if self._running:
            raise SimulationError("engine is already running (reentrant run call)")

    def iter_labels(self) -> Iterator[str]:
        """Labels of pending events, in heap (not firing) order — debug aid."""
        return (e.label for e in self._heap if not e.cancelled)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Engine(now={self._now:.3f}, pending={self.pending}, fired={self._fired})"
