"""Event objects for the discrete-event engine.

An :class:`Event` pairs a virtual firing time with a zero-argument callback.
Events are totally ordered by ``(time, priority, sequence)`` so that
simultaneous events fire deterministically: lower priority value first, then
insertion order.  Determinism matters — the paper's experiments are seeded
and must replay identically.

``Event`` is a hand-rolled ``__slots__`` class rather than a dataclass: the
engine allocates one per scheduled callback, which makes construction and
attribute access the hottest allocation path in the simulator (see
``engine_event_alloc`` in the perf suite for the measured win).  The
partitioned engine never calls :meth:`Event.__lt__` — its heaps hold
``(time, priority, sequence, event)`` tuples that compare in C — but the
method is kept so the single-heap reference engine can order raw events.
"""

from __future__ import annotations

from typing import Callable, Optional

__all__ = ["Event", "EventHandle", "Priority", "DEFAULT_LANE"]

#: The lane events land in when the scheduler does not name one.  The
#: default lane doubles as the *cross-cluster* lane: inter-cluster message
#: deliveries, portal arrivals, and any unrouted event share it.
DEFAULT_LANE = ""


class Priority:
    """Well-known priority bands for simultaneous events.

    Completions fire before arrivals at the same instant so freed processors
    are visible to the scheduler that handles the arrival; monitoring and
    advertisement run last, observing the settled state.
    """

    COMPLETION = 0
    ARRIVAL = 10
    SCHEDULING = 20
    ADVERTISEMENT = 30
    MONITORING = 40
    DEFAULT = 50


class Event:
    """A scheduled callback; ordered by ``(time, priority, sequence)``.

    Attributes
    ----------
    time / priority / sequence:
        The total-order key.  ``sequence`` is engine-assigned and unique,
        so ties never fall through to later fields.
    callback:
        Zero-argument callable fired when the event is due.
    label:
        Debug label (also recorded in traces).
    lane:
        The event lane this event is queued in (see
        :class:`~repro.sim.engine.Engine`); purely a performance
        partitioning — firing order is lane-independent.
    cancelled:
        Lazily honoured: the engine skips cancelled events when popped and
        compacts its heaps when too many accumulate.
    fired:
        Set by the engine the moment the event is popped to fire, so a
        ``cancel()`` from inside its own callback (e.g. a periodic process
        stopping itself) no longer counts as a pending-event cancellation.
    on_cancel:
        Engine hook invoked on the first effective cancellation only —
        keeps the engine's live pending counter exact without re-scanning
        the heap.
    """

    __slots__ = (
        "time",
        "priority",
        "sequence",
        "callback",
        "label",
        "lane",
        "cancelled",
        "fired",
        "on_cancel",
    )

    def __init__(
        self,
        time: float,
        priority: int,
        sequence: int,
        callback: Callable[[], None],
        label: str = "",
        lane: str = DEFAULT_LANE,
        on_cancel: Optional[Callable[[], None]] = None,
    ) -> None:
        # All parameters are positional-capable: the engine constructs one
        # Event per scheduled callback, and positional calls measurably
        # outrun keyword calls on this hottest allocation path.
        self.time = time
        self.priority = priority
        self.sequence = sequence
        self.callback = callback
        self.label = label
        self.lane = lane
        self.cancelled = False
        self.fired = False
        self.on_cancel = on_cancel

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.sequence < other.sequence

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (
            self.time == other.time
            and self.priority == other.priority
            and self.sequence == other.sequence
        )

    def __hash__(self) -> int:
        return hash((self.time, self.priority, self.sequence))

    def cancel(self) -> None:
        """Mark the event cancelled; the engine will skip it when popped.

        Idempotent, and a no-op once the event has fired; the engine's
        cancellation hook runs at most once.
        """
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        if self.on_cancel is not None:
            self.on_cancel()

    # The partitioned engine returns events directly as their own handles
    # (one object allocation per schedule instead of two), so Event carries
    # the full handle surface; :class:`EventHandle` remains as the wrapper
    # the single-heap reference engine hands out.

    @property
    def pending(self) -> bool:
        """Whether the event is still waiting in the heap (not fired/cancelled)."""
        return not (self.fired or self.cancelled)

    def descriptor(self) -> dict:
        """The ``(time, priority, sequence, label, lane)`` identity of this event.

        Checkpoints store descriptors instead of handles; restore re-creates
        the event with its *original* triple via
        :meth:`~repro.sim.engine.Engine.restore_event`, so heap order — and
        therefore replay — is preserved exactly.
        """
        return {
            "time": self.time,
            "priority": self.priority,
            "sequence": self.sequence,
            "label": self.label,
            "lane": self.lane,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Event(t={self.time:.3f}, prio={self.priority}, "
            f"seq={self.sequence}, label={self.label!r}, lane={self.lane!r})"
        )


class EventHandle:
    """Opaque handle returned by :meth:`Engine.schedule`; supports cancel."""

    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """The virtual time the event is scheduled for."""
        return self._event.time

    @property
    def label(self) -> str:
        """The debug label the event was scheduled with."""
        return self._event.label

    @property
    def priority(self) -> int:
        """The priority band the event was scheduled in."""
        return self._event.priority

    @property
    def sequence(self) -> int:
        """The engine-assigned insertion sequence (tie-break identity)."""
        return self._event.sequence

    @property
    def lane(self) -> str:
        """The event lane this event is queued in."""
        return self._event.lane

    @property
    def cancelled(self) -> bool:
        """Whether the event has been cancelled."""
        return self._event.cancelled

    @property
    def fired(self) -> bool:
        """Whether the event has already fired."""
        return self._event.fired

    @property
    def pending(self) -> bool:
        """Whether the event is still waiting in the heap (not fired/cancelled)."""
        return not (self._event.fired or self._event.cancelled)

    def descriptor(self) -> dict:
        """The ``(time, priority, sequence, label, lane)`` identity of this event.

        Checkpoints store descriptors instead of handles; restore re-creates
        the event with its *original* triple via
        :meth:`~repro.sim.engine.Engine.restore_event`, so heap order — and
        therefore replay — is preserved exactly.  The lane is carried so a
        restored run rebuilds the same partitioning; descriptors written
        before lanes existed restore into the default lane, which fires
        identically (ordering is lane-independent).
        """
        return {
            "time": self._event.time,
            "priority": self._event.priority,
            "sequence": self._event.sequence,
            "label": self._event.label,
            "lane": self._event.lane,
        }

    def cancel(self) -> None:
        """Cancel the event; a no-op if it already fired or was cancelled."""
        self._event.cancel()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.3f}, label={self.label!r}, {state})"
