"""Event objects for the discrete-event engine.

An :class:`Event` pairs a virtual firing time with a zero-argument callback.
Events are totally ordered by ``(time, priority, sequence)`` so that
simultaneous events fire deterministically: lower priority value first, then
insertion order.  Determinism matters — the paper's experiments are seeded
and must replay identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

__all__ = ["Event", "EventHandle", "Priority"]


class Priority:
    """Well-known priority bands for simultaneous events.

    Completions fire before arrivals at the same instant so freed processors
    are visible to the scheduler that handles the arrival; monitoring and
    advertisement run last, observing the settled state.
    """

    COMPLETION = 0
    ARRIVAL = 10
    SCHEDULING = 20
    ADVERTISEMENT = 30
    MONITORING = 40
    DEFAULT = 50


@dataclass(order=True)
class Event:
    """A scheduled callback; ordered by ``(time, priority, sequence)``."""

    time: float
    priority: int
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)
    #: Set by the engine the moment the event is popped to fire, so a
    #: cancel() from inside its own callback (e.g. a periodic process
    #: stopping itself) no longer counts as a pending-event cancellation.
    fired: bool = field(compare=False, default=False)
    #: Engine hook invoked on the first effective cancellation only —
    #: keeps the engine's live pending counter exact without re-scanning
    #: the heap.
    on_cancel: Callable[[], None] | None = field(
        compare=False, default=None, repr=False
    )

    def cancel(self) -> None:
        """Mark the event cancelled; the engine will skip it when popped.

        Idempotent, and a no-op once the event has fired; the engine's
        cancellation hook runs at most once.
        """
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        if self.on_cancel is not None:
            self.on_cancel()


class EventHandle:
    """Opaque handle returned by :meth:`Engine.schedule`; supports cancel."""

    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """The virtual time the event is scheduled for."""
        return self._event.time

    @property
    def label(self) -> str:
        """The debug label the event was scheduled with."""
        return self._event.label

    @property
    def priority(self) -> int:
        """The priority band the event was scheduled in."""
        return self._event.priority

    @property
    def sequence(self) -> int:
        """The engine-assigned insertion sequence (tie-break identity)."""
        return self._event.sequence

    @property
    def cancelled(self) -> bool:
        """Whether the event has been cancelled."""
        return self._event.cancelled

    @property
    def fired(self) -> bool:
        """Whether the event has already fired."""
        return self._event.fired

    @property
    def pending(self) -> bool:
        """Whether the event is still waiting in the heap (not fired/cancelled)."""
        return not (self._event.fired or self._event.cancelled)

    def descriptor(self) -> dict:
        """The ``(time, priority, sequence, label)`` identity of this event.

        Checkpoints store descriptors instead of handles; restore re-creates
        the event with its *original* triple via
        :meth:`~repro.sim.engine.Engine.restore_event`, so heap order — and
        therefore replay — is preserved exactly.
        """
        return {
            "time": self._event.time,
            "priority": self._event.priority,
            "sequence": self._event.sequence,
            "label": self._event.label,
        }

    def cancel(self) -> None:
        """Cancel the event; a no-op if it already fired or was cancelled."""
        self._event.cancel()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.3f}, label={self.label!r}, {state})"
