"""Small argument-validation helpers shared across the library.

These exist so that public API entry points fail fast with a uniform
:class:`~repro.errors.ValidationError` instead of leaking ``TypeError`` /
``IndexError`` from deep inside the schedulers.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.errors import ValidationError

__all__ = [
    "require",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_probability",
    "check_type",
    "check_non_empty",
    "check_unique",
    "check_permutation",
]


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValidationError` with *message* unless *condition* holds."""
    if not condition:
        raise ValidationError(message)


def check_positive(value: float, name: str) -> float:
    """Validate that *value* is strictly positive; return it."""
    if not value > 0:
        raise ValidationError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Validate that *value* is >= 0; return it."""
    if value < 0:
        raise ValidationError(f"{name} must be >= 0, got {value!r}")
    return value


def check_in_range(value: float, low: float, high: float, name: str) -> float:
    """Validate ``low <= value <= high``; return *value*."""
    if not (low <= value <= high):
        raise ValidationError(f"{name} must be in [{low}, {high}], got {value!r}")
    return value


def check_probability(value: float, name: str) -> float:
    """Validate that *value* is a probability in ``[0, 1]``; return it."""
    return check_in_range(value, 0.0, 1.0, name)


def check_type(value: Any, expected: type | tuple[type, ...], name: str) -> Any:
    """Validate ``isinstance(value, expected)``; return *value*."""
    if not isinstance(value, expected):
        exp = (
            expected.__name__
            if isinstance(expected, type)
            else " | ".join(t.__name__ for t in expected)
        )
        raise ValidationError(
            f"{name} must be of type {exp}, got {type(value).__name__}"
        )
    return value


def check_non_empty(value: Sequence | dict, name: str) -> Any:
    """Validate that a sequence or mapping is non-empty; return it."""
    if len(value) == 0:
        raise ValidationError(f"{name} must not be empty")
    return value


def check_unique(values: Iterable[Any], name: str) -> None:
    """Validate that *values* contains no duplicates."""
    seen = set()
    for v in values:
        if v in seen:
            raise ValidationError(f"{name} contains duplicate element {v!r}")
        seen.add(v)


def check_permutation(values: Sequence[int], n: int, name: str) -> None:
    """Validate that *values* is a permutation of ``range(n)``."""
    if len(values) != n or sorted(values) != list(range(n)):
        raise ValidationError(f"{name} must be a permutation of range({n}), got {list(values)!r}")
