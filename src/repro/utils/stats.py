"""Statistical helpers backing the paper's performance metrics (§3.3).

The metric definitions in :mod:`repro.metrics.balancing` are thin wrappers
over these primitives; keeping them here lets the hypothesis property tests
exercise the arithmetic in isolation.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "mean",
    "mean_square_deviation",
    "relative_deviation",
    "balance_level",
    "weighted_mean",
    "summary",
]


def _as_array(values: Sequence[float], name: str) -> np.ndarray:
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValidationError(f"{name} must not be empty")
    if not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} must contain only finite values")
    return arr


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean of a non-empty sequence."""
    return float(_as_array(values, "values").mean())


def mean_square_deviation(values: Sequence[float]) -> float:
    """Root of the mean squared deviation from the mean — the paper's eq. (14).

    The paper calls ``d = sqrt(sum((v_i - mean)^2) / N)`` the "mean square
    deviation"; it is the population standard deviation.
    """
    arr = _as_array(values, "values")
    return float(np.sqrt(np.mean((arr - arr.mean()) ** 2)))


def relative_deviation(values: Sequence[float]) -> float:
    """``d / mean`` — the relative deviation used inside eq. (15).

    Returns 0 when the mean is 0 and all values are 0 (a perfectly
    balanced, perfectly idle system); raises otherwise, because the
    paper's β is undefined for a zero-mean, non-uniform utilisation.
    """
    arr = _as_array(values, "values")
    m = arr.mean()
    if m == 0.0:
        if np.allclose(arr, 0.0):
            return 0.0
        raise ValidationError("relative deviation undefined: mean is 0 but values differ")
    return float(mean_square_deviation(arr) / m)


def balance_level(values: Sequence[float]) -> float:
    """Load-balancing level ``β = (1 − d/mean) × 100%`` — the paper's eq. (15).

    Expressed here as a fraction in ``(−∞, 1]``; callers multiply by 100 for
    display.  β = 1 means perfectly balanced (zero deviation).  Values may go
    negative when the deviation exceeds the mean (severely unbalanced), which
    the paper's formula also permits.
    """
    return 1.0 - relative_deviation(values)


def weighted_mean(values: Sequence[float], weights: Sequence[float]) -> float:
    """Weighted arithmetic mean; weights must be non-negative, not all zero."""
    arr = _as_array(values, "values")
    w = _as_array(weights, "weights")
    if arr.shape != w.shape:
        raise ValidationError(
            f"values and weights must have equal length, got {arr.size} and {w.size}"
        )
    if np.any(w < 0):
        raise ValidationError("weights must be non-negative")
    total = w.sum()
    if total == 0:
        raise ValidationError("weights must not all be zero")
    return float((arr * w).sum() / total)


def summary(values: Sequence[float]) -> dict[str, float]:
    """Convenience bundle of the statistics the reporting layer prints."""
    arr = _as_array(values, "values")
    return {
        "mean": float(arr.mean()),
        "min": float(arr.min()),
        "max": float(arr.max()),
        "deviation": mean_square_deviation(arr),
        "balance": balance_level(arr) if arr.mean() != 0 or np.allclose(arr, 0) else float("nan"),
    }
