"""Shared utilities: seeded RNG streams, statistics, tables, time formatting."""

from repro.utils.rng import RngRegistry, derive_seed, stream
from repro.utils.stats import (
    balance_level,
    mean,
    mean_square_deviation,
    relative_deviation,
    summary,
    weighted_mean,
)
from repro.utils.tables import format_cell, render_table
from repro.utils.timefmt import EPOCH, format_duration, format_timestamp, parse_timestamp

__all__ = [
    "RngRegistry",
    "derive_seed",
    "stream",
    "balance_level",
    "mean",
    "mean_square_deviation",
    "relative_deviation",
    "summary",
    "weighted_mean",
    "format_cell",
    "render_table",
    "EPOCH",
    "format_duration",
    "format_timestamp",
    "parse_timestamp",
]
