"""Virtual-time formatting helpers.

The paper's XML templates (Figs. 5–6) carry wall-clock timestamps such as
``Sun Nov 15 04:43:10 2001`` for the ``freetime`` and ``deadline`` fields.
The simulation runs in virtual seconds from an epoch; these helpers convert
between virtual seconds and paper-style timestamp strings so the XML layer
round-trips byte-identical formats.
"""

from __future__ import annotations

import calendar
import time
from typing import Final

from repro.errors import ValidationError

__all__ = [
    "EPOCH",
    "format_timestamp",
    "parse_timestamp",
    "format_duration",
]

#: The virtual epoch: the timestamp that virtual time 0 maps to.  Chosen to
#: match the era of the paper's example templates.
EPOCH: Final[float] = calendar.timegm(time.strptime("Sun Nov 15 04:43:10 2001".replace("Nov 15", "Nov 15"), "%a %b %d %H:%M:%S %Y")) * 1.0

_CTIME_FORMAT: Final[str] = "%a %b %d %H:%M:%S %Y"


def format_timestamp(virtual_seconds: float) -> str:
    """Render a virtual time as a paper-style ``ctime`` string (UTC).

    >>> format_timestamp(0.0)
    'Thu Nov 15 04:43:10 2001'
    """
    if not (virtual_seconds == virtual_seconds):  # NaN check without numpy
        raise ValidationError("virtual_seconds must not be NaN")
    return time.strftime(_CTIME_FORMAT, time.gmtime(EPOCH + virtual_seconds))


def parse_timestamp(text: str) -> float:
    """Parse a paper-style ``ctime`` string back to virtual seconds (UTC).

    Inverse of :func:`format_timestamp` at one-second granularity.
    """
    try:
        parsed = time.strptime(text.strip(), _CTIME_FORMAT)
    except ValueError as exc:
        raise ValidationError(f"unparseable timestamp {text!r}") from exc
    return calendar.timegm(parsed) - EPOCH


def format_duration(seconds: float) -> str:
    """Render a duration in a compact human form used by the harness output.

    >>> format_duration(475)
    '7m55s'
    >>> format_duration(-295)
    '-4m55s'
    >>> format_duration(32)
    '32s'
    """
    sign = "-" if seconds < 0 else ""
    s = abs(seconds)
    minutes, rem = divmod(int(round(s)), 60)
    hours, minutes = divmod(minutes, 60)
    if hours:
        return f"{sign}{hours}h{minutes}m{rem}s"
    if minutes:
        return f"{sign}{minutes}m{rem}s"
    return f"{sign}{rem}s"
