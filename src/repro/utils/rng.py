"""Named, seeded random-number streams.

The paper's case study (§4.1) stresses that "while the selection of agents,
applications and requirements are random, the seed is set to the same so that
the workload for each experiment is identical".  To reproduce that property —
*and* to keep the GA's stochasticity independent of the workload's — every
stochastic component of this library draws from its own named stream derived
from a single experiment master seed.

A :class:`RngRegistry` hands out :class:`numpy.random.Generator` instances
keyed by stream name.  The same ``(master_seed, name)`` pair always yields an
identical stream, regardless of creation order, because seeds are derived with
:class:`numpy.random.SeedSequence` spawned from a stable hash of the name.
"""

from __future__ import annotations

import hashlib
import json
import zlib
from typing import Dict, Iterator

import numpy as np

from repro.utils.validation import check_non_negative

__all__ = ["RngRegistry", "derive_seed", "stream"]


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a deterministic child seed from a master seed and stream name.

    The derivation uses CRC32 of the stream name mixed into a
    :class:`~numpy.random.SeedSequence`, so it is stable across Python runs
    and processes (unlike the built-in ``hash``, which is salted).
    """
    check_non_negative(master_seed, "master_seed")
    tag = zlib.crc32(name.encode("utf-8"))
    seq = np.random.SeedSequence(entropy=master_seed, spawn_key=(tag,))
    return int(seq.generate_state(1, dtype=np.uint64)[0])


class RngRegistry:
    """A registry of independent named random streams.

    Parameters
    ----------
    master_seed:
        The experiment master seed.  All streams are deterministic
        functions of this value and their own name.

    Examples
    --------
    >>> reg = RngRegistry(42)
    >>> a = reg.stream("workload")
    >>> b = reg.stream("ga")
    >>> a is reg.stream("workload")   # streams are cached per name
    True
    >>> float(a.random()) != float(b.random())   # streams are independent
    True
    """

    def __init__(self, master_seed: int = 0) -> None:
        check_non_negative(master_seed, "master_seed")
        self._master_seed = int(master_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def master_seed(self) -> int:
        """The master seed this registry was created with."""
        return self._master_seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the (cached) generator for stream *name*."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self._master_seed, name))
            self._streams[name] = gen
        return gen

    def fresh(self, name: str) -> np.random.Generator:
        """Return a *new* generator for *name*, resetting any cached state."""
        gen = np.random.default_rng(derive_seed(self._master_seed, name))
        self._streams[name] = gen
        return gen

    def names(self) -> Iterator[str]:
        """Iterate over the names of streams created so far."""
        return iter(sorted(self._streams))

    def state_digest(self) -> str:
        """A hex digest of every stream's current generator state.

        Two registries agree on this digest iff every named stream exists
        in both and sits at exactly the same position — the strongest
        cheap witness that two runs consumed identical randomness (used by
        the tracing-changes-nothing property tests).
        """
        digest = hashlib.sha256()
        for name in sorted(self._streams):
            state = self._streams[name].bit_generator.state
            digest.update(name.encode("utf-8"))
            digest.update(b"\x00")
            digest.update(json.dumps(state, sort_keys=True, default=str).encode("utf-8"))
            digest.update(b"\x01")
        return digest.hexdigest()

    # ------------------------------------------------------------- checkpoint

    def snapshot_state(self) -> Dict[str, dict]:
        """Every stream's bit-generator state, keyed by stream name.

        PCG64 (numpy's default) exposes its state as a JSON-serialisable
        dict of ints, so the snapshot round-trips through the checkpoint
        file without loss.
        """
        return {
            name: self._streams[name].bit_generator.state
            for name in sorted(self._streams)
        }

    def restore_state(self, state: Dict[str, dict]) -> None:
        """Rewind every snapshotted stream to its exact saved position.

        Cached generators are updated **in place** — components capture
        generator references at construction (the GA, the fault plan, the
        execution engine), so replacing the objects would silently detach
        them from the registry.  Streams not present in *state* are dropped
        (they did not exist at snapshot time), so a restored registry's
        :meth:`state_digest` matches the snapshot source byte-for-byte.
        """
        for name in list(self._streams):
            if name not in state:
                del self._streams[name]
        for name, bg_state in state.items():
            gen = self._streams.get(name)
            if gen is None:
                gen = np.random.default_rng(derive_seed(self._master_seed, name))
                self._streams[name] = gen
            gen.bit_generator.state = bg_state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngRegistry(master_seed={self._master_seed}, streams={sorted(self._streams)})"


def stream(master_seed: int, name: str) -> np.random.Generator:
    """One-shot helper: a fresh generator for ``(master_seed, name)``."""
    return np.random.default_rng(derive_seed(master_seed, name))
