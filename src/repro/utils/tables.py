"""Plain-text table rendering for the benchmark harness output.

The harness prints the same rows the paper reports (Tables 1–3).  Rendering
lives here so experiment code returns plain data structures and stays
testable without string comparison.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import ValidationError

__all__ = ["render_table", "format_cell"]


def format_cell(value: Any, precision: int = 0) -> str:
    """Format a single table cell.

    Floats are rendered with the given precision; ``None`` as an empty cell;
    everything else via ``str``.
    """
    if value is None:
        return ""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    precision: int = 0,
    title: str | None = None,
) -> str:
    """Render a monospace table with aligned columns.

    Parameters
    ----------
    headers:
        Column titles.
    rows:
        Row data; every row must have ``len(headers)`` entries.
    precision:
        Decimal places for float cells.
    title:
        Optional title line printed above the table.
    """
    if not headers:
        raise ValidationError("headers must not be empty")
    str_rows = []
    for i, row in enumerate(rows):
        if len(row) != len(headers):
            raise ValidationError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
        str_rows.append([format_cell(c, precision) for c in row])

    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(widths[j]) for j, c in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)
