"""The process-parallel experiment fabric.

Every entry point that re-runs the same seeded workload under many
configurations — :func:`~repro.experiments.tables.run_table3`, the
multi-seed sweep, the ablation sweeps — is embarrassingly parallel: the
experiments share *inputs* (dataclass configs, topologies, workload items)
but no runtime state, because each run builds its own discrete-event
engine, transport, schedulers and evaluation cache.  :func:`run_many`
exploits that: it fans a list of :class:`ExperimentJob` descriptions out
over a ``ProcessPoolExecutor`` and returns the results **in submission
order**, so a parallel run is result-for-result identical to the
sequential loop it replaces (each job re-seeds from its own config;
nothing about scheduling order can leak between experiments).

Spawn-safety: the worker is a module-level function taking one picklable
dataclass, so the fabric works under every multiprocessing start method —
including ``spawn``, where the child imports this module fresh.  Results
(:class:`~repro.experiments.runner.ExperimentResult`) are plain dataclasses
of dataclasses and pickle cleanly back to the parent.

``jobs=1`` (the default everywhere) bypasses the pool entirely and runs
in-process, byte-identical to the historical sequential path.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import get_context
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ExperimentError
from repro.experiments.casestudy import GridTopology
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.experiments.workload import WorkloadItem
from repro.pace.cache import CacheStats

__all__ = [
    "ExperimentJob",
    "default_jobs",
    "job_key",
    "merge_cache_stats",
    "run_many",
]


@dataclass(frozen=True)
class ExperimentJob:
    """One experiment, described entirely by picklable inputs.

    ``workload`` pins the exact request sequence (the §4.1 "identical
    workload" requirement when several configs share one); ``None`` lets
    the worker regenerate it from the config's seed, which is
    deterministic and therefore equivalent for a single job.
    """

    config: ExperimentConfig
    topology: Optional[GridTopology] = None
    workload: Optional[Tuple[WorkloadItem, ...]] = None


def default_jobs() -> int:
    """A sensible worker count: ``REPRO_JOBS`` env var, else the CPU count."""
    env = os.environ.get("REPRO_JOBS")
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


def _run_job(job: ExperimentJob) -> ExperimentResult:
    """Worker entry point — module-level so every start method can pickle it."""
    workload = list(job.workload) if job.workload is not None else None
    return run_experiment(job.config, job.topology, workload=workload)


def job_key(job: ExperimentJob) -> str:
    """A content hash identifying a job's *inputs* — config, topology, workload.

    Two jobs with the same key produce the same :class:`ExperimentResult`
    (runs are fully seeded), which is what lets a manifest directory reuse
    results across sweep invocations.  A ``None`` workload hashes as the
    literal ``null``: the worker regenerates it from the config's seed, so
    it is just as pinned as an explicit one.
    """
    from repro.checkpoint.snapshot import (
        encode_config,
        topology_fingerprint,
        workload_fingerprint,
    )
    from repro.experiments.casestudy import case_study_topology

    topology = job.topology if job.topology is not None else case_study_topology()
    body = json.dumps(
        {
            "config": encode_config(job.config),
            "topology": topology_fingerprint(topology),
            "workload": (
                None
                if job.workload is None
                else workload_fingerprint(job.workload)
            ),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


def _manifest_path(manifest_dir: str) -> str:
    return os.path.join(manifest_dir, "manifest.jsonl")


def _load_manifest(manifest_dir: str) -> Dict[str, ExperimentResult]:
    """Previously completed results, keyed by :func:`job_key`.

    Tolerant by design: a manifest line whose result pickle is missing or
    unreadable (a crash between the two writes, a partial copy) is simply
    skipped, so the job re-runs instead of failing the sweep.
    """
    done: Dict[str, ExperimentResult] = {}
    path = _manifest_path(manifest_dir)
    if not os.path.exists(path):
        return done
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
                key = str(entry["key"])
                with open(os.path.join(manifest_dir, entry["result"]), "rb") as fh:
                    done[key] = pickle.load(fh)
            except (KeyError, ValueError, OSError, pickle.UnpicklingError):
                continue
    return done


def _record_result(manifest_dir: str, key: str, name: str, result: ExperimentResult) -> None:
    """Persist one finished job: result pickle first, then the manifest line.

    The pickle is written atomically (tmp + rename) and the manifest line
    appended only afterwards, so a crash at any instant leaves either a
    complete, discoverable result or no trace at all — never a manifest
    entry pointing at garbage.
    """
    filename = f"{key}.pkl"
    target = os.path.join(manifest_dir, filename)
    tmp = target + ".tmp"
    with open(tmp, "wb") as handle:
        pickle.dump(result, handle)
    os.replace(tmp, target)
    with open(_manifest_path(manifest_dir), "a", encoding="utf-8") as handle:
        handle.write(
            json.dumps({"key": key, "name": name, "result": filename}) + "\n"
        )


def run_many(
    configs: Sequence[ExperimentJob],
    *,
    jobs: int = 1,
    mp_context: str = "spawn",
    manifest_dir: Optional[str] = None,
) -> List[ExperimentResult]:
    """Run every experiment, optionally across worker processes; ordered results.

    Parameters
    ----------
    configs:
        Experiment descriptions, each self-contained and picklable.
    jobs:
        Worker processes.  ``1`` runs sequentially in-process (no pool, no
        pickling) — the reference path.  Larger values fan out over a
        ``ProcessPoolExecutor``; the effective worker count is clamped to
        ``min(jobs, os.cpu_count(), pending jobs)`` — oversubscribing a
        box with more processes than cores only adds scheduler churn (the
        committed ``sweep_speedup < 1`` on a 1-CPU runner is exactly that
        failure mode), and a clamp that lands on one worker short-circuits
        to the in-process path, skipping pool and pickling entirely.
    mp_context:
        Multiprocessing start method.  ``"spawn"`` (default) is the only
        method that exists on every platform and the one that flushes out
        hidden unpicklable state; ``"fork"`` is faster to start on Linux.
    manifest_dir:
        When given, the sweep becomes crash-resumable: each finished job's
        result is pickled into this directory and indexed in
        ``manifest.jsonl`` under its :func:`job_key`.  A re-invocation
        loads completed results from the manifest and runs only the jobs
        that are missing — a killed sweep re-run with the same directory
        picks up where it died.  Runs are fully seeded, so a reloaded
        result is identical to a re-computed one.

    Results are returned in the order the experiments were given,
    regardless of which worker finished first, so seeded outputs are
    identical to the sequential path.
    """
    if jobs < 1:
        raise ExperimentError(f"jobs must be >= 1, got {jobs}")
    configs = list(configs)
    if not configs:
        return []

    keys: Optional[List[str]] = None
    results: List[Optional[ExperimentResult]] = [None] * len(configs)
    pending = list(range(len(configs)))
    if manifest_dir is not None:
        os.makedirs(manifest_dir, exist_ok=True)
        keys = [job_key(job) for job in configs]
        done = _load_manifest(manifest_dir)
        pending = []
        for index, key in enumerate(keys):
            if key in done:
                results[index] = done[key]
            else:
                pending.append(index)

    def finish(index: int, result: ExperimentResult) -> None:
        results[index] = result
        if manifest_dir is not None and keys is not None:
            _record_result(
                manifest_dir, keys[index], configs[index].config.name, result
            )

    workers = min(jobs, os.cpu_count() or 1, len(pending))
    if workers <= 1:
        for index in pending:
            finish(index, _run_job(configs[index]))
    else:
        context = get_context(mp_context)
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=context
        ) as pool:
            futures = [(index, pool.submit(_run_job, configs[index])) for index in pending]
            # Collect in submission order — deterministic regardless of
            # completion order; exceptions propagate with their tracebacks.
            for index, future in futures:
                finish(index, future.result())
    return [result for result in results if result is not None]


def merge_cache_stats(results: Sequence[ExperimentResult]) -> CacheStats:
    """Aggregate per-experiment evaluation-cache statistics.

    Each experiment owns one evaluation cache (per worker process in a
    parallel run); :class:`CacheStats` is mergeable, so the grid-wide
    redundancy figure of §2.2 is just the sum.
    """
    total = CacheStats()
    for result in results:
        total += result.cache_stats
    return total
