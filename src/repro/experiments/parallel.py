"""The process-parallel experiment fabric.

Every entry point that re-runs the same seeded workload under many
configurations — :func:`~repro.experiments.tables.run_table3`, the
multi-seed sweep, the ablation sweeps — is embarrassingly parallel: the
experiments share *inputs* (dataclass configs, topologies, workload items)
but no runtime state, because each run builds its own discrete-event
engine, transport, schedulers and evaluation cache.  :func:`run_many`
exploits that: it fans a list of :class:`ExperimentJob` descriptions out
over a ``ProcessPoolExecutor`` and returns the results **in submission
order**, so a parallel run is result-for-result identical to the
sequential loop it replaces (each job re-seeds from its own config;
nothing about scheduling order can leak between experiments).

Spawn-safety: the worker is a module-level function taking one picklable
dataclass, so the fabric works under every multiprocessing start method —
including ``spawn``, where the child imports this module fresh.  Results
(:class:`~repro.experiments.runner.ExperimentResult`) are plain dataclasses
of dataclasses and pickle cleanly back to the parent.

``jobs=1`` (the default everywhere) bypasses the pool entirely and runs
in-process, byte-identical to the historical sequential path.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import get_context
from typing import List, Optional, Sequence, Tuple

from repro.errors import ExperimentError
from repro.experiments.casestudy import GridTopology
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.experiments.workload import WorkloadItem
from repro.pace.cache import CacheStats

__all__ = ["ExperimentJob", "default_jobs", "merge_cache_stats", "run_many"]


@dataclass(frozen=True)
class ExperimentJob:
    """One experiment, described entirely by picklable inputs.

    ``workload`` pins the exact request sequence (the §4.1 "identical
    workload" requirement when several configs share one); ``None`` lets
    the worker regenerate it from the config's seed, which is
    deterministic and therefore equivalent for a single job.
    """

    config: ExperimentConfig
    topology: Optional[GridTopology] = None
    workload: Optional[Tuple[WorkloadItem, ...]] = None


def default_jobs() -> int:
    """A sensible worker count: ``REPRO_JOBS`` env var, else the CPU count."""
    env = os.environ.get("REPRO_JOBS")
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


def _run_job(job: ExperimentJob) -> ExperimentResult:
    """Worker entry point — module-level so every start method can pickle it."""
    workload = list(job.workload) if job.workload is not None else None
    return run_experiment(job.config, job.topology, workload=workload)


def run_many(
    configs: Sequence[ExperimentJob],
    *,
    jobs: int = 1,
    mp_context: str = "spawn",
) -> List[ExperimentResult]:
    """Run every experiment, optionally across worker processes; ordered results.

    Parameters
    ----------
    configs:
        Experiment descriptions, each self-contained and picklable.
    jobs:
        Worker processes.  ``1`` runs sequentially in-process (no pool, no
        pickling) — the reference path.  Larger values fan out over a
        ``ProcessPoolExecutor``; the pool is sized to
        ``min(jobs, len(configs))``.
    mp_context:
        Multiprocessing start method.  ``"spawn"`` (default) is the only
        method that exists on every platform and the one that flushes out
        hidden unpicklable state; ``"fork"`` is faster to start on Linux.

    Results are returned in the order the experiments were given,
    regardless of which worker finished first, so seeded outputs are
    identical to the sequential path.
    """
    if jobs < 1:
        raise ExperimentError(f"jobs must be >= 1, got {jobs}")
    configs = list(configs)
    if not configs:
        return []
    if jobs == 1 or len(configs) == 1:
        return [_run_job(job) for job in configs]
    context = get_context(mp_context)
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(configs)), mp_context=context
    ) as pool:
        futures = [pool.submit(_run_job, job) for job in configs]
        # Collect in submission order — deterministic regardless of
        # completion order; exceptions propagate with their tracebacks.
        return [future.result() for future in futures]


def merge_cache_stats(results: Sequence[ExperimentResult]) -> CacheStats:
    """Aggregate per-experiment evaluation-cache statistics.

    Each experiment owns one evaluation cache (per worker process in a
    parallel run); :class:`CacheStats` is mergeable, so the grid-wide
    redundancy figure of §2.2 is just the sum.
    """
    total = CacheStats()
    for result in results:
        total += result.cache_stats
    return total
