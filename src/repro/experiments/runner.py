"""Wiring and running one case-study experiment end-to-end.

:func:`build_grid` assembles the full system for a configuration — one
shared discrete-event engine and transport, one PACE evaluation engine (one
shared cache, as §2.2 describes), a scheduler + executor + monitor + agent
per resource, the Fig. 7 hierarchy, and a user portal.  :func:`run_experiment`
replays the seeded §4.1 workload through it and reduces the outcome to the
§3.3 metrics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.agents.advertisement import (
    AdvertisementStrategy,
    EventPushStrategy,
    NoAdvertisement,
    PeriodicPullStrategy,
)
from repro.agents.agent import Agent, AgentStats
from repro.agents.hierarchy import Hierarchy, wire_hierarchy
from repro.agents.portal import UserPortal
from repro.errors import ExperimentError
from repro.experiments.casestudy import GridTopology, case_study_topology
from repro.experiments.config import ExperimentConfig
from repro.experiments.workload import WorkloadItem, generate_workload
from repro.metrics.balancing import GridMetrics, compute_metrics
from repro.metrics.records import CompletionRecord, records_from_tasks
from repro.net.faults import PORTAL_NAME, FaultPlan
from repro.net.message import Endpoint
from repro.net.transport import Transport
from repro.obs.trace import Tracer
from repro.pace.cache import CacheStats
from repro.pace.evaluation import EvaluationEngine
from repro.pace.resource import ResourceModel
from repro.pace.workloads import ApplicationSpec, paper_application_specs
from repro.scheduling.scheduler import LocalScheduler, SchedulingPolicy
from repro.sim.engine import Engine
from repro.sim.events import Priority
from repro.tasks.execution import ExecutionMode
from repro.tasks.task import Environment
from repro.utils.rng import RngRegistry

__all__ = ["GridSystem", "ExperimentResult", "build_grid", "run_experiment"]

#: Hard ceiling on simulation events per experiment — a liveness backstop,
#: far above any legitimate run (the full case study fires ~10^5 events).
MAX_EVENTS = 20_000_000


@dataclass
class GridSystem:
    """A fully wired grid ready to receive requests."""

    config: ExperimentConfig
    topology: GridTopology
    sim: Engine
    transport: Transport
    evaluator: EvaluationEngine
    schedulers: Dict[str, LocalScheduler]
    agents: Dict[str, Agent]
    hierarchy: Hierarchy
    portal: UserPortal
    specs: Mapping[str, ApplicationSpec]
    rngs: Optional[RngRegistry] = None
    tracer: Optional[Tracer] = None

    def start(self) -> None:
        """Activate advertisement strategies and resource monitors."""
        self.hierarchy.start_all()
        for scheduler in self.schedulers.values():
            scheduler.monitor.start()

    def stop(self) -> None:
        """Deactivate periodic processes so the event queue can drain."""
        self.hierarchy.stop_all()
        for scheduler in self.schedulers.values():
            scheduler.monitor.stop()


@dataclass
class ExperimentResult:
    """Everything one experiment produced."""

    config: ExperimentConfig
    metrics: GridMetrics
    records: List[CompletionRecord]
    workload: List[WorkloadItem]
    agent_stats: Dict[str, AgentStats]
    cache_stats: CacheStats
    messages_sent: int
    rejected_count: int
    wall_seconds: float
    messages_delivered: int = 0
    #: sha256 over every named RNG stream's final state (see
    #: :meth:`repro.utils.rng.RngRegistry.state_digest`) — the witness the
    #: tracing-changes-nothing property tests compare.
    rng_digest: str = ""

    @property
    def horizon(self) -> float:
        """The metrics observation period ``t``."""
        return self.metrics.horizon


def build_grid(
    config: ExperimentConfig,
    topology: Optional[GridTopology] = None,
    *,
    tracer: Optional[Tracer] = None,
) -> GridSystem:
    """Assemble the full system for *config* (default: the Fig. 7 grid).

    Passing a :class:`~repro.obs.trace.Tracer` threads it through every
    layer — engine, transport, schedulers, GA kernels, agents, and the
    portal.  ``tracer=None`` (the default) leaves every emission site a
    single pointer comparison; a traced run's outputs are byte-identical
    either way (property-tested).
    """
    topo = topology if topology is not None else case_study_topology()
    rngs = RngRegistry(config.master_seed)
    sim = Engine(tracer=tracer)
    transport = Transport(sim, tracer=tracer)
    evaluator = EvaluationEngine(
        noise_factor=config.prediction_noise,
        rng=rngs.stream("prediction-noise") if config.prediction_noise > 0 else None,
    )
    specs = paper_application_specs()
    schedulers: Dict[str, LocalScheduler] = {}
    agents: Dict[str, Agent] = {}
    for i, name in enumerate(topo.agent_names):
        resource = ResourceModel.homogeneous(
            name, topo.platform(name), topo.nproc[name]
        )
        scheduler = LocalScheduler(
            sim,
            resource,
            evaluator,
            policy=config.policy,
            rng=rngs.stream(f"ga-{name}"),
            ga_config=config.ga_config,
            generations_per_event=config.generations_per_event,
            execution_mode=(
                ExecutionMode.SIMULATED
                if config.runtime_noise > 0
                else ExecutionMode.TEST
            ),
            runtime_noise=config.runtime_noise,
            execution_rng=(
                rngs.stream(f"exec-{name}") if config.runtime_noise > 0 else None
            ),
            monitor_poll_interval=config.monitor_poll_interval,
            freetime_mode=config.freetime_mode,
            tracer=tracer,
        )
        schedulers[name] = scheduler
        agents[name] = Agent(
            name,
            Endpoint(f"{name.lower()}.grid.example", 1000 + i),
            scheduler,
            transport,
            catalogue=topo.catalogue,
            discovery_config=config.discovery,
            advertisement=_advertisement(config),
            resilience=config.resilience,
            tracer=tracer,
        )
    hierarchy = wire_hierarchy(agents, dict(topo.parent_of))
    portal = UserPortal(transport, sim, resilience=config.resilience, tracer=tracer)
    if config.faults is not None:
        endpoints = {name: agent.endpoint for name, agent in agents.items()}
        endpoints[PORTAL_NAME] = portal.endpoint
        # The plan's stream exists even for a zero plan (creating it never
        # touches the other streams); draws happen only when they matter.
        transport.set_fault_plan(
            FaultPlan(
                config.faults,
                rng=rngs.stream("fault-injection"),
                endpoints=endpoints,
            )
        )
    return GridSystem(
        config=config,
        topology=topo,
        sim=sim,
        transport=transport,
        evaluator=evaluator,
        schedulers=schedulers,
        agents=agents,
        hierarchy=hierarchy,
        portal=portal,
        specs=specs,
        rngs=rngs,
        tracer=tracer,
    )


def _advertisement(config: ExperimentConfig) -> AdvertisementStrategy:
    if not config.agents_enabled or config.advertisement == "none":
        return NoAdvertisement()
    if config.advertisement == "push":
        return EventPushStrategy()
    return PeriodicPullStrategy(config.pull_interval)


def run_experiment(
    config: ExperimentConfig,
    topology: Optional[GridTopology] = None,
    *,
    workload: Optional[List[WorkloadItem]] = None,
    tracer: Optional[Tracer] = None,
) -> ExperimentResult:
    """Run one experiment to completion and compute the §3.3 metrics.

    The run finishes when every submitted request has produced a result
    (execution completed, or rejection in strict mode) — the paper measures
    final scheduling scenarios, not a truncated horizon.
    """
    t_wall = time.perf_counter()
    system = build_grid(config, topology, tracer=tracer)
    items = (
        workload
        if workload is not None
        else generate_workload(
            system.topology.agent_names,
            system.specs,
            count=config.request_count,
            interval=config.request_interval,
            master_seed=config.master_seed,
        )
    )
    system.start()
    for item in items:
        system.sim.schedule(
            item.submit_time,
            _submitter(system, item),
            priority=Priority.ARRIVAL,
            label=f"arrival-{item.application}",
        )
    steps = 0
    while system.portal.pending_count > 0 or system.portal.submitted_count < len(items):
        if not system.sim.step():
            raise ExperimentError(
                f"event queue drained with {system.portal.pending_count} "
                "requests still pending"
            )
        steps += 1
        if steps > MAX_EVENTS:
            raise ExperimentError(f"experiment exceeded {MAX_EVENTS} events")
    system.stop()

    records: List[CompletionRecord] = []
    busy = {}
    nodes = {}
    for name, scheduler in system.schedulers.items():
        records.extend(records_from_tasks(scheduler.executor.completed_tasks))
        busy[name] = scheduler.executor.busy_intervals
        nodes[name] = scheduler.resource.size
    metrics = compute_metrics(records, busy, nodes)
    return ExperimentResult(
        config=config,
        metrics=metrics,
        records=records,
        workload=items,
        agent_stats={name: agent.stats for name, agent in system.agents.items()},
        cache_stats=system.evaluator.cache.stats,
        messages_sent=system.transport.sent,
        rejected_count=len(system.portal.failures()),
        wall_seconds=time.perf_counter() - t_wall,
        messages_delivered=system.transport.delivered,
        rng_digest=system.rngs.state_digest() if system.rngs is not None else "",
    )


def _submitter(system: GridSystem, item: WorkloadItem):
    def submit() -> None:
        system.portal.submit(
            system.agents[item.agent_name],
            system.specs[item.application].model,
            Environment.TEST,
            item.deadline,
        )

    return submit
