"""Wiring and running one case-study experiment end-to-end.

:func:`build_grid` assembles the full system for a configuration — one
shared discrete-event engine and transport, one PACE evaluation engine (one
shared cache, as §2.2 describes), a scheduler + executor + monitor + agent
per resource, the Fig. 7 hierarchy, and a user portal.  :func:`run_experiment`
replays the seeded §4.1 workload through it and reduces the outcome to the
§3.3 metrics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Union

from repro.agents.advertisement import (
    AdvertisementStrategy,
    EventPushStrategy,
    NoAdvertisement,
    PeriodicPullStrategy,
)
from repro.agents.agent import Agent, AgentStats
from repro.agents.hierarchy import Hierarchy, wire_hierarchy
from repro.agents.portal import UserPortal
from repro.errors import ExperimentError, TransportError
from repro.experiments.casestudy import GridTopology, case_study_topology
from repro.experiments.config import ExperimentConfig
from repro.experiments.workload import WorkloadItem, generate_workload
from repro.metrics.balancing import GridMetrics, compute_metrics
from repro.metrics.records import CompletionRecord, records_from_tasks
from repro.net.faults import PORTAL_NAME, FaultPlan
from repro.net.message import Endpoint
from repro.net.transport import Transport
from repro.obs.trace import Tracer
from repro.pace.cache import CacheStats
from repro.pace.evaluation import EvaluationEngine
from repro.pace.resource import ResourceModel
from repro.pace.workloads import ApplicationSpec, paper_application_specs
from repro.scheduling.scheduler import LocalScheduler, SchedulingPolicy
from repro.sim.engine import Engine
from repro.sim.events import Priority
from repro.sim.reference import SingleHeapEngine
from repro.tasks.execution import ExecutionMode
from repro.tasks.task import Environment
from repro.utils.rng import RngRegistry

__all__ = [
    "GridSystem",
    "ExperimentResult",
    "build_grid",
    "run_experiment",
    "checkpoint_experiment",
    "resume_experiment",
    "write_checkpoint",
]

#: Hard ceiling on simulation events per experiment — a liveness backstop,
#: far above any legitimate run (the full case study fires ~10^5 events).
MAX_EVENTS = 20_000_000

#: The engines :func:`build_grid` can assemble — selected by
#: ``ExperimentConfig.engine``.  Identical surface, property-tested
#: byte-identical outputs; the single-heap engine is the preserved seed
#: implementation kept as oracle and perf baseline.
EngineType = Union[Engine, SingleHeapEngine]


@dataclass
class GridSystem:
    """A fully wired grid ready to receive requests."""

    config: ExperimentConfig
    topology: GridTopology
    sim: EngineType
    transport: Transport
    evaluator: EvaluationEngine
    schedulers: Dict[str, LocalScheduler]
    agents: Dict[str, Agent]
    hierarchy: Hierarchy
    portal: UserPortal
    specs: Mapping[str, ApplicationSpec]
    rngs: Optional[RngRegistry] = None
    tracer: Optional[Tracer] = None

    def start(self) -> None:
        """Activate advertisement strategies and resource monitors."""
        self.hierarchy.start_all()
        for scheduler in self.schedulers.values():
            scheduler.monitor.start()

    def stop(self) -> None:
        """Deactivate periodic processes so the event queue can drain."""
        self.hierarchy.stop_all()
        for scheduler in self.schedulers.values():
            scheduler.monitor.stop()


@dataclass
class ExperimentResult:
    """Everything one experiment produced."""

    config: ExperimentConfig
    metrics: GridMetrics
    records: List[CompletionRecord]
    workload: List[WorkloadItem]
    agent_stats: Dict[str, AgentStats]
    cache_stats: CacheStats
    messages_sent: int
    rejected_count: int
    wall_seconds: float
    messages_delivered: int = 0
    #: sha256 over every named RNG stream's final state (see
    #: :meth:`repro.utils.rng.RngRegistry.state_digest`) — the witness the
    #: tracing-changes-nothing property tests compare.
    rng_digest: str = ""

    @property
    def horizon(self) -> float:
        """The metrics observation period ``t``."""
        return self.metrics.horizon


def build_grid(
    config: ExperimentConfig,
    topology: Optional[GridTopology] = None,
    *,
    tracer: Optional[Tracer] = None,
) -> GridSystem:
    """Assemble the full system for *config* (default: the Fig. 7 grid).

    Passing a :class:`~repro.obs.trace.Tracer` threads it through every
    layer — engine, transport, schedulers, GA kernels, agents, and the
    portal.  ``tracer=None`` (the default) leaves every emission site a
    single pointer comparison; a traced run's outputs are byte-identical
    either way (property-tested).
    """
    topo = topology if topology is not None else case_study_topology()
    rngs = RngRegistry(config.master_seed)
    sim: EngineType = (
        Engine(tracer=tracer)
        if config.engine == "partitioned"
        else SingleHeapEngine(tracer=tracer)
    )
    transport = Transport(sim, tracer=tracer)
    evaluator = EvaluationEngine(
        noise_factor=config.prediction_noise,
        rng=rngs.stream("prediction-noise") if config.prediction_noise > 0 else None,
    )
    specs = paper_application_specs()
    schedulers: Dict[str, LocalScheduler] = {}
    agents: Dict[str, Agent] = {}
    # The jitter stream exists only when the knob is on: stream creation
    # alone perturbs the registry digest, and jitter-off must stay
    # byte-identical to the seed.
    jitter_rng = (
        rngs.stream("backoff-jitter") if config.resilience.backoff_jitter > 0 else None
    )
    for i, name in enumerate(topo.agent_names):
        resource = ResourceModel.homogeneous(
            name, topo.platform(name), topo.nproc[name]
        )
        # A straggler node's tasks run slower than their PACE predictions
        # (grey failure): the fault spec's service factor becomes a
        # constant background load on the execution engine.
        service_factor = (
            config.faults.service_factor_for(name) if config.faults is not None else 1.0
        )
        # Each cluster's scheduler (and its executor, monitor, and agent
        # timers downstream) schedules through its own event lane; only
        # cross-cluster traffic shares the default lane.
        scheduler = LocalScheduler(
            sim.lane_view(name),
            resource,
            evaluator,
            policy=config.policy,
            rng=rngs.stream(f"ga-{name}"),
            ga_config=config.ga_config,
            generations_per_event=config.generations_per_event,
            execution_mode=(
                ExecutionMode.SIMULATED
                if config.runtime_noise > 0
                else ExecutionMode.TEST
            ),
            runtime_noise=config.runtime_noise,
            execution_rng=(
                rngs.stream(f"exec-{name}") if config.runtime_noise > 0 else None
            ),
            monitor_poll_interval=config.monitor_poll_interval,
            freetime_mode=config.freetime_mode,
            tracer=tracer,
            load_profile=(
                (lambda t, _load=service_factor - 1.0: _load)
                if service_factor > 1.0
                else None
            ),
        )
        schedulers[name] = scheduler
        agents[name] = Agent(
            name,
            Endpoint(f"{name.lower()}.grid.example", 1000 + i),
            scheduler,
            transport,
            catalogue=topo.catalogue,
            discovery_config=config.discovery,
            advertisement=_advertisement(config),
            resilience=config.resilience,
            membership=config.membership,
            global_policy=config.global_policy,
            jitter_rng=jitter_rng,
            tracer=tracer,
        )
        transport.assign_lane(agents[name].endpoint, name)
    hierarchy = wire_hierarchy(agents, dict(topo.parent_of))
    portal = UserPortal(
        transport,
        sim.lane_view(PORTAL_NAME),
        resilience=config.resilience,
        jitter_rng=jitter_rng,
        tracer=tracer,
    )
    transport.assign_lane(portal.endpoint, PORTAL_NAME)
    if config.faults is not None:
        endpoints = {name: agent.endpoint for name, agent in agents.items()}
        endpoints[PORTAL_NAME] = portal.endpoint
        # The plan's stream exists even for a zero plan (creating it never
        # touches the other streams); draws happen only when they matter.
        transport.set_fault_plan(
            FaultPlan(
                config.faults,
                rng=rngs.stream("fault-injection"),
                endpoints=endpoints,
            )
        )
    return GridSystem(
        config=config,
        topology=topo,
        sim=sim,
        transport=transport,
        evaluator=evaluator,
        schedulers=schedulers,
        agents=agents,
        hierarchy=hierarchy,
        portal=portal,
        specs=specs,
        rngs=rngs,
        tracer=tracer,
    )


def _advertisement(config: ExperimentConfig) -> AdvertisementStrategy:
    if not config.agents_enabled or config.advertisement == "none":
        return NoAdvertisement()
    if config.advertisement == "push":
        return EventPushStrategy()
    return PeriodicPullStrategy(config.pull_interval)


def run_experiment(
    config: ExperimentConfig,
    topology: Optional[GridTopology] = None,
    *,
    workload: Optional[List[WorkloadItem]] = None,
    tracer: Optional[Tracer] = None,
    checkpoint_every: Optional[int] = None,
    checkpoint_path: Optional[str] = None,
) -> ExperimentResult:
    """Run one experiment to completion and compute the §3.3 metrics.

    The run finishes when every submitted request has produced a result
    (execution completed, or rejection in strict mode) — the paper measures
    final scheduling scenarios, not a truncated horizon.

    With ``checkpoint_every=N`` (events) and ``checkpoint_path``, the run
    writes a resumable snapshot every N processed events; resuming it via
    :func:`resume_experiment` continues byte-identical to the uninterrupted
    run (property-tested).
    """
    t_wall = time.perf_counter()
    system = build_grid(config, topology, tracer=tracer)
    items = (
        workload
        if workload is not None
        else generate_workload(
            system.topology.agent_names,
            system.specs,
            count=config.request_count,
            interval=config.request_interval,
            master_seed=config.master_seed,
        )
    )
    system.start()
    arrivals = {
        index: system.sim.schedule(
            item.submit_time,
            _submitter(system, item),
            priority=Priority.ARRIVAL,
            label=f"arrival-{item.application}",
            lane=item.agent_name,
        )
        for index, item in enumerate(items)
    }
    return _drive_experiment(
        system,
        items,
        arrivals,
        steps=0,
        t_wall=t_wall,
        checkpoint_every=checkpoint_every,
        checkpoint_path=checkpoint_path,
    )


def checkpoint_experiment(
    config: ExperimentConfig,
    topology: Optional[GridTopology] = None,
    *,
    workload: Optional[List[WorkloadItem]] = None,
    tracer: Optional[Tracer] = None,
    at_step: int,
    path: str,
) -> str:
    """Run a strict experiment for exactly *at_step* events, snapshot, stop.

    The abandoned half-run is discarded; :func:`resume_experiment` on the
    written file continues it to completion.  Returns the snapshot digest.

    Raises
    ------
    ExperimentError
        If the run's event queue drains before *at_step* events fire.
    """
    if at_step < 1:
        raise ExperimentError(f"at_step must be >= 1, got {at_step}")
    system = build_grid(config, topology, tracer=tracer)
    items = (
        workload
        if workload is not None
        else generate_workload(
            system.topology.agent_names,
            system.specs,
            count=config.request_count,
            interval=config.request_interval,
            master_seed=config.master_seed,
        )
    )
    system.start()
    arrivals = {
        index: system.sim.schedule(
            item.submit_time,
            _submitter(system, item),
            priority=Priority.ARRIVAL,
            label=f"arrival-{item.application}",
            lane=item.agent_name,
        )
        for index, item in enumerate(items)
    }
    for steps in range(1, at_step + 1):
        if not system.sim.step():
            raise ExperimentError(
                f"run finished after {steps - 1} events, before at_step={at_step}"
            )
    return write_checkpoint(path, system, items, arrivals, at_step)


def resume_experiment(
    path: str,
    *,
    tracer: Optional[Tracer] = None,
    checkpoint_every: Optional[int] = None,
    checkpoint_path: Optional[str] = None,
) -> ExperimentResult:
    """Resume a strict experiment from a snapshot written by :func:`run_experiment`.

    The grid is rebuilt from the snapshot's own configuration and
    topology, every component is rewound, pending arrival events are
    re-created with their original identities, and the run continues to
    completion.  Everything downstream of the snapshot instant —
    completion records, metrics, trace records, the final RNG digest —
    is byte-identical to the uninterrupted run.
    """
    from repro.checkpoint.format import read_snapshot

    t_wall = time.perf_counter()
    payload = read_snapshot(path)
    system, items, arrivals = _rebuild_from_payload(payload, "experiment", tracer)
    return _drive_experiment(
        system,
        items,
        arrivals,
        steps=int(payload["steps"]),
        t_wall=t_wall,
        checkpoint_every=checkpoint_every,
        checkpoint_path=checkpoint_path,
    )


def _drive_experiment(
    system: GridSystem,
    items: List[WorkloadItem],
    arrivals: Dict[int, "object"],
    *,
    steps: int,
    t_wall: float,
    checkpoint_every: Optional[int],
    checkpoint_path: Optional[str],
) -> ExperimentResult:
    if checkpoint_every is not None:
        if checkpoint_every < 1:
            raise ExperimentError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        if checkpoint_path is None:
            raise ExperimentError("checkpoint_every requires checkpoint_path")
    while system.portal.pending_count > 0 or system.portal.submitted_count < len(items):
        if not system.sim.step():
            raise ExperimentError(
                f"event queue drained with {system.portal.pending_count} "
                "requests still pending"
            )
        steps += 1
        if steps > MAX_EVENTS:
            raise ExperimentError(f"experiment exceeded {MAX_EVENTS} events")
        if checkpoint_every is not None and steps % checkpoint_every == 0:
            write_checkpoint(checkpoint_path, system, items, arrivals, steps)
    system.stop()
    return _collect_result(system, items, t_wall)


def write_checkpoint(
    path: str,
    system: GridSystem,
    items: List[WorkloadItem],
    arrivals: Dict[int, "object"],
    steps: int,
    *,
    kind: str = "experiment",
    extra: Optional[Dict[str, object]] = None,
) -> str:
    """Write one resumable snapshot of a running experiment; returns its digest."""
    from repro.checkpoint.format import write_snapshot
    from repro.checkpoint.snapshot import (
        encode_config,
        encode_topology,
        encode_workload_item,
        snapshot_system,
    )

    payload: Dict[str, object] = {
        "kind": kind,
        "config": encode_config(system.config),
        "topology": encode_topology(system.topology),
        "workload": [encode_workload_item(item) for item in items],
        "steps": steps,
        "arrivals": [
            {"index": index, "event": handle.descriptor()}
            for index, handle in sorted(arrivals.items())
            if handle.pending
        ],
        "system": snapshot_system(system),
    }
    if extra:
        payload.update(extra)
    return write_snapshot(path, payload)


def _rebuild_from_payload(payload, expected_kind: str, tracer: Optional[Tracer]):
    """Rebuild the grid for *payload*, restore it, and re-arm arrivals.

    Shared by every resume entry point; the submit callback is the strict
    one for ``"experiment"`` snapshots and the fault-tolerant one
    otherwise (degraded/soak runs must survive a crashed entry agent).
    """
    from repro.errors import CheckpointError
    from repro.checkpoint.snapshot import (
        decode_config,
        decode_topology,
        decode_workload_item,
        restore_system,
    )

    kind = payload.get("kind")
    if kind != expected_kind:
        raise CheckpointError(
            f"snapshot is a {kind!r} checkpoint, not {expected_kind!r}"
        )
    config = decode_config(payload["config"])
    topology = decode_topology(payload["topology"])
    system = build_grid(config, topology, tracer=tracer)
    items = [decode_workload_item(raw) for raw in payload["workload"]]
    restore_system(system, payload["system"])
    make_submitter = _submitter if expected_kind == "experiment" else tolerant_submitter
    arrivals = {}
    for entry in payload["arrivals"]:
        index = int(entry["index"])
        arrivals[index] = system.sim.restore_event(
            entry["event"], make_submitter(system, items[index])
        )
    return system, items, arrivals


def _collect_result(
    system: GridSystem, items: List[WorkloadItem], t_wall: float
) -> ExperimentResult:
    records: List[CompletionRecord] = []
    busy = {}
    nodes = {}
    for name, scheduler in system.schedulers.items():
        records.extend(records_from_tasks(scheduler.executor.completed_tasks))
        busy[name] = scheduler.executor.busy_intervals
        nodes[name] = scheduler.resource.size
    metrics = compute_metrics(records, busy, nodes)
    return ExperimentResult(
        config=system.config,
        metrics=metrics,
        records=records,
        workload=items,
        agent_stats={name: agent.stats for name, agent in system.agents.items()},
        cache_stats=system.evaluator.cache.stats,
        messages_sent=system.transport.sent,
        rejected_count=len(system.portal.failures()),
        wall_seconds=time.perf_counter() - t_wall,
        messages_delivered=system.transport.delivered,
        rng_digest=system.rngs.state_digest() if system.rngs is not None else "",
    )


def _submitter(system: GridSystem, item: WorkloadItem):
    def submit() -> None:
        system.portal.submit(
            system.agents[item.agent_name],
            system.specs[item.application].model,
            Environment.TEST,
            item.deadline,
        )

    return submit


def tolerant_submitter(system: GridSystem, item: WorkloadItem):
    """A submitter that tolerates a crashed entry agent (degraded runs).

    The request registers, the send is lost, and the request counts as
    unresolved unless the portal's retry machinery (when enabled)
    recovers it.
    """

    def submit() -> None:
        try:
            system.portal.submit(
                system.agents[item.agent_name],
                system.specs[item.application].model,
                Environment.TEST,
                item.deadline,
            )
        except TransportError:
            pass

    return submit
