"""Experiment 5 — availability with a self-healing hierarchy.

Experiment 4 measured graceful degradation of the *protocol* (ACK/retry
vs fire-and-forget) under message loss and transient churn.  Experiment 5
measures the *hierarchy*: what a permanently crashed coordinator costs,
and how much of that cost the membership layer's failure detection and
deterministic re-parenting (:mod:`repro.agents.membership`,
:mod:`repro.agents.healing`) buys back.

The study is a grid of ``coordinator-churn rate × straggler count``
operating points, each run twice:

* **healing** — membership enabled with the full ADOPT/ADOPTED repair
  protocol: orphaned subtrees re-attach (eldest sibling, else
  grandparent) and replay their service advertisements, so eq.-(10)
  discovery keeps balancing load across the repaired tree;
* **static** — the ablation: the same failure detector (so performance-
  info quarantine is identical) but ``heal=False``; an orphaned subtree
  self-severs and absorbs every request locally for the rest of the run.

Coordinator crashes are permanent (the churn downtime outlives any run)
and target only agents with children — losing a leaf never orphans
anyone.  Stragglers are grey failures on leaf agents: their sends arrive
seconds late and their tasks run slower than predicted
(:class:`~repro.net.faults.StragglerFault`).  The detector thresholds are
tuned so a straggler trips *suspicion* but never *confirmation*: the
straggler-only column doubles as the false-positive probe, asserting
zero confirmed deaths when nobody actually died.

Reported per point: the request success rates (completion, and the
stricter deadline-met SLO the healing/static comparison turns on), the
§3.3 balancing metrics, detection counters (suspects / recoveries /
confirms), and the repair latency (mean seconds from confirmed death to
re-parented).  All points replay one identical seeded workload, so every
difference is attributable to the injected failures and the healing knob.

Scale: pass a generated scenario topology/workload (PR 7's
:mod:`repro.experiments.scenarios` with ``chaos="coordinator-churn"``)
to run the same study on 500–1000-agent grids.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from repro.agents.membership import MembershipConfig
from repro.agents.resilience import ResilienceConfig
from repro.errors import ExperimentError
from repro.experiments.casestudy import GridTopology, case_study_topology
from repro.experiments.config import ExperimentConfig
from repro.experiments.experiment4 import (
    MembershipSummary,
    experiment4_base_config,
    run_degraded,
)
from repro.experiments.workload import WorkloadItem, generate_workload
from repro.net.faults import ChurnSpec, FaultPlanSpec, StragglerFault
from repro.pace.workloads import paper_application_specs

__all__ = [
    "DEFAULT_CHURN_RATES",
    "DEFAULT_STRAGGLER_COUNTS",
    "STRAGGLER_RESPONSE_DELAY",
    "STRAGGLER_SERVICE_FACTOR",
    "PERMANENT_DOWNTIME",
    "Experiment5Point",
    "Experiment5Result",
    "experiment5_config",
    "leaf_names",
    "run_experiment5",
]

#: Default churn axis: no churn, and half the coordinators crashing.
DEFAULT_CHURN_RATES: Tuple[float, ...] = (0.0, 0.5)
#: Default straggler axis: clean, and two grey leaves.
DEFAULT_STRAGGLER_COUNTS: Tuple[int, ...] = (0, 2)

#: Grey-failure severity (see the detector-tuning note in
#: :class:`~repro.agents.membership.MembershipConfig`): 3 s mean response
#: delay yields worst-case heartbeat gaps of ~6.5 s — over the 6 s
#: suspicion threshold sometimes, far under the 15 s confirmation one
#: always — and a 2× service factor quietly breaks PACE predictions.
STRAGGLER_RESPONSE_DELAY = 3.0
STRAGGLER_SERVICE_FACTOR = 2.0

#: Crash "downtime" that outlives any run: coordinator deaths are
#: permanent, which is the scenario healing exists for.
PERMANENT_DOWNTIME = 1e9


def leaf_names(topology: GridTopology) -> List[str]:
    """Agents with no children, in the topology's agent order."""
    parents = {p for p in topology.parent_of.values() if p is not None}
    return [n for n in topology.agent_names if n not in parents]


def experiment5_config(
    base: ExperimentConfig,
    topology: GridTopology,
    *,
    churn_rate: float = 0.0,
    straggler_count: int = 0,
    healing: bool = True,
) -> ExperimentConfig:
    """One operating point's configuration.

    The straggler nodes are the *last* ``straggler_count`` leaves of the
    topology — deterministic, and never routing-interior agents.  Both
    arms (healing and static) run identical detection; only the repair
    protocol differs.
    """
    leaves = leaf_names(topology)
    if straggler_count > len(leaves):
        raise ExperimentError(
            f"straggler_count {straggler_count} exceeds the {len(leaves)} leaves"
        )
    stragglers = tuple(
        StragglerFault(
            node=name,
            response_delay=STRAGGLER_RESPONSE_DELAY,
            service_factor=STRAGGLER_SERVICE_FACTOR,
        )
        for name in leaves[len(leaves) - straggler_count:]
    )
    faults = FaultPlanSpec(stragglers=stragglers) if stragglers else None
    churn = (
        ChurnSpec(
            rate=churn_rate,
            downtime=PERMANENT_DOWNTIME,
            target="coordinators",
        )
        if churn_rate > 0
        else None
    )
    mode = "healing" if healing else "static"
    return replace(
        base,
        name=f"{base.name}-churn{churn_rate:g}-grey{straggler_count}-{mode}",
        faults=faults,
        churn=churn,
        resilience=ResilienceConfig(
            enabled=True, registry_ttl=3.0 * base.pull_interval
        ),
        membership=MembershipConfig(enabled=True, heal=healing),
    )


@dataclass(frozen=True)
class Experiment5Point:
    """One operating point of the availability grid."""

    churn_rate: float
    straggler_count: int
    healing: bool
    submitted: int
    succeeded: int
    failed: int
    unresolved: int
    deadline_met: int
    epsilon: float
    upsilon_percent: float
    beta_percent: float
    crashes: int
    membership: MembershipSummary
    wall_seconds: float

    @property
    def completion_rate(self) -> float:
        """Requests that produced a successful result / requests submitted."""
        return self.succeeded / self.submitted if self.submitted else 0.0

    @property
    def deadline_met_rate(self) -> float:
        """The SLO success rate: completed by the deadline / submitted.

        This is the metric the healing-vs-static comparison turns on:
        orphaned subtrees usually still *complete* requests (they absorb
        locally), but without re-parenting they cannot load-balance, and
        deadline attainment is what pays for it.
        """
        return self.deadline_met / self.submitted if self.submitted else 0.0


@dataclass
class Experiment5Result:
    """The full availability study: each cell run healed and static."""

    request_count: int
    master_seed: int
    points: List[Experiment5Point]

    def point(
        self, churn_rate: float, straggler_count: int, *, healing: bool
    ) -> Experiment5Point:
        """The point at exactly this cell and arm."""
        for p in self.points:
            if (
                p.churn_rate == churn_rate
                and p.straggler_count == straggler_count
                and p.healing == healing
            ):
                return p
        raise ExperimentError(
            f"no point at churn={churn_rate}, stragglers={straggler_count}, "
            f"healing={healing}"
        )

    def healing_advantage(
        self, churn_rate: float, straggler_count: int
    ) -> float:
        """Deadline-met-rate delta, healing minus static, for one cell."""
        healed = self.point(churn_rate, straggler_count, healing=True)
        static = self.point(churn_rate, straggler_count, healing=False)
        return healed.deadline_met_rate - static.deadline_met_rate


def run_experiment5(
    *,
    request_count: int = 600,
    master_seed: int = 2003,
    churn_rates: Sequence[float] = DEFAULT_CHURN_RATES,
    straggler_counts: Sequence[int] = DEFAULT_STRAGGLER_COUNTS,
    base: Optional[ExperimentConfig] = None,
    topology: Optional[GridTopology] = None,
    workload: Optional[List[WorkloadItem]] = None,
) -> Experiment5Result:
    """Run the availability grid; every cell twice (healing and static).

    All points replay the identical seeded workload (generated once for
    the default topology, or passed in alongside a generated scenario's
    topology for the 500–1000-agent tier).
    """
    cfg = base if base is not None else experiment4_base_config(
        master_seed=master_seed, request_count=request_count
    )
    cfg = replace(cfg, name="experiment-5")
    topo = topology if topology is not None else case_study_topology()
    items = (
        workload
        if workload is not None
        else generate_workload(
            topo.agent_names,
            paper_application_specs(),
            count=cfg.request_count,
            interval=cfg.request_interval,
            master_seed=cfg.master_seed,
        )
    )
    points: List[Experiment5Point] = []
    for healing in (True, False):
        for churn_rate in churn_rates:
            for straggler_count in straggler_counts:
                point_config = experiment5_config(
                    cfg,
                    topo,
                    churn_rate=churn_rate,
                    straggler_count=straggler_count,
                    healing=healing,
                )
                run = run_degraded(point_config, topo, workload=items)
                assert run.membership is not None  # membership always on here
                points.append(
                    Experiment5Point(
                        churn_rate=churn_rate,
                        straggler_count=straggler_count,
                        healing=healing,
                        submitted=run.submitted,
                        succeeded=run.succeeded,
                        failed=run.failed,
                        unresolved=run.unresolved,
                        deadline_met=run.deadline_met,
                        epsilon=run.result.metrics.total.epsilon,
                        upsilon_percent=run.result.metrics.total.upsilon_percent,
                        beta_percent=run.result.metrics.total.beta_percent,
                        crashes=run.crashes,
                        membership=run.membership,
                        wall_seconds=run.result.wall_seconds,
                    )
                )
    return Experiment5Result(
        request_count=cfg.request_count,
        master_seed=cfg.master_seed,
        points=points,
    )
