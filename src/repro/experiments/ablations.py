"""Library-level ablation sweeps over the experiment-3 configuration.

The benchmark harness prints these; having them as plain functions makes
the design-space explorations scriptable (notebooks, further studies)
without going through pytest.  Each sweep varies exactly one knob against
the paper's experiment-3 setting and returns one
:class:`~repro.experiments.runner.ExperimentResult` per variant.

Every sweep accepts ``jobs``: the variants are independent seeded runs, so
``jobs > 1`` fans them out over the process-parallel fabric
(:mod:`repro.experiments.parallel`) with results keyed exactly as the
sequential loop would have produced them.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.errors import ExperimentError
from repro.experiments.casestudy import GridTopology, case_study_topology, scaled_topology
from repro.experiments.config import ExperimentConfig, table2_experiments
from repro.experiments.parallel import ExperimentJob, run_many
from repro.experiments.runner import ExperimentResult

__all__ = [
    "base_config",
    "sweep_prediction_noise",
    "sweep_advertisement",
    "sweep_freetime_mode",
    "sweep_agent_count",
    "sweep_pull_interval",
]


def base_config(request_count: int = 60, **overrides) -> ExperimentConfig:
    """The experiment-3 configuration at a configurable scale."""
    cfg = table2_experiments(request_count=request_count)[2]
    if overrides:
        cfg = dataclasses.replace(cfg, **overrides)
    return cfg


def _run_variants(
    keys: Sequence, configs: Sequence[ExperimentConfig], topologies, jobs: int
) -> Dict:
    """Run one config per key (sequentially or on the fabric); keyed results."""
    experiment_jobs = [
        ExperimentJob(cfg, topo) for cfg, topo in zip(configs, topologies)
    ]
    results = run_many(experiment_jobs, jobs=jobs)
    return dict(zip(keys, results))


def sweep_prediction_noise(
    levels: Sequence[float] = (0.0, 0.1, 0.3, 0.6),
    *,
    request_count: int = 60,
    topology: Optional[GridTopology] = None,
    jobs: int = 1,
) -> Dict[float, ExperimentResult]:
    """PACE accuracy ablation: log-normal σ applied to predictions."""
    if not levels:
        raise ExperimentError("levels must not be empty")
    keys = [float(noise) for noise in levels]
    configs = [
        base_config(
            request_count, name=f"accuracy-{noise}", prediction_noise=noise
        )
        for noise in keys
    ]
    return _run_variants(keys, configs, [topology] * len(keys), jobs)


def sweep_advertisement(
    strategies: Sequence[str] = ("pull", "push", "none"),
    *,
    request_count: int = 60,
    topology: Optional[GridTopology] = None,
    jobs: int = 1,
) -> Dict[str, ExperimentResult]:
    """Advertisement-strategy ablation (§3.1)."""
    if not strategies:
        raise ExperimentError("strategies must not be empty")
    keys = list(strategies)
    configs = [
        base_config(request_count, name=f"advert-{strategy}", advertisement=strategy)
        for strategy in keys
    ]
    return _run_variants(keys, configs, [topology] * len(keys), jobs)


def sweep_freetime_mode(
    modes: Sequence[str] = ("makespan", "mean", "min"),
    *,
    request_count: int = 60,
    topology: Optional[GridTopology] = None,
    jobs: int = 1,
) -> Dict[str, ExperimentResult]:
    """Eq.-(10) freetime-estimator ablation."""
    if not modes:
        raise ExperimentError("modes must not be empty")
    keys = list(modes)
    configs = [
        base_config(request_count, name=f"freetime-{mode}", freetime_mode=mode)
        for mode in keys
    ]
    return _run_variants(keys, configs, [topology] * len(keys), jobs)


def sweep_agent_count(
    counts: Sequence[int] = (6, 12, 24),
    *,
    requests_per_agent: int = 5,
    nproc: int = 8,
    jobs: int = 1,
) -> Dict[int, ExperimentResult]:
    """Scalability ablation over generated grids."""
    if not counts:
        raise ExperimentError("counts must not be empty")
    keys = [int(count) for count in counts]
    configs: List[ExperimentConfig] = []
    topologies: List[GridTopology] = []
    for count in keys:
        topologies.append(scaled_topology(count, nproc=nproc))
        configs.append(base_config(requests_per_agent * count, name=f"scale-{count}"))
    return _run_variants(keys, configs, topologies, jobs)


def sweep_pull_interval(
    intervals: Sequence[float] = (2.0, 10.0, 60.0),
    *,
    request_count: int = 60,
    topology: Optional[GridTopology] = None,
    jobs: int = 1,
) -> Dict[float, ExperimentResult]:
    """Advertisement staleness: the periodic-pull cadence (paper: 10 s)."""
    if not intervals:
        raise ExperimentError("intervals must not be empty")
    keys = [float(interval) for interval in intervals]
    configs = [
        base_config(request_count, name=f"pull-{interval}", pull_interval=interval)
        for interval in keys
    ]
    return _run_variants(keys, configs, [topology] * len(keys), jobs)
