"""Library-level ablation sweeps over the experiment-3 configuration.

The benchmark harness prints these; having them as plain functions makes
the design-space explorations scriptable (notebooks, further studies)
without going through pytest.  Each sweep varies exactly one knob against
the paper's experiment-3 setting and returns one
:class:`~repro.experiments.runner.ExperimentResult` per variant.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence

from repro.errors import ExperimentError
from repro.experiments.casestudy import GridTopology, case_study_topology, scaled_topology
from repro.experiments.config import ExperimentConfig, table2_experiments
from repro.experiments.runner import ExperimentResult, run_experiment

__all__ = [
    "base_config",
    "sweep_prediction_noise",
    "sweep_advertisement",
    "sweep_freetime_mode",
    "sweep_agent_count",
    "sweep_pull_interval",
]


def base_config(request_count: int = 60, **overrides) -> ExperimentConfig:
    """The experiment-3 configuration at a configurable scale."""
    cfg = table2_experiments(request_count=request_count)[2]
    if overrides:
        cfg = dataclasses.replace(cfg, **overrides)
    return cfg


def sweep_prediction_noise(
    levels: Sequence[float] = (0.0, 0.1, 0.3, 0.6),
    *,
    request_count: int = 60,
    topology: Optional[GridTopology] = None,
) -> Dict[float, ExperimentResult]:
    """PACE accuracy ablation: log-normal σ applied to predictions."""
    if not levels:
        raise ExperimentError("levels must not be empty")
    return {
        float(noise): run_experiment(
            base_config(
                request_count,
                name=f"accuracy-{noise}",
                prediction_noise=float(noise),
            ),
            topology,
        )
        for noise in levels
    }


def sweep_advertisement(
    strategies: Sequence[str] = ("pull", "push", "none"),
    *,
    request_count: int = 60,
    topology: Optional[GridTopology] = None,
) -> Dict[str, ExperimentResult]:
    """Advertisement-strategy ablation (§3.1)."""
    if not strategies:
        raise ExperimentError("strategies must not be empty")
    return {
        strategy: run_experiment(
            base_config(
                request_count,
                name=f"advert-{strategy}",
                advertisement=strategy,
            ),
            topology,
        )
        for strategy in strategies
    }


def sweep_freetime_mode(
    modes: Sequence[str] = ("makespan", "mean", "min"),
    *,
    request_count: int = 60,
    topology: Optional[GridTopology] = None,
) -> Dict[str, ExperimentResult]:
    """Eq.-(10) freetime-estimator ablation."""
    if not modes:
        raise ExperimentError("modes must not be empty")
    return {
        mode: run_experiment(
            base_config(request_count, name=f"freetime-{mode}", freetime_mode=mode),
            topology,
        )
        for mode in modes
    }


def sweep_agent_count(
    counts: Sequence[int] = (6, 12, 24),
    *,
    requests_per_agent: int = 5,
    nproc: int = 8,
) -> Dict[int, ExperimentResult]:
    """Scalability ablation over generated grids."""
    if not counts:
        raise ExperimentError("counts must not be empty")
    results: Dict[int, ExperimentResult] = {}
    for count in counts:
        topo = scaled_topology(int(count), nproc=nproc)
        cfg = base_config(
            requests_per_agent * int(count), name=f"scale-{count}"
        )
        results[int(count)] = run_experiment(cfg, topo)
    return results


def sweep_pull_interval(
    intervals: Sequence[float] = (2.0, 10.0, 60.0),
    *,
    request_count: int = 60,
    topology: Optional[GridTopology] = None,
) -> Dict[float, ExperimentResult]:
    """Advertisement staleness: the periodic-pull cadence (paper: 10 s)."""
    if not intervals:
        raise ExperimentError("intervals must not be empty")
    return {
        float(interval): run_experiment(
            base_config(
                request_count,
                name=f"pull-{interval}",
                pull_interval=float(interval),
            ),
            topology,
        )
        for interval in intervals
    }
