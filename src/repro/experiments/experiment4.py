"""Experiment 4 — graceful degradation under injected faults.

The paper's three experiments assume a benign LAN.  Experiment 4 (our
robustness extension) re-runs the §4.1 case-study workload on the same
12-agent grid while the fault fabric (:mod:`repro.net.faults`) injects
message loss, latency jitter, and agent churn, across a grid of
``loss rate × churn rate`` operating points.  Each point reports the
request **completion rate**, the **deadline-met rate**, the §3.3
balancing metrics, and the resilience layer's counters (retries,
reroutes, give-ups), for either the resilient protocol
(ACK + retry + registry TTL) or the paper's fire-and-forget baseline
(``resilient=False`` — the no-retry ablation).

The strict :func:`~repro.experiments.runner.run_experiment` loop raises
when the event queue drains with requests pending, which is precisely
what message loss produces; :func:`run_degraded` is the horizon-based
counterpart that tolerates unresolved requests and reports them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from repro.errors import ExperimentError, TransportError
from repro.experiments.casestudy import GridTopology, case_study_topology
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    MAX_EVENTS,
    ExperimentResult,
    GridSystem,
    _rebuild_from_payload,
    build_grid,
    tolerant_submitter,
    write_checkpoint,
)
from repro.experiments.workload import WorkloadItem, generate_workload
from repro.metrics.balancing import compute_metrics
from repro.metrics.records import (
    CompletionRecord,
    ResilienceCounters,
    records_from_tasks,
)
from repro.net.faults import ChurnSchedule, ChurnSpec, FaultPlanSpec
from repro.agents.resilience import ResilienceConfig
from repro.obs.trace import Tracer
from repro.pace.workloads import paper_application_specs
from repro.scheduling.scheduler import SchedulingPolicy
from repro.sim.events import Priority
from repro.tasks.task import Environment
from repro.utils.rng import RngRegistry

__all__ = [
    "DEFAULT_LOSS_RATES",
    "DEFAULT_CHURN_RATES",
    "MembershipSummary",
    "DegradedRun",
    "Experiment4Point",
    "Experiment4Result",
    "degradation_config",
    "experiment4_base_config",
    "run_degraded",
    "checkpoint_degraded",
    "resume_degraded",
    "run_experiment4",
]

#: The default degradation grid: loss rates per message ...
DEFAULT_LOSS_RATES: Tuple[float, ...] = (0.0, 0.05, 0.1, 0.2)
#: ... crossed with the fraction of (non-head) agents that crash once.
DEFAULT_CHURN_RATES: Tuple[float, ...] = (0.0, 0.25)


def experiment4_base_config(
    *, master_seed: int = 2003, request_count: int = 600
) -> ExperimentConfig:
    """Experiment 3's configuration (GA + agents), the substrate faults act on."""
    return ExperimentConfig(
        name="experiment-4",
        policy=SchedulingPolicy.GA,
        agents_enabled=True,
        master_seed=master_seed,
        request_count=request_count,
    )


def degradation_config(
    base: ExperimentConfig,
    *,
    loss: float = 0.0,
    churn_rate: float = 0.0,
    jitter: float = 0.0,
    resilient: bool = True,
    fault_spec: Optional[FaultPlanSpec] = None,
    churn_spec: Optional[ChurnSpec] = None,
) -> ExperimentConfig:
    """One operating point's configuration.

    ``fault_spec``/``churn_spec`` override the simple ``loss``/``jitter``/
    ``churn_rate`` knobs when a richer plan (link faults, partitions,
    custom downtime) is wanted.  ``resilient=False`` keeps the paper's
    fire-and-forget protocol — the ablation every resilient point is
    measured against.
    """
    faults = (
        fault_spec
        if fault_spec is not None
        else FaultPlanSpec(drop_probability=loss, latency_jitter=jitter)
    )
    churn = churn_spec
    if churn is None and churn_rate > 0:
        churn = ChurnSpec(rate=churn_rate)
    if resilient:
        # The registry TTL tracks the advertisement cadence: a crashed
        # neighbour stops attracting forwards three missed pulls after its
        # last advert.
        resilience = ResilienceConfig(
            enabled=True, registry_ttl=3.0 * base.pull_interval
        )
    else:
        resilience = ResilienceConfig()
    mode = "resilient" if resilient else "no-retry"
    return replace(
        base,
        name=f"{base.name}-loss{faults.drop_probability:g}"
        f"-churn{(churn.rate if churn else 0.0):g}-{mode}",
        faults=faults,
        churn=churn,
        resilience=resilience,
    )


@dataclass(frozen=True)
class MembershipSummary:
    """Grid-wide failure-detection and self-healing totals for one run."""

    suspects: int = 0
    recoveries: int = 0
    confirms: int = 0
    heartbeats_sent: int = 0
    orphaned: int = 0
    adoptions_completed: int = 0
    promotions: int = 0
    rejoins: int = 0
    give_ups: int = 0
    repair_count: int = 0
    mean_repair_seconds: float = 0.0

    @classmethod
    def from_system(cls, system: GridSystem) -> "MembershipSummary":
        """Aggregate every agent's detector and healer stats."""
        durations: List[float] = []
        totals = dict.fromkeys(
            (
                "suspects", "recoveries", "confirms", "heartbeats_sent",
                "orphaned", "adoptions_completed", "promotions", "rejoins",
                "give_ups",
            ),
            0,
        )
        for agent in system.agents.values():
            if agent.detector is not None:
                stats = agent.detector.stats
                totals["suspects"] += stats.suspects
                totals["recoveries"] += stats.recoveries
                totals["confirms"] += stats.confirms
                totals["heartbeats_sent"] += stats.heartbeats_sent
            if agent.healer is not None:
                stats = agent.healer.stats
                totals["orphaned"] += stats.orphaned
                totals["adoptions_completed"] += stats.adoptions_completed
                totals["promotions"] += stats.promotions
                totals["rejoins"] += stats.rejoins
                totals["give_ups"] += stats.give_ups
                durations.extend(agent.healer.repair_durations)
        return cls(
            repair_count=len(durations),
            mean_repair_seconds=(
                sum(durations) / len(durations) if durations else 0.0
            ),
            **totals,
        )


@dataclass
class DegradedRun:
    """Everything one degraded run produced."""

    result: ExperimentResult
    submitted: int
    succeeded: int
    failed: int
    unresolved: int
    deadline_met: int
    counters: ResilienceCounters
    crashes: int
    restarts: int
    fault_dropped: int
    #: ``None`` when the membership layer was disabled for the run.
    membership: Optional[MembershipSummary] = None


def _arm_churn(
    system: GridSystem, config: ExperimentConfig
) -> Tuple[int, int, List[Tuple[str, str, object]]]:
    """Generate and schedule the run's churn events (if any).

    Returns ``(crashes, restarts, churn_events)``.  A spec targeting
    coordinators (or leaves) is resolved against the built hierarchy —
    agents that currently have children.
    """
    if config.churn is None or config.churn.rate == 0:
        return 0, 0, []
    coordinators = (
        None
        if config.churn.target == "any"
        else [name for name, agent in system.agents.items() if agent.children]
    )
    schedule = ChurnSchedule.generate(
        system.topology.agent_names,
        config.churn,
        config.request_phase_seconds,
        RngRegistry(config.master_seed).stream("churn"),
        head=system.hierarchy.head.name,
        coordinators=coordinators,
    )
    churn_events: List[Tuple[str, str, object]] = []
    for event in schedule:
        agent = system.agents[event.agent]
        action = agent.deactivate if event.action == "crash" else agent.reactivate
        churn_events.append(
            (
                event.agent,
                event.action,
                system.sim.schedule(
                    event.time,
                    action,
                    priority=Priority.MONITORING,
                    label=f"churn-{event.action}-{event.agent}",
                ),
            )
        )
    return schedule.crash_count, schedule.restart_count, churn_events


def run_degraded(
    config: ExperimentConfig,
    topology: Optional[GridTopology] = None,
    *,
    workload: Optional[List[WorkloadItem]] = None,
    tracer: Optional["Tracer"] = None,
    checkpoint_every: Optional[int] = None,
    checkpoint_path: Optional[str] = None,
) -> DegradedRun:
    """Run *config* under its fault plan and churn schedule to a horizon.

    Unlike the strict experiment loop, requests may end the run
    unresolved (their REQUEST or RESULT was lost and nothing retried);
    they are counted, not raised.  The run proceeds in two phases:

    1. until every request resolves or the clock passes the last
       deadline, with periodic processes and churn active;
    2. a final drain with periodics stopped and leftover churn handles
       cancelled, letting in-flight completions, retries, and ack
       timeouts resolve — the queue is finite once nothing re-arms.

    With ``checkpoint_every``/``checkpoint_path``, phase 1 writes a
    resumable snapshot every N events (see :func:`resume_degraded`).
    """
    t_wall = time.perf_counter()
    system = build_grid(config, topology, tracer=tracer)
    items = (
        workload
        if workload is not None
        else generate_workload(
            system.topology.agent_names,
            system.specs,
            count=config.request_count,
            interval=config.request_interval,
            master_seed=config.master_seed,
        )
    )
    system.start()
    arrivals = {
        index: system.sim.schedule(
            item.submit_time,
            tolerant_submitter(system, item),
            priority=Priority.ARRIVAL,
            label=f"arrival-{item.application}",
        )
        for index, item in enumerate(items)
    }
    crashes, restarts, churn_events = _arm_churn(system, config)
    return _drive_degraded(
        system,
        items,
        arrivals,
        churn_events,
        crashes=crashes,
        restarts=restarts,
        steps=0,
        t_wall=t_wall,
        checkpoint_every=checkpoint_every,
        checkpoint_path=checkpoint_path,
    )


def checkpoint_degraded(
    config: ExperimentConfig,
    topology: Optional[GridTopology] = None,
    *,
    workload: Optional[List[WorkloadItem]] = None,
    tracer: Optional["Tracer"] = None,
    at_step: int,
    path: str,
) -> str:
    """Run a degraded experiment for *at_step* events, snapshot, stop.

    The counterpart of :func:`~repro.experiments.runner.checkpoint_experiment`
    for faulty/churny runs; :func:`resume_degraded` continues the written
    file.  Returns the snapshot digest.
    """
    if at_step < 1:
        raise ExperimentError(f"at_step must be >= 1, got {at_step}")
    system = build_grid(config, topology, tracer=tracer)
    items = (
        workload
        if workload is not None
        else generate_workload(
            system.topology.agent_names,
            system.specs,
            count=config.request_count,
            interval=config.request_interval,
            master_seed=config.master_seed,
        )
    )
    system.start()
    arrivals = {
        index: system.sim.schedule(
            item.submit_time,
            tolerant_submitter(system, item),
            priority=Priority.ARRIVAL,
            label=f"arrival-{item.application}",
        )
        for index, item in enumerate(items)
    }
    crashes, restarts, churn_events = _arm_churn(system, config)
    for steps in range(1, at_step + 1):
        if not system.sim.step():
            raise ExperimentError(
                f"run finished after {steps - 1} events, before at_step={at_step}"
            )
    return write_checkpoint(
        path,
        system,
        items,
        arrivals,
        at_step,
        kind="degraded",
        extra={
            "churn": [
                {"agent": agent, "action": action, "event": handle.descriptor()}
                for agent, action, handle in churn_events
                if handle.pending
            ],
            "crashes": crashes,
            "restarts": restarts,
        },
    )


def resume_degraded(
    path: str,
    *,
    tracer: Optional["Tracer"] = None,
    checkpoint_every: Optional[int] = None,
    checkpoint_path: Optional[str] = None,
) -> DegradedRun:
    """Resume a degraded run from a snapshot written by :func:`run_degraded`.

    Pending churn timers are re-created alongside the component state, so
    not-yet-fired crashes and restarts land at their original instants;
    the continuation is byte-identical to the uninterrupted run.
    """
    from repro.checkpoint.format import read_snapshot

    t_wall = time.perf_counter()
    payload = read_snapshot(path)
    system, items, arrivals = _rebuild_from_payload(payload, "degraded", tracer)
    churn_events: List[Tuple[str, str, object]] = []
    for entry in payload["churn"]:
        agent = system.agents[str(entry["agent"])]
        action = agent.deactivate if entry["action"] == "crash" else agent.reactivate
        churn_events.append(
            (
                str(entry["agent"]),
                str(entry["action"]),
                system.sim.restore_event(entry["event"], action),
            )
        )
    return _drive_degraded(
        system,
        items,
        arrivals,
        churn_events,
        crashes=int(payload["crashes"]),
        restarts=int(payload["restarts"]),
        steps=int(payload["steps"]),
        t_wall=t_wall,
        checkpoint_every=checkpoint_every,
        checkpoint_path=checkpoint_path,
    )


def _drive_degraded(
    system: GridSystem,
    items: List[WorkloadItem],
    arrivals,
    churn_events,
    *,
    crashes: int,
    restarts: int,
    steps: int,
    t_wall: float,
    checkpoint_every: Optional[int],
    checkpoint_path: Optional[str],
) -> DegradedRun:
    if checkpoint_every is not None and checkpoint_path is None:
        raise ExperimentError("checkpoint_every requires checkpoint_path")
    horizon = max(item.deadline for item in items)

    def resolved() -> bool:
        return (
            system.portal.submitted_count >= len(items)
            and system.portal.pending_count == 0
        )

    while not resolved():
        next_time = system.sim.next_event_time()
        if next_time is None or next_time > horizon:
            break
        system.sim.step()
        steps += 1
        if steps > MAX_EVENTS:
            raise ExperimentError(f"experiment exceeded {MAX_EVENTS} events")
        if checkpoint_every is not None and steps % checkpoint_every == 0:
            write_checkpoint(
                checkpoint_path,
                system,
                items,
                arrivals,
                steps,
                kind="degraded",
                extra={
                    "churn": [
                        {
                            "agent": agent,
                            "action": action,
                            "event": handle.descriptor(),
                        }
                        for agent, action, handle in churn_events
                        if handle.pending
                    ],
                    "crashes": crashes,
                    "restarts": restarts,
                },
            )
    for _, _, handle in churn_events:
        handle.cancel()
    system.stop()
    # Final drain: with periodics and churn off, only completions, retry
    # timers, and in-flight messages remain — a finite queue.
    while not resolved():
        if not system.sim.step():
            break
        steps += 1
        if steps > MAX_EVENTS:
            raise ExperimentError(f"experiment exceeded {MAX_EVENTS} events")

    records: List[CompletionRecord] = []
    busy = {}
    nodes = {}
    for name, scheduler in system.schedulers.items():
        records.extend(records_from_tasks(scheduler.executor.completed_tasks))
        busy[name] = scheduler.executor.busy_intervals
        nodes[name] = scheduler.resource.size
    metrics = compute_metrics(records, busy, nodes, horizon=max(system.sim.now, 1e-9))
    result = ExperimentResult(
        config=system.config,
        metrics=metrics,
        records=records,
        workload=items,
        agent_stats={name: agent.stats for name, agent in system.agents.items()},
        cache_stats=system.evaluator.cache.stats,
        messages_sent=system.transport.sent,
        rejected_count=len(system.portal.failures()),
        wall_seconds=time.perf_counter() - t_wall,
        messages_delivered=system.transport.delivered,
        rng_digest=system.rngs.state_digest() if system.rngs is not None else "",
    )
    successes = system.portal.successes()
    counters = ResilienceCounters.from_stats(
        [agent.stats for agent in system.agents.values()] + [system.portal.stats]
    )
    plan = system.transport.fault_plan
    return DegradedRun(
        result=result,
        submitted=system.portal.submitted_count,
        succeeded=len(successes),
        failed=len(system.portal.failures()),
        unresolved=system.portal.pending_count,
        deadline_met=sum(
            1
            for r in successes
            if r.completion_time is not None and r.completion_time <= r.deadline
        ),
        counters=counters,
        crashes=crashes,
        restarts=restarts,
        fault_dropped=plan.dropped_count if plan is not None else 0,
        membership=(
            MembershipSummary.from_system(system)
            if system.config.membership.enabled
            else None
        ),
    )


@dataclass(frozen=True)
class Experiment4Point:
    """One operating point of the degradation grid."""

    loss_rate: float
    churn_rate: float
    submitted: int
    succeeded: int
    failed: int
    unresolved: int
    deadline_met: int
    epsilon: float
    beta_percent: float
    counters: ResilienceCounters
    crashes: int
    restarts: int
    fault_dropped: int
    messages_sent: int
    messages_delivered: int
    wall_seconds: float

    @property
    def completion_rate(self) -> float:
        """Requests that produced a successful result / requests submitted."""
        return self.succeeded / self.submitted if self.submitted else 0.0

    @property
    def deadline_met_rate(self) -> float:
        """Requests completed by their deadline / requests submitted."""
        return self.deadline_met / self.submitted if self.submitted else 0.0


@dataclass
class Experiment4Result:
    """The full degradation study: one point per (loss, churn) pair."""

    resilient: bool
    request_count: int
    master_seed: int
    points: List[Experiment4Point]

    def point(self, loss_rate: float, churn_rate: float) -> Experiment4Point:
        """The point at exactly (*loss_rate*, *churn_rate*)."""
        for p in self.points:
            if p.loss_rate == loss_rate and p.churn_rate == churn_rate:
                return p
        raise ExperimentError(
            f"no point at loss={loss_rate}, churn={churn_rate}"
        )

    @property
    def worst_point(self) -> Experiment4Point:
        """The highest-stress point (max loss, then max churn)."""
        return max(self.points, key=lambda p: (p.loss_rate, p.churn_rate))


def run_experiment4(
    *,
    request_count: int = 600,
    master_seed: int = 2003,
    loss_rates: Sequence[float] = DEFAULT_LOSS_RATES,
    churn_rates: Sequence[float] = DEFAULT_CHURN_RATES,
    jitter: float = 0.0,
    resilient: bool = True,
    fault_spec: Optional[FaultPlanSpec] = None,
    base: Optional[ExperimentConfig] = None,
    topology: Optional[GridTopology] = None,
) -> Experiment4Result:
    """Run the degradation grid and collect one point per fault level.

    All points replay the identical seeded workload (generated once), so
    differences between points are attributable to the injected faults
    alone.  With ``fault_spec`` given, the loss grid is replaced by that
    single plan (crossed with ``churn_rates`` as usual).
    """
    cfg = base if base is not None else experiment4_base_config(
        master_seed=master_seed, request_count=request_count
    )
    topo = topology if topology is not None else case_study_topology()
    workload = generate_workload(
        topo.agent_names,
        paper_application_specs(),
        count=cfg.request_count,
        interval=cfg.request_interval,
        master_seed=cfg.master_seed,
    )
    losses: Sequence[Optional[float]] = (
        [None] if fault_spec is not None else list(loss_rates)
    )
    points: List[Experiment4Point] = []
    for churn_rate in churn_rates:
        for loss in losses:
            point_config = degradation_config(
                cfg,
                loss=loss if loss is not None else 0.0,
                churn_rate=churn_rate,
                jitter=jitter,
                resilient=resilient,
                fault_spec=fault_spec,
            )
            run = run_degraded(point_config, topo, workload=workload)
            assert point_config.faults is not None
            points.append(
                Experiment4Point(
                    loss_rate=point_config.faults.drop_probability,
                    churn_rate=churn_rate,
                    submitted=run.submitted,
                    succeeded=run.succeeded,
                    failed=run.failed,
                    unresolved=run.unresolved,
                    deadline_met=run.deadline_met,
                    epsilon=run.result.metrics.total.epsilon,
                    beta_percent=run.result.metrics.total.beta_percent,
                    counters=run.counters,
                    crashes=run.crashes,
                    restarts=run.restarts,
                    fault_dropped=run.fault_dropped,
                    messages_sent=run.result.messages_sent,
                    messages_delivered=run.result.messages_delivered,
                    wall_seconds=run.result.wall_seconds,
                )
            )
    return Experiment4Result(
        resilient=resilient,
        request_count=cfg.request_count,
        master_seed=cfg.master_seed,
        points=points,
    )
