"""Seed-robustness sweep: do the paper's conclusions survive reseeding?

The paper reports one seeded workload.  A reproduction can do better:
re-run the three experiments under several master seeds and check how
often each qualitative trend holds and how variable the grid totals are.
This is the difference between "we matched the published run" and "the
paper's conclusions are properties of the system".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ExperimentError
from repro.experiments.casestudy import GridTopology
from repro.experiments.runner import ExperimentResult
from repro.experiments.tables import check_paper_trends, run_table3

__all__ = ["SeedSweepSummary", "run_seed_sweep"]


@dataclass(frozen=True)
class SeedSweepSummary:
    """Aggregated outcome of a multi-seed Table 3 sweep.

    ``trend_support`` maps each qualitative check to the fraction of seeds
    where it held; ``totals`` maps ``(experiment index, metric)`` to the
    (mean, std) of the grid total across seeds.
    """

    seeds: Tuple[int, ...]
    request_count: int
    trend_support: Dict[str, float]
    totals: Dict[Tuple[int, str], Tuple[float, float]]
    per_seed: Dict[int, List[ExperimentResult]]

    def supported(self, threshold: float = 1.0) -> List[str]:
        """Checks that held in at least *threshold* of the seeds."""
        return sorted(
            name for name, frac in self.trend_support.items() if frac >= threshold
        )

    def total(self, experiment_index: int, metric: str) -> Tuple[float, float]:
        """``(mean, std)`` of a grid total; metric in ε/υ/β naming."""
        try:
            return self.totals[(experiment_index, metric)]
        except KeyError:
            raise ExperimentError(
                f"no total for experiment {experiment_index}, metric {metric!r}"
            ) from None


def run_seed_sweep(
    seeds: Sequence[int],
    *,
    request_count: int = 600,
    topology: GridTopology | None = None,
) -> SeedSweepSummary:
    """Run experiments 1–3 under each seed and aggregate.

    Each seed generates its own workload (agents, applications, deadlines
    all redrawn); within one seed the three experiments still share the
    identical workload, as §4.1 requires.
    """
    if not seeds:
        raise ExperimentError("seeds must not be empty")
    if len(set(seeds)) != len(seeds):
        raise ExperimentError("seeds must be unique")
    per_seed: Dict[int, List[ExperimentResult]] = {}
    support: Dict[str, List[bool]] = {}
    samples: Dict[Tuple[int, str], List[float]] = {}
    for seed in seeds:
        results = run_table3(
            master_seed=int(seed), request_count=request_count, topology=topology
        )
        per_seed[int(seed)] = results
        for check in check_paper_trends(results):
            support.setdefault(check.name, []).append(check.holds)
        for i, result in enumerate(results):
            total = result.metrics.total
            samples.setdefault((i, "epsilon"), []).append(total.epsilon)
            samples.setdefault((i, "upsilon"), []).append(total.upsilon_percent)
            samples.setdefault((i, "beta"), []).append(total.beta_percent)
    trend_support = {
        name: float(np.mean(flags)) for name, flags in support.items()
    }
    totals = {
        key: (float(np.mean(vals)), float(np.std(vals)))
        for key, vals in samples.items()
    }
    return SeedSweepSummary(
        seeds=tuple(int(s) for s in seeds),
        request_count=request_count,
        trend_support=trend_support,
        totals=totals,
        per_seed=per_seed,
    )
