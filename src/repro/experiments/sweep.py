"""Seed-robustness sweep: do the paper's conclusions survive reseeding?

The paper reports one seeded workload.  A reproduction can do better:
re-run the three experiments under several master seeds and check how
often each qualitative trend holds and how variable the grid totals are.
This is the difference between "we matched the published run" and "the
paper's conclusions are properties of the system".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ExperimentError
from repro.experiments.casestudy import GridTopology
from repro.experiments.runner import ExperimentResult
from repro.experiments.tables import check_paper_trends, run_table3

__all__ = ["SeedSweepSummary", "run_seed_sweep"]


@dataclass(frozen=True)
class SeedSweepSummary:
    """Aggregated outcome of a multi-seed Table 3 sweep.

    ``trend_support`` maps each qualitative check to the fraction of seeds
    where it held; ``totals`` maps ``(experiment index, metric)`` to the
    (mean, std) of the grid total across seeds.
    """

    seeds: Tuple[int, ...]
    request_count: int
    trend_support: Dict[str, float]
    totals: Dict[Tuple[int, str], Tuple[float, float]]
    per_seed: Dict[int, List[ExperimentResult]]

    def supported(self, threshold: float = 1.0) -> List[str]:
        """Checks that held in at least *threshold* of the seeds."""
        return sorted(
            name for name, frac in self.trend_support.items() if frac >= threshold
        )

    def total(self, experiment_index: int, metric: str) -> Tuple[float, float]:
        """``(mean, std)`` of a grid total; metric in ε/υ/β naming."""
        try:
            return self.totals[(experiment_index, metric)]
        except KeyError:
            raise ExperimentError(
                f"no total for experiment {experiment_index}, metric {metric!r}"
            ) from None

    def cache_stats(self):
        """Evaluation-cache statistics merged across every run of the sweep.

        Each experiment (one per worker in a parallel run) owns its own
        cache; :class:`~repro.pace.cache.CacheStats` merges, so the §2.2
        redundancy argument can be made sweep-wide.
        """
        from repro.experiments.parallel import merge_cache_stats

        return merge_cache_stats(
            [r for results in self.per_seed.values() for r in results]
        )


def run_seed_sweep(
    seeds: Sequence[int],
    *,
    request_count: int = 600,
    topology: GridTopology | None = None,
    jobs: int = 1,
) -> SeedSweepSummary:
    """Run experiments 1–3 under each seed and aggregate.

    Each seed generates its own workload (agents, applications, deadlines
    all redrawn); within one seed the three experiments still share the
    identical workload, as §4.1 requires.  ``jobs > 1`` flattens the
    ``len(seeds) × 3`` independent experiments onto the process-parallel
    fabric; per-seed workloads are generated once in the parent and pinned
    into every job, so the summary is identical to the sequential run.
    """
    if not seeds:
        raise ExperimentError("seeds must not be empty")
    if len(set(seeds)) != len(seeds):
        raise ExperimentError("seeds must be unique")
    per_seed: Dict[int, List[ExperimentResult]] = {}
    support: Dict[str, List[bool]] = {}
    samples: Dict[Tuple[int, str], List[float]] = {}
    if jobs == 1:
        for seed in seeds:
            per_seed[int(seed)] = run_table3(
                master_seed=int(seed), request_count=request_count, topology=topology
            )
    else:
        per_seed = _sweep_parallel(
            seeds, request_count=request_count, topology=topology, jobs=jobs
        )
    for seed in seeds:
        results = per_seed[int(seed)]
        for check in check_paper_trends(results):
            support.setdefault(check.name, []).append(check.holds)
        for i, result in enumerate(results):
            total = result.metrics.total
            samples.setdefault((i, "epsilon"), []).append(total.epsilon)
            samples.setdefault((i, "upsilon"), []).append(total.upsilon_percent)
            samples.setdefault((i, "beta"), []).append(total.beta_percent)
    trend_support = {
        name: float(np.mean(flags)) for name, flags in support.items()
    }
    totals = {
        key: (float(np.mean(vals)), float(np.std(vals)))
        for key, vals in samples.items()
    }
    return SeedSweepSummary(
        seeds=tuple(int(s) for s in seeds),
        request_count=request_count,
        trend_support=trend_support,
        totals=totals,
        per_seed=per_seed,
    )


def _sweep_parallel(
    seeds: Sequence[int],
    *,
    request_count: int,
    topology: GridTopology | None,
    jobs: int,
) -> Dict[int, List[ExperimentResult]]:
    """Fan the full (seed × experiment) grid out over the parallel fabric."""
    from repro.experiments.casestudy import case_study_topology
    from repro.experiments.config import table2_experiments
    from repro.experiments.parallel import ExperimentJob, run_many
    from repro.experiments.workload import generate_workload
    from repro.pace.workloads import paper_application_specs

    topo = topology if topology is not None else case_study_topology()
    specs = paper_application_specs()
    flat: List[ExperimentJob] = []
    for seed in seeds:
        cfgs = table2_experiments(master_seed=int(seed), request_count=request_count)
        workload = tuple(
            generate_workload(
                topo.agent_names,
                specs,
                count=cfgs[0].request_count,
                interval=cfgs[0].request_interval,
                master_seed=cfgs[0].master_seed,
            )
        )
        flat.extend(ExperimentJob(cfg, topo, workload) for cfg in cfgs)
    results = run_many(flat, jobs=jobs)
    per_seed: Dict[int, List[ExperimentResult]] = {}
    for i, seed in enumerate(seeds):
        per_seed[int(seed)] = results[3 * i : 3 * i + 3]
    return per_seed
