"""Exporting experiment results to JSON and CSV.

The harness prints the paper's tables; downstream analysis (plotting,
statistics across seeds) wants machine-readable output.  These functions
serialise :class:`~repro.experiments.runner.ExperimentResult` objects:

* :func:`metrics_to_dict` / :func:`results_to_json` — the full metric
  structure, workload digest, and per-agent routing counters;
* :func:`records_to_csv` — one row per completed task (the raw data the
  §3.3 metrics reduce);
* :func:`table3_to_csv` — Table 3's layout as CSV.
"""

from __future__ import annotations

import csv
import io
import json
import math
from typing import Any, Dict, List, Sequence

from repro.errors import ValidationError
from repro.experiments.runner import ExperimentResult
from repro.metrics.balancing import GridMetrics
from repro.metrics.records import CompletionRecord

__all__ = [
    "metrics_to_dict",
    "result_to_dict",
    "results_to_json",
    "records_to_csv",
    "table3_to_csv",
]


def _clean(value: float) -> Any:
    """JSON-safe float: NaN/inf become None."""
    if isinstance(value, float) and (math.isnan(value) or math.isinf(value)):
        return None
    return value


def metrics_to_dict(metrics: GridMetrics) -> Dict[str, Any]:
    """Serialise one experiment's GridMetrics."""
    def row(m) -> Dict[str, Any]:
        return {
            "epsilon_seconds": _clean(m.epsilon),
            "upsilon_percent": _clean(m.upsilon_percent),
            "beta_percent": _clean(m.beta_percent),
            "tasks": m.n_tasks,
            "nodes": m.n_nodes,
        }

    return {
        "horizon_seconds": metrics.horizon,
        "per_resource": {
            name: row(m) for name, m in metrics.per_resource.items()
        },
        "total": row(metrics.total),
    }


def result_to_dict(result: ExperimentResult) -> Dict[str, Any]:
    """Serialise one full experiment result."""
    return {
        "experiment": result.config.name,
        "policy": result.config.policy.value,
        "agents_enabled": result.config.agents_enabled,
        "request_count": result.config.request_count,
        "master_seed": result.config.master_seed,
        "metrics": metrics_to_dict(result.metrics),
        "messages_sent": result.messages_sent,
        "rejected_count": result.rejected_count,
        "wall_seconds": round(result.wall_seconds, 3),
        "cache": {
            "requests": result.cache_stats.requests,
            "hit_rate": round(result.cache_stats.hit_rate, 4),
        },
        "agent_stats": {
            name: {
                "requests_seen": stats.requests_seen,
                "submitted_locally": stats.submitted_locally,
                "forwarded": stats.forwarded,
                "escalated": stats.escalated,
                "rejected": stats.rejected,
            }
            for name, stats in result.agent_stats.items()
        },
    }


def results_to_json(results: Sequence[ExperimentResult], *, indent: int = 2) -> str:
    """Serialise a list of experiment results as a JSON document."""
    if not results:
        raise ValidationError("results must not be empty")
    return json.dumps([result_to_dict(r) for r in results], indent=indent)


def records_to_csv(records: Sequence[CompletionRecord]) -> str:
    """One CSV row per completed task."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        [
            "task_id", "application", "resource", "nodes", "submit_time",
            "start", "completion", "deadline", "advance", "met_deadline",
        ]
    )
    for r in records:
        writer.writerow(
            [
                r.task_id, r.application, r.resource_name, len(r.node_ids),
                r.submit_time, r.start, r.completion, r.deadline,
                round(r.advance_time, 6), int(r.met_deadline),
            ]
        )
    return buffer.getvalue()


def table3_to_csv(results: Sequence[ExperimentResult]) -> str:
    """Table 3's layout (rows = resources, 3 metric columns per experiment)."""
    if not results:
        raise ValidationError("results must not be empty")
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    header: List[str] = ["resource"]
    for i in range(len(results)):
        header += [f"e{i + 1}_epsilon_s", f"e{i + 1}_upsilon_pct", f"e{i + 1}_beta_pct"]
    writer.writerow(header)
    names = list(results[0].metrics.per_resource) + ["__total__"]
    for name in names:
        row: List[Any] = [results[0].metrics.total.name if name == "__total__" else name]
        for result in results:
            m = (
                result.metrics.total
                if name == "__total__"
                else result.metrics.resource(name)
            )
            row += [
                _clean(round(m.epsilon, 3) if m.epsilon == m.epsilon else float("nan")),
                round(m.upsilon_percent, 3),
                round(m.beta_percent, 3),
            ]
        writer.writerow(row)
    return buffer.getvalue()
