"""The case-study workload generator (§4.1).

"During each experiment, requests for one of the seven test applications
are sent at one second intervals to randomly selected agents.  The required
execution time deadline for the application is also selected randomly from
a given domain ... While the selection of agents, applications and
requirements are random, the seed is set to the same so that the workload
for each experiment is identical."

The generator is a pure function of ``(agent names, specs, count, interval,
seed)``: the same inputs always produce the identical request sequence, so
experiments 1–3 replay one workload exactly, as the paper requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.errors import ExperimentError
from repro.pace.workloads import ApplicationSpec
from repro.utils.rng import stream

__all__ = ["WorkloadItem", "generate_workload", "workload_summary"]


@dataclass(frozen=True)
class WorkloadItem:
    """One request of the workload: when, to whom, what, and by when."""

    submit_time: float
    agent_name: str
    application: str
    deadline: float  # absolute virtual time

    def __post_init__(self) -> None:
        if self.deadline <= self.submit_time:
            raise ExperimentError(
                f"deadline {self.deadline} not after submit {self.submit_time}"
            )


def generate_workload(
    agent_names: Sequence[str],
    specs: Mapping[str, ApplicationSpec],
    *,
    count: int = 600,
    interval: float = 1.0,
    master_seed: int = 2003,
    arrival: str = "uniform",
    deadline_scale: float = 1.0,
) -> List[WorkloadItem]:
    """The seeded §4.1 request sequence.

    By default requests are emitted at ``interval`` seconds apart starting
    at ``t = interval``; agent, application and deadline offset are drawn
    uniformly (the deadline from the application's Table 1 domain) — the
    paper's setting exactly.

    Two robustness knobs extend it:

    * ``arrival="poisson"`` replaces the paper's metronomic arrivals with a
      Poisson process of the same mean rate (bursty, as real portals are);
    * ``deadline_scale`` multiplies every drawn deadline offset — < 1 makes
      the workload tighter than the paper's, > 1 looser.
    """
    if not agent_names:
        raise ExperimentError("agent_names must not be empty")
    if not specs:
        raise ExperimentError("specs must not be empty")
    if count < 1:
        raise ExperimentError(f"count must be >= 1, got {count}")
    if interval <= 0:
        raise ExperimentError(f"interval must be > 0, got {interval}")
    if arrival not in ("uniform", "poisson"):
        raise ExperimentError(f"unknown arrival process {arrival!r}")
    if deadline_scale <= 0:
        raise ExperimentError(f"deadline_scale must be > 0, got {deadline_scale}")
    rng = stream(master_seed, "workload")
    names = list(agent_names)
    app_names = list(specs)
    items: List[WorkloadItem] = []
    t = 0.0
    for i in range(count):
        if arrival == "uniform":
            t = (i + 1) * interval
        else:
            t += float(rng.exponential(interval))
        agent = names[int(rng.integers(len(names)))]
        app = app_names[int(rng.integers(len(app_names)))]
        low, high = specs[app].deadline_bounds
        offset = float(rng.uniform(low, high)) * deadline_scale
        items.append(
            WorkloadItem(
                submit_time=t,
                agent_name=agent,
                application=app,
                deadline=t + offset,
            )
        )
    return items


def workload_summary(items: Sequence[WorkloadItem]) -> Dict[str, Dict[str, float]]:
    """Counts per agent and per application (workload sanity reporting)."""
    per_agent: Dict[str, int] = {}
    per_app: Dict[str, int] = {}
    for item in items:
        per_agent[item.agent_name] = per_agent.get(item.agent_name, 0) + 1
        per_app[item.application] = per_app.get(item.application, 0) + 1
    return {"per_agent": per_agent, "per_application": per_app}
