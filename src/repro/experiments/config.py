"""Experiment configurations — Table 2's design matrix and its knobs.

Table 2 defines three experiments over one fixed workload:

========================  =====  =====  =====
                           1      2      3
========================  =====  =====  =====
FIFO algorithm             ✓
GA algorithm                      ✓      ✓
Agent-based discovery                    ✓
========================  =====  =====  =====

:func:`table2_experiments` returns exactly those three configurations;
every knob (workload size, pull cadence, GA tunables, prediction noise) is
exposed so the ablation benches can depart from the paper's settings
explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro.agents.discovery import DiscoveryConfig
from repro.agents.membership import MembershipConfig
from repro.agents.policy import GlobalPolicyConfig
from repro.agents.resilience import ResilienceConfig
from repro.errors import ExperimentError
from repro.net.faults import ChurnSpec, FaultPlanSpec
from repro.scheduling.ga import GAConfig
from repro.scheduling.scheduler import SchedulingPolicy

__all__ = ["ExperimentConfig", "table2_experiments"]


@dataclass(frozen=True)
class ExperimentConfig:
    """One experiment's full parameterisation.

    Defaults reproduce §4.1: 600 requests at one-second intervals
    ("The request phase of each experiment lasts for ten minutes during
    which 600 task execution requests are sent out"), agents pulling
    service information every ten seconds, and a shared master seed so
    "the workload for each experiment is identical".
    """

    name: str
    policy: SchedulingPolicy
    agents_enabled: bool
    request_count: int = 600
    request_interval: float = 1.0
    pull_interval: float = 10.0
    master_seed: int = 2003
    generations_per_event: int = 10
    ga_config: GAConfig = field(default_factory=GAConfig)
    discovery: DiscoveryConfig = field(default_factory=DiscoveryConfig)
    prediction_noise: float = 0.0
    runtime_noise: float = 0.0
    advertisement: str = "pull"  # "pull" | "push" | "none"
    monitor_poll_interval: float = 300.0
    freetime_mode: str = "makespan"  # "makespan" (paper) | "mean" | "min"
    # Robustness layer (Experiment 4).  All three default to "off" and the
    # defaults are property-tested byte-identical to the seed behaviour.
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)
    faults: Optional[FaultPlanSpec] = None
    churn: Optional[ChurnSpec] = None
    # Self-healing hierarchy (Experiment 5): heartbeat/lease failure
    # detection plus deterministic re-parenting.  Disabled by default —
    # a default config builds no detector, arms no timers, and is
    # byte-identical to the seed (property-tested).
    membership: MembershipConfig = field(default_factory=MembershipConfig)
    # Global balancing policy (Experiment 6): "eq10" (the paper's rule,
    # the default — byte-identical to the seed path), "auction"
    # (contract-net CFP/bid dispatch), or "reservation" (advance
    # freetime-window booking).  Note ``policy`` above selects the
    # *local* scheduling algorithm (FIFO/GA); this knob selects the
    # *global* dispatch rule the agents run between clusters.
    global_policy: GlobalPolicyConfig = field(default_factory=GlobalPolicyConfig)
    # Event-engine selection: "partitioned" (per-cluster lanes) or
    # "single-heap" (the preserved seed engine, kept as a correctness
    # oracle and perf baseline).  Byte-identical outputs either way —
    # property-tested in tests/properties/test_engine_equivalence.py.
    engine: str = "partitioned"

    def __post_init__(self) -> None:
        if not self.name:
            raise ExperimentError("experiment name must be non-empty")
        if self.request_count < 1:
            raise ExperimentError("request_count must be >= 1")
        if self.request_interval <= 0:
            raise ExperimentError("request_interval must be > 0")
        if self.pull_interval <= 0:
            raise ExperimentError("pull_interval must be > 0")
        if self.generations_per_event < 0:
            raise ExperimentError("generations_per_event must be >= 0")
        if self.prediction_noise < 0 or self.runtime_noise < 0:
            raise ExperimentError("noise factors must be >= 0")
        if self.advertisement not in ("pull", "push", "none"):
            raise ExperimentError(f"unknown advertisement {self.advertisement!r}")
        if self.freetime_mode not in ("makespan", "mean", "min"):
            raise ExperimentError(f"unknown freetime_mode {self.freetime_mode!r}")
        if self.engine not in ("partitioned", "single-heap"):
            raise ExperimentError(f"unknown engine {self.engine!r}")
        if self.global_policy.kind != "eq10" and not self.agents_enabled:
            raise ExperimentError(
                f"global policy {self.global_policy.kind!r} requires the "
                "agent mechanism (agents_enabled=True)"
            )
        if not self.agents_enabled and not self.discovery.local_only:
            # Keep the two flags coherent: no agents => local-only discovery.
            object.__setattr__(
                self, "discovery", replace(self.discovery, local_only=True)
            )

    @property
    def request_phase_seconds(self) -> float:
        """Duration of the request phase (600 s in the paper)."""
        return self.request_count * self.request_interval

    def scaled(self, request_count: int) -> "ExperimentConfig":
        """A copy with a smaller workload (tests and quick benches)."""
        return replace(self, request_count=request_count)


def table2_experiments(
    *, master_seed: int = 2003, request_count: int = 600
) -> List[ExperimentConfig]:
    """The paper's three experiments, sharing one seeded workload."""
    common = dict(master_seed=master_seed, request_count=request_count)
    return [
        ExperimentConfig(
            name="experiment-1",
            policy=SchedulingPolicy.FIFO,
            agents_enabled=False,
            **common,
        ),
        ExperimentConfig(
            name="experiment-2",
            policy=SchedulingPolicy.GA,
            agents_enabled=False,
            **common,
        ),
        ExperimentConfig(
            name="experiment-3",
            policy=SchedulingPolicy.GA,
            agents_enabled=True,
            **common,
        ),
    ]
