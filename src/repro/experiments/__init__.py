"""The §4 case study: configurations, workload, runner, tables and figures."""

from repro.experiments.casestudy import (
    CASE_STUDY_PLATFORMS,
    CASE_STUDY_TREE,
    GridTopology,
    case_study_topology,
    scaled_topology,
)
from repro.experiments.config import ExperimentConfig, table2_experiments
from repro.experiments.ablations import (
    base_config,
    sweep_advertisement,
    sweep_agent_count,
    sweep_freetime_mode,
    sweep_prediction_noise,
    sweep_pull_interval,
)
from repro.experiments.export import (
    metrics_to_dict,
    records_to_csv,
    result_to_dict,
    results_to_json,
    table3_to_csv,
)
from repro.experiments.experiment4 import (
    DegradedRun,
    Experiment4Point,
    Experiment4Result,
    degradation_config,
    experiment4_base_config,
    run_degraded,
    run_experiment4,
)
from repro.experiments.experiment6 import (
    Experiment6Cell,
    Experiment6Point,
    Experiment6Result,
    experiment6_cells,
    run_experiment6,
    run_policy_invariants,
    verify_clean_parity,
)
from repro.experiments.runner import (
    ExperimentResult,
    GridSystem,
    build_grid,
    run_experiment,
)
from repro.experiments.sweep import SeedSweepSummary, run_seed_sweep
from repro.experiments.tables import (
    TrendCheck,
    check_paper_trends,
    figure8_series,
    figure9_series,
    figure10_series,
    run_table3,
    table1_rows,
    validate_table1,
)
from repro.experiments.workload import WorkloadItem, generate_workload, workload_summary

__all__ = [
    "base_config",
    "sweep_advertisement",
    "sweep_agent_count",
    "sweep_freetime_mode",
    "sweep_prediction_noise",
    "sweep_pull_interval",
    "CASE_STUDY_PLATFORMS",
    "CASE_STUDY_TREE",
    "GridTopology",
    "case_study_topology",
    "scaled_topology",
    "ExperimentConfig",
    "table2_experiments",
    "metrics_to_dict",
    "records_to_csv",
    "result_to_dict",
    "results_to_json",
    "table3_to_csv",
    "DegradedRun",
    "Experiment4Point",
    "Experiment4Result",
    "degradation_config",
    "experiment4_base_config",
    "run_degraded",
    "run_experiment4",
    "Experiment6Cell",
    "Experiment6Point",
    "Experiment6Result",
    "experiment6_cells",
    "run_experiment6",
    "run_policy_invariants",
    "verify_clean_parity",
    "ExperimentResult",
    "GridSystem",
    "build_grid",
    "run_experiment",
    "SeedSweepSummary",
    "run_seed_sweep",
    "TrendCheck",
    "check_paper_trends",
    "figure8_series",
    "figure9_series",
    "figure10_series",
    "run_table3",
    "table1_rows",
    "validate_table1",
    "WorkloadItem",
    "generate_workload",
    "workload_summary",
]
