"""Regenerating the paper's tables and figures.

Each public function maps onto one evaluation artefact:

* :func:`table1_rows` / :func:`validate_table1` — Table 1 (the seven
  applications' predictions on the SGIOrigin2000);
* :func:`run_table3` — runs experiments 1–3 and returns their metrics,
  the data behind Table 3 *and* Figures 8–10;
* :func:`figure8_series` / :func:`figure9_series` / :func:`figure10_series`
  — per-metric figure datasets;
* :func:`check_paper_trends` — the qualitative shape assertions listed in
  DESIGN.md §5 (who wins, in which direction, on which resources).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ExperimentError
from repro.experiments.casestudy import GridTopology
from repro.experiments.config import ExperimentConfig, table2_experiments
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.experiments.workload import generate_workload
from repro.metrics.balancing import GridMetrics
from repro.metrics.reporting import figure_series
from repro.pace.evaluation import EvaluationEngine
from repro.pace.hardware import SGI_ORIGIN_2000
from repro.pace.workloads import (
    APPLICATION_NAMES,
    TABLE1_DEADLINE_BOUNDS,
    TABLE1_TIMES,
    paper_applications,
)

__all__ = [
    "table1_rows",
    "validate_table1",
    "run_table3",
    "figure8_series",
    "figure9_series",
    "figure10_series",
    "TrendCheck",
    "check_paper_trends",
]


def table1_rows(max_nproc: int = 16) -> List[Tuple[str, Tuple[float, float], List[float]]]:
    """Table 1 as produced by *our* evaluation engine (not the raw data).

    Returns ``(application, deadline bounds, [t(1) ... t(max_nproc)])``
    rows; :func:`validate_table1` asserts they equal the published values.
    """
    engine = EvaluationEngine()
    rows = []
    for name, model in paper_applications().items():
        times = [
            engine.evaluate_count(model, k, SGI_ORIGIN_2000)
            for k in range(1, max_nproc + 1)
        ]
        rows.append((name, TABLE1_DEADLINE_BOUNDS[name], times))
    return rows


def validate_table1() -> None:
    """Assert the evaluation engine reproduces Table 1 exactly.

    Raises
    ------
    ExperimentError
        On any mismatch with the published values.
    """
    for name, _bounds, times in table1_rows():
        expected = list(map(float, TABLE1_TIMES[name]))
        if times != expected:
            raise ExperimentError(
                f"Table 1 mismatch for {name!r}: {times} != {expected}"
            )


def run_table3(
    *,
    master_seed: int = 2003,
    request_count: int = 600,
    topology: Optional[GridTopology] = None,
    configs: Optional[Sequence[ExperimentConfig]] = None,
    jobs: int = 1,
) -> List[ExperimentResult]:
    """Run experiments 1–3 over one shared workload; returns their results.

    The workload is generated once and passed to every run, making the
    three experiments differ *only* in their load-balancing configuration,
    exactly as §4.1 requires.  ``jobs > 1`` fans the (independent)
    experiments out over the process-parallel fabric; results are ordered
    and seed-identical either way.
    """
    cfgs = (
        list(configs)
        if configs is not None
        else table2_experiments(master_seed=master_seed, request_count=request_count)
    )
    if not cfgs:
        raise ExperimentError("no experiment configurations given")
    # One workload for all experiments (same agents, same seed).
    from repro.experiments.casestudy import case_study_topology
    from repro.experiments.parallel import ExperimentJob, run_many
    from repro.pace.workloads import paper_application_specs

    topo = topology if topology is not None else case_study_topology()
    workload = generate_workload(
        topo.agent_names,
        paper_application_specs(),
        count=cfgs[0].request_count,
        interval=cfgs[0].request_interval,
        master_seed=cfgs[0].master_seed,
    )
    if jobs == 1:
        return [run_experiment(cfg, topo, workload=workload) for cfg in cfgs]
    return run_many(
        [ExperimentJob(cfg, topo, tuple(workload)) for cfg in cfgs], jobs=jobs
    )


def figure8_series(results: Sequence[ExperimentResult]) -> Dict[str, List[float]]:
    """Fig. 8's dataset: ε per agent across experiments (seconds)."""
    return figure_series([r.metrics for r in results], "epsilon")


def figure9_series(results: Sequence[ExperimentResult]) -> Dict[str, List[float]]:
    """Fig. 9's dataset: υ per agent across experiments (percent)."""
    return figure_series([r.metrics for r in results], "upsilon")


def figure10_series(results: Sequence[ExperimentResult]) -> Dict[str, List[float]]:
    """Fig. 10's dataset: β per agent across experiments (percent)."""
    return figure_series([r.metrics for r in results], "beta")


@dataclass(frozen=True)
class TrendCheck:
    """One qualitative shape assertion and whether the results satisfy it."""

    name: str
    holds: bool
    detail: str


def check_paper_trends(results: Sequence[ExperimentResult]) -> List[TrendCheck]:
    """Evaluate the paper's qualitative conclusions against our results.

    Expects the results of experiments 1–3 in order.  These are the shape
    properties DESIGN.md §5 commits to — not absolute numbers.
    """
    if len(results) != 3:
        raise ExperimentError(f"expected 3 experiment results, got {len(results)}")
    m1, m2, m3 = (r.metrics for r in results)
    checks: List[TrendCheck] = []

    def add(name: str, holds: bool, detail: str) -> None:
        checks.append(TrendCheck(name, holds, detail))

    eps = [m.total.epsilon for m in (m1, m2, m3)]
    add(
        "epsilon-improves",
        eps[0] < eps[1] < eps[2],
        f"ε totals {[round(e) for e in eps]} (paper: -475 < -295 < 32)",
    )
    add(
        "exp1-misses-deadlines",
        eps[0] < 0,
        f"experiment 1 ε = {eps[0]:.0f}s (paper: ≈ -8 minutes)",
    )
    add(
        "exp3-meets-deadlines",
        eps[2] > 0,
        f"experiment 3 ε = {eps[2]:.0f}s (paper: +32 s)",
    )
    ups = [m.total.upsilon_percent for m in (m1, m2, m3)]
    add(
        "utilisation-improves",
        ups[0] < ups[1] < ups[2],
        f"υ totals {[round(u) for u in ups]}% (paper: 26 < 38 < 80)",
    )
    betas = [m.total.beta_percent for m in (m1, m2, m3)]
    add(
        "balance-improves",
        betas[0] < betas[1] < betas[2],
        f"β totals {[round(b) for b in betas]}% (paper: 31 < 42 < 90)",
    )
    add(
        "agents-dominate-global-balance",
        (betas[2] - betas[1]) > (betas[1] - betas[0]),
        "the agent mechanism improves grid-wide β more than the GA did",
    )
    slow = [n for n in m1.per_resource if n in ("S11", "S12")]
    if slow:
        ga_gain = min(
            m2.resource(n).epsilon - m1.resource(n).epsilon for n in slow
        )
        add(
            "ga-helps-overloaded",
            ga_gain > 0,
            f"GA improves ε on the overloaded {slow} by ≥ {ga_gain:.0f}s",
        )
    fast = [n for n in m1.per_resource if n in ("S1", "S2")]
    if fast:
        agent_gain = min(
            m3.resource(n).upsilon - m2.resource(n).upsilon for n in fast
        )
        add(
            "agents-load-fast-platforms",
            agent_gain > 0,
            f"agents raise utilisation of lightly-loaded {fast} "
            f"by ≥ {agent_gain * 100:.0f} points",
        )
    return checks
