"""Experiment 6 — the standing global-policy tournament.

Experiments 1–3 fixed the *global* dispatch rule to the paper's eq. (10)
and varied the local scheduler; Experiments 4–5 stressed the fabric and
the hierarchy under that same rule.  Experiment 6 makes the dispatch rule
itself the variable: every :data:`~repro.agents.policy.POLICY_KINDS`
policy — ``eq10`` (the paper), ``auction`` (contract-net CFP/bid), and
``reservation`` (advance freetime-window booking) — runs the identical
seeded workload across four standing cells:

* **clean** — the §4.1 case-study grid, no faults.  The eq10 point of
  this cell is the parity anchor: it must be byte-identical to a run of
  the default configuration (the pre-policy-layer seed behaviour), which
  :func:`verify_clean_parity` asserts on traces, metrics, and RNG digests.
* **loss** — 20 % per-message drop with the resilient protocol, probing
  how each policy's extra round trips (bids, reservations) survive loss.
* **bursty** — a generated MMPP scenario on a larger grid
  (:mod:`repro.experiments.scenarios`), probing behaviour when arrivals
  cluster far above the mean rate.
* **churn** — half the coordinators crash permanently with healing on,
  probing each policy's release/settlement paths on confirmed death.

Reported per (policy × cell) point: completion and deadline-SLO rates
and the §3.3 balancing metrics (ε, υ, β).  Every cell replays one
identical workload across the three policies, so within a cell every
difference is attributable to the dispatch rule alone.

:func:`run_policy_invariants` backs ``repro.cli experiment6 --check``:
it traces an auction run on the clean cell and a reservation run on the
churn cell, feeds both streams through
:func:`~repro.obs.check.check_trace` (which enforces every-auction-
settles-or-times-out, no-double-booked-windows, and reservations-
released-on-confirmed-death), and requires the runs to actually exercise
the protocols (at least one settle, at least one booking).
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import repro.net.message as message_module
from repro.agents.policy import POLICY_KINDS, GlobalPolicyConfig
from repro.errors import ExperimentError
from repro.experiments.casestudy import GridTopology, case_study_topology
from repro.experiments.config import ExperimentConfig
from repro.experiments.experiment4 import (
    DegradedRun,
    degradation_config,
    experiment4_base_config,
    run_degraded,
)
from repro.experiments.experiment5 import experiment5_config
from repro.experiments.scenarios import ScenarioSpec, generate_scenario
from repro.experiments.workload import WorkloadItem, generate_workload
from repro.obs import MemorySink, Tracer, Violation, canonical_lines, check_trace
from repro.pace.workloads import paper_application_specs
from repro.scheduling.scheduler import SchedulingPolicy

__all__ = [
    "CELLS",
    "DEFAULT_BURSTY_AGENTS",
    "LOSS_RATE",
    "CHURN_RATE",
    "Experiment6Cell",
    "Experiment6Point",
    "Experiment6Result",
    "InvariantRun",
    "experiment6_cells",
    "run_experiment6",
    "run_policy_invariants",
    "verify_clean_parity",
]

#: The standing cells, in tournament order.
CELLS: Tuple[str, ...] = ("clean", "loss", "bursty", "churn")

#: Loss cell severity — the worst point of Experiment 4's default grid.
LOSS_RATE = 0.2
#: Churn cell severity — Experiment 5's default coordinator-churn rate.
CHURN_RATE = 0.5
#: Bursty cell grid size.  Five times the case study, small enough that
#: the full 3-policy tournament stays interactive.
DEFAULT_BURSTY_AGENTS = 60


@dataclass(frozen=True)
class Experiment6Cell:
    """One standing cell: its base config and the shared workload.

    ``config`` still carries the *default* global policy; the tournament
    stamps each contender in with :func:`dataclasses.replace`.
    """

    name: str
    config: ExperimentConfig
    topology: GridTopology
    workload: Tuple[WorkloadItem, ...]


def experiment6_cells(
    *,
    request_count: int = 600,
    master_seed: int = 2003,
    bursty_agents: int = DEFAULT_BURSTY_AGENTS,
    cells: Sequence[str] = CELLS,
) -> List[Experiment6Cell]:
    """Build the requested cells, each with one seeded shared workload.

    The clean/loss/churn cells share the case-study topology and one
    workload; the bursty cell generates its own larger grid and MMPP
    request stream (same master seed, so the whole tournament is one
    deterministic function of ``(request_count, master_seed,
    bursty_agents)``).
    """
    unknown = [c for c in cells if c not in CELLS]
    if unknown:
        raise ExperimentError(f"unknown experiment-6 cells {unknown!r}")
    base = experiment4_base_config(
        master_seed=master_seed, request_count=request_count
    )
    base = replace(base, name="experiment-6")
    topo = case_study_topology()
    built: List[Experiment6Cell] = []
    case_workload: Optional[Tuple[WorkloadItem, ...]] = None

    def shared_workload() -> Tuple[WorkloadItem, ...]:
        nonlocal case_workload
        if case_workload is None:
            case_workload = tuple(
                generate_workload(
                    topo.agent_names,
                    paper_application_specs(),
                    count=base.request_count,
                    interval=base.request_interval,
                    master_seed=base.master_seed,
                )
            )
        return case_workload

    for cell in cells:
        if cell == "clean":
            built.append(
                Experiment6Cell(
                    name="clean",
                    config=replace(base, name=f"{base.name}-clean"),
                    topology=topo,
                    workload=shared_workload(),
                )
            )
        elif cell == "loss":
            built.append(
                Experiment6Cell(
                    name="loss",
                    config=degradation_config(
                        base, loss=LOSS_RATE, resilient=True
                    ),
                    topology=topo,
                    workload=shared_workload(),
                )
            )
        elif cell == "bursty":
            scenario = generate_scenario(
                ScenarioSpec(
                    name="experiment-6-bursty",
                    agent_count=bursty_agents,
                    request_count=request_count,
                    arrival="mmpp",
                    master_seed=master_seed,
                )
            )
            # FIFO locally, like every scale-tier run: the bursty cell
            # measures the dispatch rule under load spikes, not the GA.
            built.append(
                Experiment6Cell(
                    name="bursty",
                    config=scenario.spec.config(policy=SchedulingPolicy.FIFO),
                    topology=scenario.topology,
                    workload=scenario.workload,
                )
            )
        elif cell == "churn":
            built.append(
                Experiment6Cell(
                    name="churn",
                    config=experiment5_config(
                        base, topo, churn_rate=CHURN_RATE, healing=True
                    ),
                    topology=topo,
                    workload=shared_workload(),
                )
            )
    return built


@dataclass(frozen=True)
class Experiment6Point:
    """One (policy × cell) entry of the tournament."""

    policy: str
    cell: str
    submitted: int
    succeeded: int
    failed: int
    unresolved: int
    deadline_met: int
    epsilon: float
    upsilon_percent: float
    beta_percent: float
    wall_seconds: float

    @property
    def completion_rate(self) -> float:
        """Requests that produced a successful result / requests submitted."""
        return self.succeeded / self.submitted if self.submitted else 0.0

    @property
    def deadline_met_rate(self) -> float:
        """Requests completed by their deadline / requests submitted."""
        return self.deadline_met / self.submitted if self.submitted else 0.0


@dataclass
class Experiment6Result:
    """The full tournament: one point per (policy × cell).

    ``parity`` is ``None`` unless the run was asked to verify the eq10
    clean-cell anchor (``verify_parity=True``); then it holds the list of
    mismatch descriptions (empty = byte-identical, as required).
    """

    request_count: int
    master_seed: int
    bursty_agents: int
    points: List[Experiment6Point]
    parity: Optional[List[str]] = None

    def point(self, policy: str, cell: str) -> Experiment6Point:
        """The point at exactly (*policy*, *cell*)."""
        for p in self.points:
            if p.policy == policy and p.cell == cell:
                return p
        raise ExperimentError(f"no point at policy={policy!r}, cell={cell!r}")

    def cell_points(self, cell: str) -> List[Experiment6Point]:
        """Every policy's point for one cell, in POLICY_KINDS order."""
        points = [p for p in self.points if p.cell == cell]
        return sorted(points, key=lambda p: POLICY_KINDS.index(p.policy))


def _run_point(cell: Experiment6Cell, kind: str) -> DegradedRun:
    config = replace(
        cell.config,
        name=f"{cell.config.name}-{kind}",
        global_policy=GlobalPolicyConfig(kind=kind),
    )
    return run_degraded(config, cell.topology, workload=list(cell.workload))


def run_experiment6(
    *,
    request_count: int = 600,
    master_seed: int = 2003,
    bursty_agents: int = DEFAULT_BURSTY_AGENTS,
    policies: Sequence[str] = POLICY_KINDS,
    cells: Sequence[str] = CELLS,
    verify_parity: bool = False,
) -> Experiment6Result:
    """Run the tournament: every policy through every requested cell.

    Within a cell, all policies replay the identical workload.  With
    ``verify_parity`` the clean cell's eq10 point is additionally
    re-traced against the default configuration and the result's
    ``parity`` lists any divergence (it must be empty).
    """
    unknown = [p for p in policies if p not in POLICY_KINDS]
    if unknown:
        raise ExperimentError(f"unknown global policies {unknown!r}")
    built = experiment6_cells(
        request_count=request_count,
        master_seed=master_seed,
        bursty_agents=bursty_agents,
        cells=cells,
    )
    points: List[Experiment6Point] = []
    for cell in built:
        for kind in policies:
            t_wall = time.perf_counter()
            run = _run_point(cell, kind)
            points.append(
                Experiment6Point(
                    policy=kind,
                    cell=cell.name,
                    submitted=run.submitted,
                    succeeded=run.succeeded,
                    failed=run.failed,
                    unresolved=run.unresolved,
                    deadline_met=run.deadline_met,
                    epsilon=run.result.metrics.total.epsilon,
                    upsilon_percent=run.result.metrics.total.upsilon_percent,
                    beta_percent=run.result.metrics.total.beta_percent,
                    wall_seconds=time.perf_counter() - t_wall,
                )
            )
    parity = None
    if verify_parity:
        parity = verify_clean_parity(
            request_count=request_count, master_seed=master_seed
        )
    return Experiment6Result(
        request_count=request_count,
        master_seed=master_seed,
        bursty_agents=bursty_agents,
        points=points,
        parity=parity,
    )


# ------------------------------------------------------------ verification


def _traced_clean_run(
    config: ExperimentConfig,
    topology: GridTopology,
    workload: Sequence[WorkloadItem],
) -> Tuple[DegradedRun, List[str]]:
    message_module.set_message_counter(0)
    tracer = Tracer(MemorySink())
    run = run_degraded(config, topology, workload=list(workload), tracer=tracer)
    return run, canonical_lines(tracer.records)


def verify_clean_parity(
    *, request_count: int = 120, master_seed: int = 2003
) -> List[str]:
    """Assert the clean-cell eq10 point ≡ the pre-policy seed behaviour.

    Runs the clean cell twice — once with the default configuration (the
    seed path) and once with an *explicitly* selected ``eq10`` policy
    carrying non-default timeouts (which eq10 must ignore) — and compares
    the canonical trace, the balancing metrics, the message counters, and
    the RNG digest.  Returns the list of divergences; byte-identity means
    an empty list.
    """
    (cell,) = experiment6_cells(
        request_count=request_count, master_seed=master_seed, cells=("clean",)
    )
    baseline_cfg = replace(cell.config, global_policy=GlobalPolicyConfig())
    explicit_cfg = replace(
        cell.config,
        global_policy=GlobalPolicyConfig(
            kind="eq10", bid_timeout=7.5, reservation_timeout=11.0
        ),
    )
    base_run, base_lines = _traced_clean_run(
        baseline_cfg, cell.topology, cell.workload
    )
    expl_run, expl_lines = _traced_clean_run(
        explicit_cfg, cell.topology, cell.workload
    )
    mismatches: List[str] = []
    if base_lines != expl_lines:
        first = next(
            (
                i
                for i, (a, b) in enumerate(zip(base_lines, expl_lines))
                if a != b
            ),
            min(len(base_lines), len(expl_lines)),
        )
        mismatches.append(
            f"trace diverges at record {first} "
            f"({len(base_lines)} vs {len(expl_lines)} records)"
        )
    # Serialise before comparing: NaN cells (idle resources in short
    # runs) are equal as JSON text but never as floats.
    base_metrics = json.dumps(asdict(base_run.result.metrics), sort_keys=True)
    expl_metrics = json.dumps(asdict(expl_run.result.metrics), sort_keys=True)
    if base_metrics != expl_metrics:
        mismatches.append("balancing metrics differ")
    for field in ("submitted", "succeeded", "failed", "deadline_met"):
        a, b = getattr(base_run, field), getattr(expl_run, field)
        if a != b:
            mismatches.append(f"{field} differs: {a} vs {b}")
    for field in ("messages_sent", "messages_delivered", "rng_digest"):
        a = getattr(base_run.result, field)
        b = getattr(expl_run.result, field)
        if a != b:
            mismatches.append(f"{field} differs: {a} vs {b}")
    return mismatches


@dataclass(frozen=True)
class InvariantRun:
    """One traced policy run and what the checker made of it."""

    policy: str
    cell: str
    violations: Tuple[Violation, ...]
    record_counts: Dict[str, int]
    completion_rate: float


def run_policy_invariants(
    *, request_count: int = 120, master_seed: int = 2003
) -> List[InvariantRun]:
    """Trace the structural-invariant probe runs for ``--check``.

    An auction run on the clean cell and a reservation run on the churn
    cell (churn exercises release-on-confirmed-death), each through
    :func:`~repro.obs.check.check_trace`.  The caller asserts zero
    violations *and* that the protocols actually fired (≥ 1
    ``auction.settle``, ≥ 1 ``resv.book``).
    """
    cells = {
        cell.name: cell
        for cell in experiment6_cells(
            request_count=request_count,
            master_seed=master_seed,
            cells=("clean", "churn"),
        )
    }
    probes = (("auction", "clean"), ("reservation", "churn"))
    out: List[InvariantRun] = []
    for kind, cell_name in probes:
        cell = cells[cell_name]
        config = replace(
            cell.config,
            name=f"{cell.config.name}-{kind}",
            global_policy=GlobalPolicyConfig(kind=kind),
        )
        message_module.set_message_counter(0)
        tracer = Tracer(MemorySink())
        run = run_degraded(
            config, cell.topology, workload=list(cell.workload), tracer=tracer
        )
        counts: Dict[str, int] = {}
        for record in tracer.records:
            if record.kind.startswith(("auction.", "resv.")):
                counts[record.kind] = counts.get(record.kind, 0) + 1
        out.append(
            InvariantRun(
                policy=kind,
                cell=cell_name,
                violations=tuple(check_trace(tracer.records)),
                record_counts=counts,
                completion_rate=(
                    run.succeeded / run.submitted if run.submitted else 0.0
                ),
            )
        )
    return out
