"""Parametric scenario generation: grids and workloads beyond the paper.

The case study stops at 12 agents and 600 metronomic requests.  This module
generates whole experiment *scenarios* — topology plus workload — across
the scale axis the ROADMAP targets (12 → 5000 agents) and across arrival
processes real portals exhibit:

========== ==============================================================
uniform    the paper's metronomic arrivals (one per ``1/rate`` seconds)
poisson    memoryless arrivals at mean *rate*
mmpp       2-state Markov-modulated Poisson process: quiet periods
           punctuated by bursts at ``burst_multiplier`` × the base rate
diurnal    sinusoidally rate-modulated Poisson (Lewis–Shedler thinning),
           a day/night load cycle compressed to ``diurnal_period`` seconds
pareto     heavy-tailed inter-arrival gaps (Pareto-I with shape
           ``pareto_alpha``), same mean gap as the Poisson case
========== ==============================================================

Everything is drawn from named :class:`~repro.utils.rng.RngRegistry`
streams of the spec's master seed, so a scenario is a pure function of its
spec: the same spec always yields a byte-identical grid and workload
(property-tested), and generated runs checkpoint, resume, and replay like
the paper-scale ones.  Two independent streams are used on purpose —
``scenario-topology`` for the hardware mix and ``scenario-workload`` for
request targeting — so changing the arrival process never reshuffles which
agent or application a request hits.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Tuple

from repro.agents.membership import MembershipConfig
from repro.agents.resilience import ResilienceConfig
from repro.errors import ExperimentError
from repro.experiments.casestudy import GridTopology
from repro.experiments.config import ExperimentConfig
from repro.experiments.workload import WorkloadItem
from repro.net.faults import ChurnSpec, FaultPlanSpec, StragglerFault
from repro.pace.hardware import DEFAULT_CATALOGUE
from repro.pace.workloads import paper_application_specs
from repro.scheduling.scheduler import SchedulingPolicy
from repro.tasks.graph import (
    WORKFLOW_SHAPES,
    TaskGraph,
    fork_join,
    map_reduce,
    montage,
)
from repro.utils.rng import RngRegistry

__all__ = [
    "ARRIVAL_PROCESSES",
    "CASE_STUDY_MIX",
    "CHAOS_PRESETS",
    "MAX_AGENTS",
    "Scenario",
    "ScenarioSpec",
    "WorkflowItem",
    "generate_scenario",
    "generate_topology",
    "generate_arrival_times",
    "generate_workflows",
    "scenario_fingerprint",
    "workflow_graph",
]

#: Supported arrival processes (see the module table).
ARRIVAL_PROCESSES = ("uniform", "poisson", "mmpp", "diurnal", "pareto")

#: Chaos tiers a scenario can opt into (``ScenarioSpec.chaos``):
#: ``"none"`` (default, byte-identical to pre-chaos scenarios),
#: ``"loss"`` (plan-wide message drop + latency jitter),
#: ``"coordinator-churn"`` (a quarter of the coordinators crash for good),
#: ``"stragglers"`` (~2% of the leaves go grey: slow responses, slow
#: service), and ``"grey-combo"`` (churn + stragglers + mild loss).
CHAOS_PRESETS = ("none", "loss", "coordinator-churn", "stragglers", "grey-combo")

#: Grey-failure severity used by the chaos presets: a straggler's sends
#: arrive ``uniform(0.5, 1.5) × 3 s`` late — enough to trip suspicion on
#: the default detector, never enough to confirm death — and its tasks run
#: twice as slow as predicted.
CHAOS_STRAGGLER_DELAY = 3.0
CHAOS_STRAGGLER_FACTOR = 2.0
#: Fraction of coordinators the churn presets crash (restarts never fire —
#: the downtime outlives any run, making every crash permanent).
CHAOS_CHURN_RATE = 0.25
CHAOS_CHURN_DOWNTIME = 1e9

#: Ceiling on generated grid size — the ROADMAP's 100× target with slack.
MAX_AGENTS = 5000

#: Stage depth per workflow shape — the number of sequential graph levels,
#: used to scale a whole-graph deadline from the per-task Table 1 domains.
_SHAPE_DEPTH: Mapping[str, int] = {
    "fork-join": 3,
    "map-reduce": 4,
    "montage": 5,
}

#: The case study's hardware proportions (Fig. 7: 2/2/3/3/2 agents across
#: the PACE platform table) as sampling weights — the default mix keeps
#: generated grids as heterogeneous as the paper's.
CASE_STUDY_MIX: Mapping[str, float] = {
    "SGIOrigin2000": 2.0,
    "SunUltra10": 2.0,
    "SunUltra5": 3.0,
    "SunUltra1": 3.0,
    "SunSPARCstation2": 2.0,
}


@dataclass(frozen=True)
class ScenarioSpec:
    """Full parameterisation of one generated scenario.

    Parameters
    ----------
    agent_count:
        Grid size, 1–:data:`MAX_AGENTS` agents (one cluster each).
    branching:
        Hierarchy fan-out: agents form a complete *branching*-ary tree
        (depth therefore ≈ ``log_branching(agent_count)``).
    nproc:
        Processing nodes per cluster (the paper uses 16).
    hardware_mix:
        Platform-name → sampling weight over the PACE catalogue; defaults
        to the case study's proportions.
    request_count / rate:
        Workload length and mean arrival rate (requests per virtual
        second) — every arrival process is parameterised to this mean.
    arrival:
        One of :data:`ARRIVAL_PROCESSES`.
    burst_multiplier / burst_mean_s / calm_mean_s:
        MMPP shape: bursts arrive at ``rate × burst_multiplier`` and the
        state holding times are exponential with these means.
    diurnal_period_s / diurnal_amplitude:
        Diurnal shape: ``rate(t) = rate · (1 + amplitude·sin(2πt/period))``.
    pareto_alpha:
        Pareto tail index (must exceed 1 so the mean gap exists; smaller
        = heavier tail).
    deadline_scale:
        Multiplier on every drawn Table-1 deadline offset.
    master_seed:
        Seed for every stream the generator draws from.
    chaos:
        One of :data:`CHAOS_PRESETS`.  ``"none"`` (default) changes
        nothing; any other tier folds a fault plan, churn schedule, and
        the robustness layer (ACK/retry + membership with healing) into
        :meth:`config`, and stamps the tier into the scenario
        fingerprint.
    """

    name: str
    agent_count: int
    branching: int = 3
    nproc: int = 16
    hardware_mix: Mapping[str, float] = field(
        default_factory=lambda: dict(CASE_STUDY_MIX)
    )
    request_count: int = 600
    rate: float = 1.0
    arrival: str = "poisson"
    burst_multiplier: float = 8.0
    burst_mean_s: float = 10.0
    calm_mean_s: float = 60.0
    diurnal_period_s: float = 600.0
    diurnal_amplitude: float = 0.8
    pareto_alpha: float = 1.5
    deadline_scale: float = 1.0
    master_seed: int = 2003
    chaos: str = "none"
    # Workflow family (Experiment 7).  ``workflow_count=0`` (the default)
    # generates no workflows and leaves the scenario — including its
    # fingerprint — byte-identical to the pre-workflow generator.
    workflow_count: int = 0
    workflow_shape: str = "mixed"  # one of WORKFLOW_SHAPES or "mixed"
    workflow_width: int = 4
    workflow_output_size: float = 4.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ExperimentError("scenario name must be non-empty")
        if not (1 <= self.agent_count <= MAX_AGENTS):
            raise ExperimentError(
                f"agent_count must be in [1, {MAX_AGENTS}], got {self.agent_count}"
            )
        if self.branching < 1:
            raise ExperimentError(f"branching must be >= 1, got {self.branching}")
        if self.nproc < 1:
            raise ExperimentError(f"nproc must be >= 1, got {self.nproc}")
        if not self.hardware_mix:
            raise ExperimentError("hardware_mix must not be empty")
        for platform, weight in self.hardware_mix.items():
            if platform not in DEFAULT_CATALOGUE:
                raise ExperimentError(f"unknown platform {platform!r} in mix")
            if weight <= 0:
                raise ExperimentError(
                    f"platform {platform!r} has non-positive weight {weight}"
                )
        if self.request_count < 1:
            raise ExperimentError("request_count must be >= 1")
        if self.rate <= 0:
            raise ExperimentError(f"rate must be > 0, got {self.rate}")
        if self.arrival not in ARRIVAL_PROCESSES:
            raise ExperimentError(f"unknown arrival process {self.arrival!r}")
        if self.burst_multiplier < 1:
            raise ExperimentError("burst_multiplier must be >= 1")
        if self.burst_mean_s <= 0 or self.calm_mean_s <= 0:
            raise ExperimentError("MMPP state holding means must be > 0")
        if self.diurnal_period_s <= 0:
            raise ExperimentError("diurnal_period_s must be > 0")
        if not (0.0 <= self.diurnal_amplitude <= 1.0):
            raise ExperimentError("diurnal_amplitude must be in [0, 1]")
        if self.pareto_alpha <= 1:
            raise ExperimentError(
                f"pareto_alpha must be > 1 (finite mean), got {self.pareto_alpha}"
            )
        if self.deadline_scale <= 0:
            raise ExperimentError("deadline_scale must be > 0")
        if self.master_seed < 0:
            raise ExperimentError("master_seed must be >= 0")
        if self.chaos not in CHAOS_PRESETS:
            raise ExperimentError(
                f"unknown chaos preset {self.chaos!r} (choose from {CHAOS_PRESETS})"
            )
        if self.workflow_count < 0:
            raise ExperimentError("workflow_count must be >= 0")
        if self.workflow_shape not in WORKFLOW_SHAPES + ("mixed",):
            raise ExperimentError(
                f"unknown workflow shape {self.workflow_shape!r} "
                f"(choose from {WORKFLOW_SHAPES + ('mixed',)})"
            )
        if self.workflow_width < 2:
            raise ExperimentError("workflow_width must be >= 2")
        if self.workflow_output_size < 0:
            raise ExperimentError("workflow_output_size must be >= 0")

    def straggler_names(self) -> Tuple[str, ...]:
        """The agents the chaos presets turn grey — a pure spec function.

        The last ~2% of agents (minimum one) in generation order: in the
        complete *branching*-ary tree those are always leaves, so grey
        failures degrade workers, not routing interior.  Empty when the
        grid is a single agent (the head must not straggle alone).
        """
        if self.chaos not in ("stragglers", "grey-combo"):
            return ()
        count = max(1, self.agent_count // 50)
        names = [f"G{i + 1}" for i in range(self.agent_count)]
        eligible = names[1:]
        return tuple(eligible[len(eligible) - min(count, len(eligible)):])

    def chaos_fault_spec(self) -> Optional[FaultPlanSpec]:
        """The fault plan for this spec's chaos tier (``None`` for none)."""
        stragglers = tuple(
            StragglerFault(
                node=name,
                response_delay=CHAOS_STRAGGLER_DELAY,
                service_factor=CHAOS_STRAGGLER_FACTOR,
            )
            for name in self.straggler_names()
        )
        if self.chaos == "loss":
            return FaultPlanSpec(drop_probability=0.05, latency_jitter=0.5)
        if self.chaos == "stragglers":
            return FaultPlanSpec(stragglers=stragglers) if stragglers else None
        if self.chaos == "grey-combo":
            return FaultPlanSpec(
                drop_probability=0.02, latency_jitter=0.5, stragglers=stragglers
            )
        return None

    def chaos_churn_spec(self) -> Optional[ChurnSpec]:
        """The churn spec for this spec's chaos tier (``None`` for none)."""
        if self.chaos in ("coordinator-churn", "grey-combo"):
            return ChurnSpec(
                rate=CHAOS_CHURN_RATE,
                downtime=CHAOS_CHURN_DOWNTIME,
                target="coordinators",
            )
        return None

    def config(
        self,
        *,
        policy: SchedulingPolicy = SchedulingPolicy.FIFO,
        agents_enabled: bool = True,
        **overrides,
    ) -> ExperimentConfig:
        """An :class:`ExperimentConfig` matched to this scenario.

        Request count, mean interval, and master seed mirror the spec;
        the policy defaults to FIFO because scale-tier runs measure the
        engine and fabric, not the GA (pass ``policy=SchedulingPolicy.GA``
        for paper-faithful scheduling).  Any config field can be
        overridden by keyword.

        A chaos tier other than ``"none"`` arms the whole robustness
        stack: the tier's fault plan and churn schedule, ACK/retry with a
        registry TTL, and membership with self-healing.  Overrides still
        win (pass ``membership=...`` for the static-hierarchy ablation).
        """
        base = ExperimentConfig(
            name=f"scenario-{self.name}",
            policy=policy,
            agents_enabled=agents_enabled,
            request_count=self.request_count,
            request_interval=1.0 / self.rate,
            master_seed=self.master_seed,
        )
        if self.chaos != "none":
            base = replace(
                base,
                name=f"{base.name}-{self.chaos}",
                faults=self.chaos_fault_spec(),
                churn=self.chaos_churn_spec(),
                resilience=ResilienceConfig(
                    enabled=True, registry_ttl=3.0 * base.pull_interval
                ),
                membership=MembershipConfig(enabled=True),
            )
        return replace(base, **overrides) if overrides else base


@dataclass(frozen=True)
class WorkflowItem:
    """One workflow instance of the stream: when, where, and what shape."""

    submit_time: float
    agent_name: str
    shape: str
    width: int
    output_size: float
    deadline: float  # absolute deadline of the whole graph

    def __post_init__(self) -> None:
        if self.shape not in WORKFLOW_SHAPES:
            raise ExperimentError(f"unknown workflow shape {self.shape!r}")
        if self.deadline <= self.submit_time:
            raise ExperimentError(
                f"deadline {self.deadline} not after submit {self.submit_time}"
            )

    def graph(self) -> TaskGraph:
        """The task graph this item instantiates (pure, see :func:`workflow_graph`)."""
        return workflow_graph(self.shape, self.width, self.output_size)


def workflow_graph(shape: str, width: int, output_size: float) -> TaskGraph:
    """Instantiate one workflow-family graph over the paper's applications.

    A pure function of its arguments — node/application assignment comes
    from cycling the Table 1 application list in node order, so the same
    ``(shape, width, output_size)`` always yields an identical graph.
    """
    apps = list(paper_application_specs())
    if shape == "fork-join":
        return fork_join(apps, width=width, output_size=output_size)
    if shape == "map-reduce":
        reducers = max(1, width // 2)
        return map_reduce(
            apps, mappers=width, reducers=reducers, output_size=output_size
        )
    if shape == "montage":
        return montage(apps, width=width, output_size=output_size)
    raise ExperimentError(f"unknown workflow shape {shape!r}")


@dataclass(frozen=True)
class Scenario:
    """One generated scenario: its spec, the grid, and the request stream."""

    spec: ScenarioSpec
    topology: GridTopology
    workload: Tuple[WorkloadItem, ...]
    #: The workflow stream — empty unless ``spec.workflow_count > 0``.
    workflows: Tuple[WorkflowItem, ...] = ()

    @property
    def horizon(self) -> float:
        """Submit time of the last request."""
        return self.workload[-1].submit_time

    def summary(self) -> Dict[str, object]:
        """Shape of the scenario for reporting: sizes, mix, arrival stats."""
        mix: Dict[str, int] = {}
        for platform in self.topology.platforms.values():
            mix[platform] = mix.get(platform, 0) + 1
        gaps = [
            b.submit_time - a.submit_time
            for a, b in zip(self.workload, self.workload[1:])
        ]
        return {
            "agents": self.spec.agent_count,
            "total_nodes": self.topology.total_nodes,
            "platform_mix": dict(sorted(mix.items())),
            "arrival": self.spec.arrival,
            "requests": len(self.workload),
            "horizon_s": self.horizon,
            "mean_gap_s": (sum(gaps) / len(gaps)) if gaps else 0.0,
            "max_gap_s": max(gaps) if gaps else 0.0,
        }


def generate_topology(spec: ScenarioSpec) -> GridTopology:
    """The spec's grid: a branching-ary tree with a seeded hardware mix.

    Agents are named G1..Gn; G1 heads the hierarchy.  Platforms are drawn
    independently per agent from ``hardware_mix`` via the
    ``scenario-topology`` stream, so the same seed always builds the same
    grid and a different seed redraws only the hardware assignment.
    """
    rng = RngRegistry(spec.master_seed).stream("scenario-topology")
    names = [f"G{i + 1}" for i in range(spec.agent_count)]
    platform_names = sorted(spec.hardware_mix)
    weights = [spec.hardware_mix[p] for p in platform_names]
    total = sum(weights)
    probabilities = [w / total for w in weights]
    draws = rng.choice(len(platform_names), size=len(names), p=probabilities)
    platforms = {name: platform_names[int(k)] for name, k in zip(names, draws)}
    parent_of: Dict[str, Optional[str]] = {
        name: (None if i == 0 else names[(i - 1) // spec.branching])
        for i, name in enumerate(names)
    }
    return GridTopology(
        platforms=platforms,
        parent_of=parent_of,
        nproc={name: spec.nproc for name in names},
    )


def generate_arrival_times(spec: ScenarioSpec) -> List[float]:
    """``request_count`` strictly increasing submit times for the spec.

    All processes share the mean rate ``spec.rate``; they differ in
    variance and correlation structure (see the module table).  Drawn
    from the ``scenario-arrivals`` stream only.
    """
    rng = RngRegistry(spec.master_seed).stream("scenario-arrivals")
    count = spec.request_count
    mean_gap = 1.0 / spec.rate
    times: List[float] = []
    t = 0.0
    if spec.arrival == "uniform":
        return [(i + 1) * mean_gap for i in range(count)]
    if spec.arrival == "poisson":
        for _ in range(count):
            t += float(rng.exponential(mean_gap))
            times.append(t)
        return times
    if spec.arrival == "pareto":
        # Pareto-I gaps: scale x_m chosen so the mean gap α·x_m/(α-1)
        # equals 1/rate.  Inverse-CDF sampling on u ∈ (0, 1].
        alpha = spec.pareto_alpha
        x_m = (alpha - 1.0) * mean_gap / alpha
        for _ in range(count):
            u = 1.0 - float(rng.random())
            t += x_m / (u ** (1.0 / alpha))
            times.append(t)
        return times
    if spec.arrival == "mmpp":
        # 2-state MMPP: exponential holding times per state; within a
        # state, Poisson arrivals at that state's rate.  A gap crossing
        # the state boundary is redrawn in the new state (memorylessness
        # makes the discard exact, not an approximation).
        rates = (spec.rate, spec.rate * spec.burst_multiplier)
        holds = (spec.calm_mean_s, spec.burst_mean_s)
        state = 0
        state_end = t + float(rng.exponential(holds[state]))
        while len(times) < count:
            gap = float(rng.exponential(1.0 / rates[state]))
            if t + gap <= state_end:
                t += gap
                times.append(t)
            else:
                t = state_end
                state = 1 - state
                state_end = t + float(rng.exponential(holds[state]))
        return times
    # Diurnal: Lewis–Shedler thinning of the peak-rate Poisson process
    # against rate(t) = rate·(1 + amplitude·sin(2πt/period)).
    peak = spec.rate * (1.0 + spec.diurnal_amplitude)
    omega = 2.0 * math.pi / spec.diurnal_period_s
    while len(times) < count:
        t += float(rng.exponential(1.0 / peak))
        current = spec.rate * (1.0 + spec.diurnal_amplitude * math.sin(omega * t))
        if float(rng.random()) * peak <= current:
            times.append(t)
    return times


def generate_workflows(
    spec: ScenarioSpec, topology: GridTopology
) -> List[WorkflowItem]:
    """The spec's workflow stream (empty when ``workflow_count`` is 0).

    Drawn entirely from the ``scenario-workflows`` stream — the
    independent-task workload streams are untouched, so adding workflows
    to a spec never reshuffles its background requests.  Arrivals follow
    the spec's arrival process in expectation (exponential gaps spanning
    the request phase); shapes cycle (``"mixed"``) or repeat; entry
    agents are drawn uniformly; the whole-graph deadline scales the mean
    Table 1 per-task domain by the shape's stage depth.
    """
    if spec.workflow_count == 0:
        return []
    rng = RngRegistry(spec.master_seed).stream("scenario-workflows")
    specs = paper_application_specs()
    low = sum(s.deadline_bounds[0] for s in specs.values()) / len(specs)
    high = sum(s.deadline_bounds[1] for s in specs.values()) / len(specs)
    names = list(topology.agent_names)
    span = spec.request_count / spec.rate
    mean_gap = span / spec.workflow_count
    items: List[WorkflowItem] = []
    t = 0.0
    for i in range(spec.workflow_count):
        if spec.arrival == "uniform":
            t = (i + 1) * mean_gap
        else:
            t += float(rng.exponential(mean_gap))
        shape = (
            WORKFLOW_SHAPES[i % len(WORKFLOW_SHAPES)]
            if spec.workflow_shape == "mixed"
            else spec.workflow_shape
        )
        agent = names[int(rng.integers(len(names)))]
        depth = _SHAPE_DEPTH[shape]
        offset = depth * float(rng.uniform(low, high)) * spec.deadline_scale
        items.append(
            WorkflowItem(
                submit_time=t,
                agent_name=agent,
                shape=shape,
                width=spec.workflow_width,
                output_size=spec.workflow_output_size,
                deadline=t + offset,
            )
        )
    return items


def generate_scenario(spec: ScenarioSpec) -> Scenario:
    """Generate the full scenario for *spec* — topology plus workload.

    Request targeting (entry agent, application, deadline offset) comes
    from the ``scenario-workload`` stream, independent of the arrival
    stream, so specs differing only in arrival process hit the same
    agents with the same applications at different instants.
    """
    topology = generate_topology(spec)
    arrival_times = generate_arrival_times(spec)
    rng = RngRegistry(spec.master_seed).stream("scenario-workload")
    specs = paper_application_specs()
    names = list(topology.agent_names)
    app_names = list(specs)
    items: List[WorkloadItem] = []
    for t in arrival_times:
        agent = names[int(rng.integers(len(names)))]
        app = app_names[int(rng.integers(len(app_names)))]
        low, high = specs[app].deadline_bounds
        offset = float(rng.uniform(low, high)) * spec.deadline_scale
        items.append(
            WorkloadItem(
                submit_time=t,
                agent_name=agent,
                application=app,
                deadline=t + offset,
            )
        )
    return Scenario(
        spec=spec,
        topology=topology,
        workload=tuple(items),
        workflows=tuple(generate_workflows(spec, topology)),
    )


def scenario_fingerprint(scenario: Scenario) -> str:
    """sha256 over the scenario's canonical JSON — the determinism witness.

    Two scenarios agree on this digest iff their grids and workloads are
    byte-identical (same platforms, tree, node counts, and every request's
    time/target/application/deadline).  The determinism tests assert the
    fingerprint is a pure function of the spec.
    """
    body = {
        "platforms": [[k, v] for k, v in scenario.topology.platforms.items()],
        "parent_of": [[k, v] for k, v in scenario.topology.parent_of.items()],
        "nproc": [[k, v] for k, v in scenario.topology.nproc.items()],
        "workload": [
            [item.submit_time, item.agent_name, item.application, item.deadline]
            for item in scenario.workload
        ],
    }
    # The chaos tier changes what the run injects, not the grid or the
    # requests — but two scenarios differing only in tier are different
    # experiments, so it joins the identity.  "none" is omitted to keep
    # every pre-chaos fingerprint stable.
    if scenario.spec.chaos != "none":
        body["chaos"] = scenario.spec.chaos
    # Same pattern as the chaos key: the workflow stream joins the
    # identity only when present, keeping pre-workflow fingerprints stable.
    if scenario.workflows:
        body["workflows"] = [
            [w.submit_time, w.agent_name, w.shape, w.width, w.output_size, w.deadline]
            for w in scenario.workflows
        ]
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
