"""Long-horizon soak runs with windowed metrics and periodic checkpoints.

A soak run pushes a continuous arrival stream (thousands of requests)
through the grid and reduces the outcome to fixed-width *time windows*
instead of one end-of-run summary, so throughput or deadline regressions
that only appear after sustained load show up with a timestamp.  The
driver holds only per-scheduler cursors and the closed window summaries —
its memory is bounded by the window count, not the request count — and
(optionally) rewrites one resumable snapshot at every window boundary, so
a killed soak loses at most one window of progress.

Resume semantics match the experiment drivers: windows closed before the
snapshot are carried in the snapshot itself, and the windows closed after
:func:`resume_soak` are byte-identical to the uninterrupted run's.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ExperimentError
from repro.experiments.casestudy import GridTopology
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    MAX_EVENTS,
    GridSystem,
    build_grid,
    tolerant_submitter,
    write_checkpoint,
)
from repro.experiments.workload import WorkloadItem, generate_workload
from repro.metrics.records import records_from_tasks
from repro.obs.trace import Tracer
from repro.sim.events import Priority

__all__ = ["SoakWindow", "SoakResult", "run_soak", "checkpoint_soak", "resume_soak"]


@dataclass(frozen=True)
class SoakWindow:
    """Summary of one ``[start, end)`` slice of simulated time."""

    index: int
    start: float
    end: float
    completed: int
    failed: int
    deadline_met: int
    #: Mean ``completion − submit`` over the window's completions (0 when empty).
    mean_response: float
    #: Completions per unit of simulated time.
    throughput: float


@dataclass
class SoakResult:
    """Everything a soak run produced, window by window."""

    config: ExperimentConfig
    windows: List[SoakWindow]
    total_completed: int
    total_failed: int
    horizon: float
    steps: int
    wall_seconds: float
    rng_digest: str = ""

    @property
    def total_requests(self) -> int:
        return self.total_completed + self.total_failed


@dataclass
class _SoakProgress:
    """The driver's mutable window-tracking state (snapshot-portable)."""

    window_seconds: float
    next_boundary: float
    windows: List[SoakWindow] = field(default_factory=list)
    #: Per-scheduler index of the first completed task not yet summarised.
    task_cursors: Dict[str, int] = field(default_factory=dict)
    #: Index of the first portal failure not yet summarised.
    failure_cursor: int = 0

    def encode(self) -> dict:
        return {
            "window_seconds": self.window_seconds,
            "next_boundary": self.next_boundary,
            "windows": [
                {
                    "index": w.index,
                    "start": w.start,
                    "end": w.end,
                    "completed": w.completed,
                    "failed": w.failed,
                    "deadline_met": w.deadline_met,
                    "mean_response": w.mean_response,
                    "throughput": w.throughput,
                }
                for w in self.windows
            ],
            "task_cursors": dict(self.task_cursors),
            "failure_cursor": self.failure_cursor,
        }

    @classmethod
    def decode(cls, data: dict) -> "_SoakProgress":
        progress = cls(
            window_seconds=float(data["window_seconds"]),
            next_boundary=float(data["next_boundary"]),
        )
        progress.windows = [
            SoakWindow(
                index=int(w["index"]),
                start=float(w["start"]),
                end=float(w["end"]),
                completed=int(w["completed"]),
                failed=int(w["failed"]),
                deadline_met=int(w["deadline_met"]),
                mean_response=float(w["mean_response"]),
                throughput=float(w["throughput"]),
            )
            for w in data["windows"]
        ]
        progress.task_cursors = {
            str(k): int(v) for k, v in data["task_cursors"].items()
        }
        progress.failure_cursor = int(data["failure_cursor"])
        return progress


def _close_window(system: GridSystem, progress: _SoakProgress, end: float) -> None:
    """Summarise everything completed since the cursors into one window."""
    batch = []
    for name, scheduler in sorted(system.schedulers.items()):
        completed = scheduler.executor.completed_tasks
        cursor = progress.task_cursors.get(name, 0)
        batch.extend(completed[cursor:])
        progress.task_cursors[name] = len(completed)
    failures = system.portal.failures()
    failed = len(failures) - progress.failure_cursor
    progress.failure_cursor = len(failures)
    records = records_from_tasks(batch)
    responses = [r.completion - r.submit_time for r in records]
    start = end - progress.window_seconds
    progress.windows.append(
        SoakWindow(
            index=len(progress.windows),
            start=start,
            end=end,
            completed=len(records),
            failed=failed,
            deadline_met=sum(1 for r in records if r.met_deadline),
            mean_response=(sum(responses) / len(responses)) if responses else 0.0,
            throughput=len(records) / progress.window_seconds,
        )
    )


def _soak_workload(system: GridSystem, config: ExperimentConfig) -> List[WorkloadItem]:
    return generate_workload(
        system.topology.agent_names,
        system.specs,
        count=config.request_count,
        interval=config.request_interval,
        master_seed=config.master_seed,
    )


def _schedule_arrivals(system: GridSystem, items: List[WorkloadItem]) -> Dict[int, object]:
    return {
        index: system.sim.schedule(
            item.submit_time,
            tolerant_submitter(system, item),
            priority=Priority.ARRIVAL,
            label=f"arrival-{item.application}",
            lane=item.agent_name,
        )
        for index, item in enumerate(items)
    }


def run_soak(
    config: ExperimentConfig,
    topology: Optional[GridTopology] = None,
    *,
    window_seconds: float = 500.0,
    workload: Optional[List[WorkloadItem]] = None,
    tracer: Optional[Tracer] = None,
    checkpoint_path: Optional[str] = None,
) -> SoakResult:
    """Run a continuous-arrival soak to completion, one window at a time.

    ``config.request_count`` sets the stream length (soak runs typically
    use thousands); pass *workload* to drive the soak with an explicit
    item list instead — generated scenarios use this to supply bursty or
    heavy-tailed arrival streams.  With ``checkpoint_path``, one resumable
    snapshot is rewritten at every window boundary; :func:`resume_soak`
    continues it with byte-identical windows.
    """
    if window_seconds <= 0:
        raise ExperimentError(f"window_seconds must be > 0, got {window_seconds}")
    t_wall = time.perf_counter()
    system = build_grid(config, topology, tracer=tracer)
    items = workload if workload is not None else _soak_workload(system, config)
    system.start()
    arrivals = _schedule_arrivals(system, items)
    progress = _SoakProgress(
        window_seconds=window_seconds, next_boundary=window_seconds
    )
    return _drive_soak(
        system,
        items,
        arrivals,
        progress,
        steps=0,
        t_wall=t_wall,
        checkpoint_path=checkpoint_path,
    )


def checkpoint_soak(
    config: ExperimentConfig,
    topology: Optional[GridTopology] = None,
    *,
    window_seconds: float = 500.0,
    at_step: int,
    path: str,
    tracer: Optional[Tracer] = None,
) -> str:
    """Run a soak for exactly *at_step* events, snapshot, and stop.

    Test/CLI helper mirroring
    :func:`~repro.experiments.runner.checkpoint_experiment`; returns the
    snapshot digest.
    """
    if at_step < 1:
        raise ExperimentError(f"at_step must be >= 1, got {at_step}")
    if window_seconds <= 0:
        raise ExperimentError(f"window_seconds must be > 0, got {window_seconds}")
    system = build_grid(config, topology, tracer=tracer)
    items = _soak_workload(system, config)
    system.start()
    arrivals = _schedule_arrivals(system, items)
    progress = _SoakProgress(
        window_seconds=window_seconds, next_boundary=window_seconds
    )
    for steps in range(1, at_step + 1):
        if not system.sim.step():
            raise ExperimentError(
                f"soak finished after {steps - 1} events, before at_step={at_step}"
            )
        while system.sim.now >= progress.next_boundary:
            _close_window(system, progress, progress.next_boundary)
            progress.next_boundary += progress.window_seconds
    return write_checkpoint(
        path,
        system,
        items,
        arrivals,
        at_step,
        kind="soak",
        extra={"soak": progress.encode()},
    )


def resume_soak(
    path: str,
    *,
    tracer: Optional[Tracer] = None,
    checkpoint_path: Optional[str] = None,
) -> SoakResult:
    """Resume a soak from a snapshot; windows continue byte-identically."""
    from repro.checkpoint.format import read_snapshot
    from repro.experiments.runner import _rebuild_from_payload

    t_wall = time.perf_counter()
    payload = read_snapshot(path)
    system, items, arrivals = _rebuild_from_payload(payload, "soak", tracer)
    progress = _SoakProgress.decode(payload["soak"])
    return _drive_soak(
        system,
        items,
        arrivals,
        progress,
        steps=int(payload["steps"]),
        t_wall=t_wall,
        checkpoint_path=checkpoint_path,
    )


def _drive_soak(
    system: GridSystem,
    items: List[WorkloadItem],
    arrivals: Dict[int, object],
    progress: _SoakProgress,
    *,
    steps: int,
    t_wall: float,
    checkpoint_path: Optional[str],
) -> SoakResult:
    portal = system.portal
    while portal.pending_count > 0 or portal.submitted_count < len(items):
        if not system.sim.step():
            raise ExperimentError(
                f"event queue drained with {portal.pending_count} "
                "requests still pending"
            )
        steps += 1
        if steps > MAX_EVENTS:
            raise ExperimentError(f"soak exceeded {MAX_EVENTS} events")
        while system.sim.now >= progress.next_boundary:
            _close_window(system, progress, progress.next_boundary)
            progress.next_boundary += progress.window_seconds
            if checkpoint_path is not None:
                write_checkpoint(
                    checkpoint_path,
                    system,
                    items,
                    arrivals,
                    steps,
                    kind="soak",
                    extra={"soak": progress.encode()},
                )
    system.stop()
    # The final partial window catches the tail of the stream.
    if any(
        len(scheduler.executor.completed_tasks) > progress.task_cursors.get(name, 0)
        for name, scheduler in system.schedulers.items()
    ) or len(portal.failures()) > progress.failure_cursor:
        _close_window(system, progress, progress.next_boundary)
    total_completed = sum(
        len(s.executor.completed_tasks) for s in system.schedulers.values()
    )
    return SoakResult(
        config=system.config,
        windows=progress.windows,
        total_completed=total_completed,
        total_failed=len(portal.failures()),
        horizon=system.sim.now,
        steps=steps,
        wall_seconds=time.perf_counter() - t_wall,
        rng_digest=system.rngs.state_digest() if system.rngs is not None else "",
    )
