"""The case-study grid of §4.1 / Fig. 7.

"The experimental system is configured with twelve agents ... named
S1……S12 ... and represent heterogeneous hardware resources containing
sixteen processing nodes per resource. ... The SGI multi-processor is the
most powerful, followed by the Sun Ultra 10, 5, 1, and SPARCStation 2 in
turn."

Fig. 7 assigns the platforms: S1–S2 SGIOrigin2000, S3–S4 SunUltra10,
S5–S7 SunUltra5, S8–S10 SunUltra1, S11–S12 SunSPARCstation2.  The figure
draws the hierarchy but the running text only fixes its head ("the agent at
the head of the hierarchy (S1)"), so the tree below is our documented
reading of the figure's layout: a balanced tree headed by S1.  The tree is
a parameter of :func:`case_study_topology`, so alternative readings (and
the scalability extension's larger grids) reuse all of the machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.errors import ExperimentError
from repro.pace.hardware import (
    DEFAULT_CATALOGUE,
    HardwareCatalogue,
    PlatformSpec,
)

__all__ = [
    "CASE_STUDY_PLATFORMS",
    "CASE_STUDY_TREE",
    "GridTopology",
    "case_study_topology",
    "scaled_topology",
]

#: Fig. 7 platform assignment (agent name -> platform name).
CASE_STUDY_PLATFORMS: Mapping[str, str] = {
    "S1": "SGIOrigin2000",
    "S2": "SGIOrigin2000",
    "S3": "SunUltra10",
    "S4": "SunUltra10",
    "S5": "SunUltra5",
    "S6": "SunUltra5",
    "S7": "SunUltra5",
    "S8": "SunUltra1",
    "S9": "SunUltra1",
    "S10": "SunUltra1",
    "S11": "SunSPARCstation2",
    "S12": "SunSPARCstation2",
}

#: Our reading of Fig. 7's tree: S1 heads the hierarchy (per §4.1); the
#: remaining agents form a balanced tree beneath it.
CASE_STUDY_TREE: Mapping[str, Optional[str]] = {
    "S1": None,
    "S2": "S1",
    "S3": "S1",
    "S4": "S1",
    "S5": "S2",
    "S6": "S2",
    "S7": "S3",
    "S8": "S3",
    "S9": "S4",
    "S10": "S4",
    "S11": "S5",
    "S12": "S6",
}

#: §4.1: "sixteen processing nodes per resource".
CASE_STUDY_NPROC = 16


@dataclass(frozen=True)
class GridTopology:
    """A grid configuration: agents, their platforms, node counts, and tree."""

    platforms: Mapping[str, str]       # agent name -> platform name
    parent_of: Mapping[str, Optional[str]]
    nproc: Mapping[str, int]
    catalogue: HardwareCatalogue = DEFAULT_CATALOGUE

    def __post_init__(self) -> None:
        if set(self.platforms) != set(self.parent_of):
            raise ExperimentError("platforms and tree must cover the same agents")
        if set(self.platforms) != set(self.nproc):
            raise ExperimentError("platforms and nproc must cover the same agents")
        for name, platform in self.platforms.items():
            if platform not in self.catalogue:
                raise ExperimentError(
                    f"agent {name!r} assigned unknown platform {platform!r}"
                )
        for name, count in self.nproc.items():
            if count < 1:
                raise ExperimentError(f"agent {name!r} has nproc {count}")

    @property
    def agent_names(self) -> Tuple[str, ...]:
        """All agent names, in a stable (S1, S2, ... numeric-aware) order."""
        return tuple(sorted(self.platforms, key=_numeric_suffix))

    def platform(self, name: str) -> PlatformSpec:
        """The platform spec of agent *name*'s resource."""
        return self.catalogue.get(self.platforms[name])

    @property
    def total_nodes(self) -> int:
        """Processing nodes across the whole grid (N of §3.3)."""
        return sum(self.nproc.values())


def _numeric_suffix(name: str) -> Tuple[str, int]:
    head = name.rstrip("0123456789")
    tail = name[len(head):]
    return (head, int(tail) if tail else -1)


def case_study_topology(*, nproc: int = CASE_STUDY_NPROC) -> GridTopology:
    """The paper's 12-agent case-study grid (Fig. 7)."""
    return GridTopology(
        platforms=dict(CASE_STUDY_PLATFORMS),
        parent_of=dict(CASE_STUDY_TREE),
        nproc={name: nproc for name in CASE_STUDY_PLATFORMS},
    )


def scaled_topology(
    n_agents: int,
    *,
    nproc: int = CASE_STUDY_NPROC,
    branching: int = 3,
    catalogue: HardwareCatalogue = DEFAULT_CATALOGUE,
) -> GridTopology:
    """A generated grid of *n_agents* for the scalability extension.

    Agents are named G1..Gn, arranged in a complete *branching*-ary tree
    (G1 the head) and assigned platforms round-robin through the catalogue
    from fastest to slowest, preserving the case study's heterogeneity.
    """
    if n_agents < 1:
        raise ExperimentError(f"n_agents must be >= 1, got {n_agents}")
    if branching < 1:
        raise ExperimentError(f"branching must be >= 1, got {branching}")
    names = [f"G{i + 1}" for i in range(n_agents)]
    ordered_platforms = sorted(catalogue, key=lambda p: p.speed_factor)
    platforms = {
        name: ordered_platforms[i % len(ordered_platforms)].name
        for i, name in enumerate(names)
    }
    parent_of: Dict[str, Optional[str]] = {}
    for i, name in enumerate(names):
        parent_of[name] = None if i == 0 else names[(i - 1) // branching]
    return GridTopology(
        platforms=platforms,
        parent_of=parent_of,
        nproc={name: nproc for name in names},
        catalogue=catalogue,
    )
