"""Experiment 7 — precedence-aware vs precedence-naive DAG scheduling.

Experiments 1–6 schedule independent tasks; Experiment 7 measures the
workflow extension (:mod:`repro.tasks.graph`, :mod:`repro.tasks.workflow`)
on streams of task graphs with real data movement.  Each cell replays one
seeded workflow stream twice:

``aware``
    The precedence-aware configuration: per-node durations from the PACE
    evaluator turn into b-level priorities and distributed per-node
    deadlines (``D - (b_level - t_node)``), and eq.-(10) discovery gains
    the data-gravity term (``DiscoveryConfig.data_gravity``) so routing
    charges each candidate the staging cost of the inputs it does not
    hold.

``naive``
    The precedence-naive baseline: every node carries priority ``0.0``
    and the whole-graph deadline, and routing ignores data placement.
    Precedence is still *enforced* (the gates and transfers are part of
    the fabric, not the contender) — only the scheduling metadata is
    blind to it.

The standing cells are graph shapes × arrival processes on the §4.1
case-study grid in ``staged`` release mode (fork-join / map-reduce /
montage × uniform / poisson), plus one ``pipeline`` cell that runs the
mixed stream in ``eager`` mode on agent-less single clusters — the GA
optimising whole graphs under in-scheduler precedence constraints.

Reported per (cell × mode) point: workflow completion and deadline-SLO
rates, task counts, bytes moved across clusters (sum of ``dag.transfer``
sizes), and the §3.3 balancing metrics (ε, υ, β).  Every run is traced;
with ``check=True`` each trace additionally goes through
:func:`~repro.obs.check.check_trace`, whose ``dispatch-after-inputs``
rule proves no task started before all parent outputs arrived at its
cluster.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Dict, List, Sequence, Tuple

import repro.net.message as message_module
from repro.errors import ExperimentError
from repro.experiments.casestudy import GridTopology, case_study_topology
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import MAX_EVENTS, GridSystem, build_grid
from repro.experiments.scenarios import (
    ScenarioSpec,
    WorkflowItem,
    generate_workflows,
)
from repro.metrics.balancing import compute_metrics
from repro.metrics.records import CompletionRecord, records_from_tasks
from repro.obs import MemorySink, Tracer, Violation, check_trace
from repro.scheduling.scheduler import SchedulingPolicy
from repro.sim.events import Priority
from repro.tasks.graph import WORKFLOW_SHAPES, TaskGraph
from repro.tasks.workflow import WorkflowCoordinator

__all__ = [
    "ARRIVALS",
    "CELLS",
    "MODES",
    "Experiment7Cell",
    "Experiment7Point",
    "Experiment7Result",
    "experiment7_cells",
    "run_experiment7",
]

#: Arrival processes the standing cells sweep.
ARRIVALS: Tuple[str, ...] = ("uniform", "poisson")

#: The two contenders each cell replays.
MODES: Tuple[str, ...] = ("aware", "naive")

#: Standing cells: every shape × arrival in staged mode, plus the eager
#: single-cluster pipeline cell.
CELLS: Tuple[str, ...] = tuple(
    f"{shape}-{arrival}" for shape in WORKFLOW_SHAPES for arrival in ARRIVALS
) + ("pipeline",)

#: Background-request budget per workflow — sets the stream's span (the
#: mean workflow gap is ``_SPAN_REQUESTS / rate`` seconds), chosen so
#: consecutive graphs overlap without drowning the grid.
_SPAN_REQUESTS = 25

#: Whole-graph deadline multiplier.  Tight enough that the naive
#: baseline misses deadlines the aware contender makes; the separation
#: is asserted by ``repro.cli experiment7 --check``.
_DEADLINE_SCALE = 0.7


@dataclass(frozen=True)
class Experiment7Cell:
    """One standing cell: its config, release mode, and workflow stream."""

    name: str
    shape: str  # "fork-join" | "map-reduce" | "montage" | "mixed"
    arrival: str
    release_mode: str  # "staged" | "eager"
    config: ExperimentConfig
    topology: GridTopology
    workflows: Tuple[WorkflowItem, ...]


def experiment7_cells(
    *,
    workflow_count: int = 8,
    master_seed: int = 2003,
    cells: Sequence[str] = CELLS,
) -> List[Experiment7Cell]:
    """Build the requested cells, each with one seeded workflow stream.

    Every cell lives on the case-study grid; the stream is a pure
    function of ``(cell name, workflow_count, master_seed)`` via
    :func:`~repro.experiments.scenarios.generate_workflows`.
    """
    unknown = [c for c in cells if c not in CELLS]
    if unknown:
        raise ExperimentError(f"unknown experiment-7 cells {unknown!r}")
    if workflow_count < 1:
        raise ExperimentError(
            f"workflow_count must be >= 1, got {workflow_count}"
        )
    topo = case_study_topology()
    built: List[Experiment7Cell] = []
    for name in cells:
        if name == "pipeline":
            shape, arrival, release_mode = "mixed", "uniform", "eager"
        else:
            shape, arrival = name.rsplit("-", 1)
            release_mode = "staged"
        spec = ScenarioSpec(
            name=f"experiment-7-{name}",
            agent_count=len(topo.agent_names),
            request_count=workflow_count * _SPAN_REQUESTS,
            arrival=arrival,
            master_seed=master_seed,
            deadline_scale=_DEADLINE_SCALE,
            workflow_count=workflow_count,
            workflow_shape=shape,
        )
        config = ExperimentConfig(
            name=f"experiment-7-{name}",
            policy=SchedulingPolicy.GA,
            agents_enabled=(release_mode == "staged"),
            request_count=spec.request_count,
            master_seed=master_seed,
        )
        built.append(
            Experiment7Cell(
                name=name,
                shape=shape,
                arrival=arrival,
                release_mode=release_mode,
                config=config,
                topology=topo,
                workflows=tuple(generate_workflows(spec, topo)),
            )
        )
    return built


@dataclass(frozen=True)
class Experiment7Point:
    """One (cell × mode) entry of the comparison."""

    cell: str
    mode: str  # "aware" | "naive"
    workflows: int
    workflows_succeeded: int
    deadline_met: int
    tasks_submitted: int
    tasks_succeeded: int
    bytes_moved: float
    epsilon: float
    upsilon_percent: float
    beta_percent: float
    wall_seconds: float
    dag_records: Dict[str, int]
    violations: Tuple[Violation, ...] = ()

    @property
    def completion_rate(self) -> float:
        """Workflows with every node succeeded / workflows started."""
        return self.workflows_succeeded / self.workflows if self.workflows else 0.0

    @property
    def slo_rate(self) -> float:
        """Workflows completing by their whole-graph deadline / started."""
        return self.deadline_met / self.workflows if self.workflows else 0.0


@dataclass
class Experiment7Result:
    """The full comparison: one point per (cell × mode)."""

    workflow_count: int
    master_seed: int
    points: List[Experiment7Point]

    def point(self, cell: str, mode: str) -> Experiment7Point:
        """The point at exactly (*cell*, *mode*)."""
        for p in self.points:
            if p.cell == cell and p.mode == mode:
                return p
        raise ExperimentError(f"no point at cell={cell!r}, mode={mode!r}")

    def slo_regressions(self) -> List[str]:
        """Cells where the aware contender loses to naive on deadline SLO."""
        out = []
        for cell in sorted({p.cell for p in self.points}):
            aware, naive = self.point(cell, "aware"), self.point(cell, "naive")
            if aware.deadline_met < naive.deadline_met:
                out.append(
                    f"{cell}: aware met {aware.deadline_met} deadlines vs "
                    f"naive {naive.deadline_met}"
                )
        return out

    def violations(self) -> List[Violation]:
        """Every checker violation across every traced point."""
        return [v for p in self.points for v in p.violations]


def _node_durations(
    system: GridSystem, graph: TaskGraph, agent_name: str
) -> Dict[str, float]:
    """Estimated seconds per node, measured on the entry agent's hardware.

    The portable estimate the coordinator's b-levels need: PACE's best
    predicted time on the cluster the graph enters at.  Where a node is
    later routed elsewhere the estimate is off by that platform's speed
    ratio — an estimate, exactly like the paper's prediction data.
    """
    platform = system.topology.platform(agent_name)
    nproc = system.topology.nproc[agent_name]
    return {
        node: system.evaluator.best_count(
            system.specs[graph.application(node)].model, platform, nproc
        )[1]
        for node in graph.node_names
    }


def _run_cell_mode(
    cell: Experiment7Cell, mode: str, *, check: bool = False
) -> Experiment7Point:
    """Replay *cell*'s workflow stream under one contender, traced."""
    t_wall = time.perf_counter()
    config = replace(cell.config, name=f"{cell.config.name}-{mode}")
    if mode == "aware" and cell.release_mode == "staged":
        config = replace(
            config, discovery=replace(config.discovery, data_gravity=True)
        )
    message_module.set_message_counter(0)
    tracer = Tracer(MemorySink())
    system = build_grid(config, cell.topology, tracer=tracer)
    coordinator = WorkflowCoordinator(
        system.portal,
        {name: spec.model for name, spec in system.specs.items()},
        tracer=tracer,
    )
    system.start()
    started: List[Tuple[WorkflowItem, int]] = []

    def _starter(item: WorkflowItem):
        def start() -> None:
            graph = item.graph()
            durations = (
                _node_durations(system, graph, item.agent_name)
                if mode == "aware"
                else None
            )
            workflow_id = coordinator.start_workflow(
                graph,
                system.agents[item.agent_name],
                item.deadline,
                mode=cell.release_mode,
                durations=durations,
            )
            started.append((item, workflow_id))

        return start

    for item in cell.workflows:
        system.sim.schedule(
            item.submit_time,
            _starter(item),
            priority=Priority.ARRIVAL,
            label=f"workflow-{item.shape}",
            lane=item.agent_name,
        )
    steps = 0
    while (
        len(started) < len(cell.workflows)
        or system.portal.pending_count > 0
        or not coordinator.all_resolved
    ):
        if not system.sim.step():
            raise ExperimentError(
                f"experiment-7 {cell.name}/{mode}: event queue drained with "
                f"{system.portal.pending_count} requests pending"
            )
        steps += 1
        if steps > MAX_EVENTS:
            raise ExperimentError(f"experiment exceeded {MAX_EVENTS} events")
    system.stop()

    deadline_met = 0
    for item, workflow_id in started:
        completion = coordinator.run(workflow_id).completion_time(
            system.portal.results
        )
        if completion is not None and completion <= item.deadline:
            deadline_met += 1
    runs = coordinator.runs.values()
    records: List[CompletionRecord] = []
    busy = {}
    nodes = {}
    for name, scheduler in system.schedulers.items():
        records.extend(records_from_tasks(scheduler.executor.completed_tasks))
        busy[name] = scheduler.executor.busy_intervals
        nodes[name] = scheduler.resource.size
    metrics = compute_metrics(records, busy, nodes)
    bytes_moved = 0.0
    dag_records: Dict[str, int] = {}
    for record in tracer.records:
        if record.kind.startswith("dag."):
            dag_records[record.kind] = dag_records.get(record.kind, 0) + 1
            if record.kind == "dag.transfer":
                bytes_moved += record.size
    violations: Tuple[Violation, ...] = ()
    if check:
        violations = tuple(check_trace(tracer.records))
    return Experiment7Point(
        cell=cell.name,
        mode=mode,
        workflows=len(started),
        workflows_succeeded=sum(1 for run in runs if run.succeeded),
        deadline_met=deadline_met,
        tasks_submitted=sum(len(run.released) for run in runs),
        tasks_succeeded=sum(len(run.sources) for run in runs),
        bytes_moved=bytes_moved,
        epsilon=metrics.total.epsilon,
        upsilon_percent=metrics.total.upsilon_percent,
        beta_percent=metrics.total.beta_percent,
        wall_seconds=time.perf_counter() - t_wall,
        dag_records=dag_records,
        violations=violations,
    )


def run_experiment7(
    *,
    workflow_count: int = 8,
    master_seed: int = 2003,
    cells: Sequence[str] = CELLS,
    modes: Sequence[str] = MODES,
    check: bool = False,
) -> Experiment7Result:
    """Run the comparison: both contenders through every requested cell.

    Within a cell both modes replay the identical workflow stream, so
    every difference is attributable to the precedence metadata (and, in
    staged cells, data gravity) alone.  With ``check=True`` every traced
    run also goes through :func:`~repro.obs.check.check_trace` and the
    violations land on the points.
    """
    unknown = [m for m in modes if m not in MODES]
    if unknown:
        raise ExperimentError(f"unknown experiment-7 modes {unknown!r}")
    built = experiment7_cells(
        workflow_count=workflow_count, master_seed=master_seed, cells=cells
    )
    points: List[Experiment7Point] = []
    for cell in built:
        for mode in modes:
            points.append(_run_cell_mode(cell, mode, check=check))
    return Experiment7Result(
        workflow_count=workflow_count,
        master_seed=master_seed,
        points=points,
    )
